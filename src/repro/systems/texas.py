"""The Texas instantiation of VOODB (paper Table 4, right column).

Texas ([Sin92]) is a *persistent store*, not a server: it maps the base
into virtual memory on the authors' PC (Pentium-II 266, 64 MB SDRAM,
Linux 2.0.30, 64 MB swap).  Table 4's settings:

=============================  =======================
System class                   Centralized
Network throughput             N/A
Disk page size                 4096 bytes
Page replacement               LRU (the OS's approximation)
Prefetching / clustering       None (DSTC in §4.4)
Initial placement              Optimized sequential
Disk search / latency / xfer   7.4 / 4.3 / 0.5 ms
Multiprogramming level         1
Lock acquisition / release     0 / 0 ms
Users                          1
=============================  =======================

Reconstructed knobs:

* ``storage_overhead`` = 1.2, so the NC=50/NO=20 000 base stores at
  ~21 MB (§4.4: "about 20 MB on an average" / §4.3.2: "about 21 MB").
* **memory frames** — Texas' capacity is the machine's *available
  memory*, not a database buffer.  We model it as
  ``(memory_mb − OS_RESIDENT_MB) × 256`` 4 KB frames, i.e. everything
  beyond a fixed ~4 MB OS/process footprint pages the database.  Table 4
  prints "3275 pages", but 3275 pages (≈13 MB) cannot reproduce Figure
  11's flat region at 32-64 MB (the ~21 MB base must fit); the
  subtractive model can, and degrades steeply below ~24 MB exactly as
  Figure 11 shows.  The deviation is recorded in EXPERIMENTS.md.
* ``memory_model`` = virtual memory — §4.3.2's page-reservation /
  swap mechanism (see :mod:`repro.core.virtual_memory`).
"""

from __future__ import annotations

from repro.core.parameters import MemoryModel, SystemClass, VOODBConfig
from repro.ocb.parameters import OCBConfig

#: The benchmark machine's RAM (§4.2.1).
TEXAS_DEFAULT_MEMORY_MB = 64.0
#: Fixed OS + process resident footprint under Linux 2.0 (reconstructed).
OS_RESIDENT_MB = 4.0
#: Storage overhead making the default base ~21 MB on disk (§4.3.2).
TEXAS_STORAGE_OVERHEAD = 1.2


def texas_memory_frames(memory_mb: float) -> int:
    """Page frames available to Texas on a ``memory_mb`` machine."""
    if memory_mb <= 0:
        raise ValueError(f"memory_mb must be > 0, got {memory_mb}")
    return max(1, int((memory_mb - OS_RESIDENT_MB) * 256))


def texas_config(
    nc: int = 50,
    no: int = 20_000,
    memory_mb: float = TEXAS_DEFAULT_MEMORY_MB,
    hotn: int = 1000,
    clustp: str = "none",
    **ocb_overrides,
) -> VOODBConfig:
    """Build the Table 4 Texas configuration.

    ``nc``/``no`` sweep the Figures 9/10 database sizes; ``memory_mb``
    sweeps Figure 11 ("Linux allows setting up memory size at boot
    time").  ``clustp="dstc"`` arms the §4.4 clustering policy.
    """
    # Routed through with_changes so a misspelled OCB override raises a
    # named ValueError (repro.core.overrides) instead of a bare TypeError.
    ocb = OCBConfig(nc=nc, no=no, hotn=hotn).with_changes(**ocb_overrides)
    return VOODBConfig(
        sysclass=SystemClass.CENTRALIZED,
        memory_model=MemoryModel.VIRTUAL_MEMORY,
        pgsize=4096,
        buffsize=texas_memory_frames(memory_mb),
        pgrep="LRU",
        prefetch="none",
        clustp=clustp,
        initpl="optimized_sequential",
        disksea=7.4,
        disklat=4.3,
        disktra=0.5,
        multilvl=1,
        getlock=0.0,
        rellock=0.0,
        nusers=1,
        storage_overhead=TEXAS_STORAGE_OVERHEAD,
        ocb=ocb,
    )
