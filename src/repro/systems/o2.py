"""The O2 instantiation of VOODB (paper Table 4, left column).

O2 ([Deu91]) is the page-server OODB the paper benchmarks on an IBM
RISC 6000 43P240 (AIX 4, 1 GB RAM, 16 MB server cache).  Table 4's
settings:

=============================  =======================
System class                   Page server
Network throughput             +∞ (same-host client)
Disk page size                 4096 bytes
Buffer size                    3840 pages (16 MB cache)
Page replacement               LRU
Prefetching / clustering       None
Initial placement              Optimized sequential
Disk search / latency / xfer   6.3 / 2.99 / 0.7 ms
Multiprogramming level         10
Lock acquisition / release     0.5 / 0.5 ms
Users                          1
=============================  =======================

Reconstructed knob: ``storage_overhead`` = 1.6, chosen so the NC=50 /
NO=20 000 OCB base occupies ~28 MB — the size §4.3.1 states for O2
("the database size (about 28 MB on an average)").
"""

from __future__ import annotations

import math

from repro.core.parameters import SystemClass, VOODBConfig
from repro.ocb.parameters import OCBConfig

#: O2's default server cache (§4.2.1: "16 MB by default").
O2_SERVER_CACHE_MB = 16.0
#: Table 4: 3840 pages for the 16 MB cache -> 240 pages per MB.
O2_PAGES_PER_MB = 240
#: Storage overhead making the default base ~28 MB on disk (§4.3.1).
O2_STORAGE_OVERHEAD = 1.6


def o2_buffer_pages(cache_mb: float) -> int:
    """Server cache size in pages (Figure 8 sweeps this)."""
    if cache_mb <= 0:
        raise ValueError(f"cache_mb must be > 0, got {cache_mb}")
    return max(1, int(cache_mb * O2_PAGES_PER_MB))


def o2_config(
    nc: int = 50,
    no: int = 20_000,
    cache_mb: float = O2_SERVER_CACHE_MB,
    hotn: int = 1000,
    **ocb_overrides,
) -> VOODBConfig:
    """Build the Table 4 O2 configuration.

    ``nc``/``no`` sweep the Figures 6/7 database sizes; ``cache_mb``
    sweeps Figure 8.  Extra keyword arguments override OCB fields.
    """
    # Routed through with_changes so a misspelled OCB override raises a
    # named ValueError (repro.core.overrides) instead of a bare TypeError.
    ocb = OCBConfig(nc=nc, no=no, hotn=hotn).with_changes(**ocb_overrides)
    return VOODBConfig(
        sysclass=SystemClass.PAGE_SERVER,
        netthru=math.inf,
        pgsize=4096,
        buffsize=o2_buffer_pages(cache_mb),
        pgrep="LRU",
        prefetch="none",
        clustp="none",
        initpl="optimized_sequential",
        disksea=6.3,
        disklat=2.99,
        disktra=0.7,
        multilvl=10,
        getlock=0.5,
        rellock=0.5,
        nusers=1,
        storage_overhead=O2_STORAGE_OVERHEAD,
        ocb=ocb,
    )
