"""The §4.4 DSTC experiment setup (Tables 6, 7 and 8).

Protocol (paper §4.4):

1. run 1000 **depth-3 hierarchy traversals** against the mid-sized base
   (NC=50, NO=20 000, ~20 MB) and count usage I/Os — *pre-clustering*;
2. trigger DSTC's reorganization and count its I/Os — *clustering
   overhead* (Table 6) — plus the cluster statistics (Table 7);
3. re-run the same transactions — *post-clustering* — and report the
   gain (Table 6).  Table 8 repeats 1 and 3 with main memory reduced
   from 64 MB to 8 MB ("so that the database size is actually large
   compared to the main memory size").

"We underlined DSTC's clustering capability by placing the algorithm in
favorable conditions" — the workload reconstruction behind that phrase:

* traversals follow the *inheritance* reference type at depth 3
  ("very characteristic transactions, namely depth-3 hierarchy
  traversals");
* roots are drawn from a hot region of ``DSTC_ROOT_REGION`` objects, so
  traversals repeat and DSTC's thresholds can latch onto them (without
  repetition no usage-statistics clusterer has anything to work with);
* the base is generated without OCB's object-locality window and with an
  inheritance-heavier reference mix — favourable means the *initial*
  placement does not already co-locate traversal mates (otherwise there
  is nothing for clustering to win) and traversals are wide enough to
  form paper-sized clusters (Table 7: ~14 objects).

The DSTC thresholds below were calibrated once against Tables 6-8 and
are fixed; the sensitivity ablation bench sweeps them.
"""

from __future__ import annotations

from repro.clustering.dstc import DSTCParameters
from repro.core.parameters import VOODBConfig
from repro.systems.texas import texas_config

#: Reference type hierarchy traversals follow (0 = inheritance).
HIERARCHY_REF_TYPE = 0
#: Traversal depth of the §4.4 workload.
HIERARCHY_DEPTH = 3
#: Hot root region (favourable-conditions reconstruction).
DSTC_ROOT_REGION = 150
#: Inheritance share of references in the experiment's base.
DSTC_INHERITANCE_WEIGHT = 0.7

#: Calibrated DSTC knobs for the Tables 6-8 runs.
DSTC_EXPERIMENT_PARAMETERS = DSTCParameters(
    observation_period=1000,
    tfa=4.0,
    tfe=3.0,
    tfc=3.0,
    w=0.5,
    max_cluster_size=50,
    auto_trigger=False,  # §4.4 triggers clustering externally
)


def texas_dstc_config(memory_mb: float = 64.0, hotn: int = 1000) -> VOODBConfig:
    """Texas + DSTC under the §4.4 favourable-conditions workload.

    ``memory_mb=64`` reproduces the Table 6/7 mid-sized-base runs;
    ``memory_mb=8`` the Table 8 "large base" runs.
    """
    return texas_config(
        nc=50,
        no=20_000,
        memory_mb=memory_mb,
        hotn=hotn,
        clustp="dstc",
        root_region=DSTC_ROOT_REGION,
        object_locality=20_000,
        inheritance_weight=DSTC_INHERITANCE_WEIGHT,
    )
