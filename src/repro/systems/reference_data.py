"""The paper's published numbers, for side-by-side comparison.

Two provenances, kept apart deliberately:

* **Tables 6-8** print exact values — they are copied verbatim.
* **Figures 6-11** are line charts; the series below are *digitized by
  eye* from the plots and carry no more than ~10-15% precision.  They
  exist so the regeneration harness can print paper-vs-reproduction
  rows and so the shape tests can check tendencies (monotonicity,
  orderings, knee positions) — never absolute equality.

Each figure has two series, ``benchmark`` (measured on the real system)
and ``simulation`` (the paper's VOODB runs); our reproduction is a third
column next to them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Database sizes (number of instances NO) swept by Figures 6/7/9/10.
INSTANCE_SWEEP: Tuple[int, ...] = (500, 1000, 2000, 5000, 10_000, 20_000)
#: Memory/cache sizes (MB) swept by Figures 8 and 11.
MEMORY_SWEEP_MB: Tuple[int, ...] = (8, 12, 16, 24, 32, 64)


@dataclass(frozen=True)
class FigureReference:
    """One paper figure: x-axis values and the two published series."""

    figure: str
    title: str
    x_label: str
    x_values: Tuple[int, ...]
    benchmark: Tuple[float, ...]
    simulation: Tuple[float, ...]
    digitized: bool = True

    def __post_init__(self) -> None:
        if not (
            len(self.x_values) == len(self.benchmark) == len(self.simulation)
        ):
            raise ValueError(f"figure {self.figure}: series length mismatch")


FIGURE_6 = FigureReference(
    figure="6",
    title="Mean number of I/Os depending on number of instances (O2 - 20 classes)",
    x_label="number of instances",
    x_values=INSTANCE_SWEEP,
    benchmark=(350.0, 550.0, 1000.0, 1800.0, 2600.0, 4200.0),
    simulation=(300.0, 500.0, 900.0, 1700.0, 2800.0, 4000.0),
)

FIGURE_7 = FigureReference(
    figure="7",
    title="Mean number of I/Os depending on number of instances (O2 - 50 classes)",
    x_label="number of instances",
    x_values=INSTANCE_SWEEP,
    benchmark=(500.0, 800.0, 1400.0, 2700.0, 4200.0, 6500.0),
    simulation=(400.0, 700.0, 1200.0, 2500.0, 3800.0, 6200.0),
)

FIGURE_8 = FigureReference(
    figure="8",
    title="Mean number of I/Os depending on cache size (O2)",
    x_label="cache size (MB)",
    x_values=MEMORY_SWEEP_MB,
    benchmark=(52_000.0, 44_000.0, 36_000.0, 22_000.0, 9_000.0, 6_000.0),
    simulation=(50_000.0, 42_000.0, 35_000.0, 21_000.0, 8_000.0, 5_500.0),
)

FIGURE_9 = FigureReference(
    figure="9",
    title="Mean number of I/Os depending on number of instances (Texas - 20 classes)",
    x_label="number of instances",
    x_values=INSTANCE_SWEEP,
    benchmark=(180.0, 320.0, 600.0, 1100.0, 1600.0, 2400.0),
    simulation=(150.0, 280.0, 550.0, 1000.0, 1500.0, 2200.0),
)

FIGURE_10 = FigureReference(
    figure="10",
    title="Mean number of I/Os depending on number of instances (Texas - 50 classes)",
    x_label="number of instances",
    x_values=INSTANCE_SWEEP,
    benchmark=(250.0, 500.0, 950.0, 2100.0, 3200.0, 4800.0),
    simulation=(220.0, 450.0, 900.0, 2000.0, 3000.0, 4500.0),
)

FIGURE_11 = FigureReference(
    figure="11",
    title="Mean number of I/Os depending on memory size (Texas)",
    x_label="available memory under Linux (MB)",
    x_values=MEMORY_SWEEP_MB,
    benchmark=(105_000.0, 55_000.0, 25_000.0, 6_000.0, 3_000.0, 2_500.0),
    simulation=(100_000.0, 50_000.0, 22_000.0, 5_500.0, 2_800.0, 2_400.0),
)

ALL_FIGURES: Dict[str, FigureReference] = {
    ref.figure: ref
    for ref in (FIGURE_6, FIGURE_7, FIGURE_8, FIGURE_9, FIGURE_10, FIGURE_11)
}


@dataclass(frozen=True)
class DSTCTableReference:
    """Exact values from one DSTC effect table (Tables 6 and 8)."""

    table: str
    memory_mb: float
    pre_clustering_bench: float
    pre_clustering_sim: float
    post_clustering_bench: float
    post_clustering_sim: float
    gain_bench: float
    gain_sim: float
    overhead_bench: float | None = None
    overhead_sim: float | None = None


#: Table 6 — effects of DSTC, mid-sized base (exact).
TABLE_6 = DSTCTableReference(
    table="6",
    memory_mb=64.0,
    pre_clustering_bench=1890.70,
    pre_clustering_sim=1878.80,
    overhead_bench=12_799.60,
    overhead_sim=354.50,
    post_clustering_bench=330.60,
    post_clustering_sim=350.50,
    gain_bench=5.71,
    gain_sim=5.36,
)

#: Table 8 — effects of DSTC, "large" base / 8 MB memory (exact).
#: (No overhead row: the paper reuses the already-clustered base.)
TABLE_8 = DSTCTableReference(
    table="8",
    memory_mb=8.0,
    pre_clustering_bench=12_504.60,
    pre_clustering_sim=12_547.80,
    post_clustering_bench=424.30,
    post_clustering_sim=441.50,
    gain_bench=29.47,
    gain_sim=28.42,
)

#: Table 7 — DSTC clustering statistics (exact).
TABLE_7 = {
    "mean_clusters_bench": 82.23,
    "mean_clusters_sim": 84.01,
    "mean_objects_per_cluster_bench": 12.83,
    "mean_objects_per_cluster_sim": 13.73,
}
