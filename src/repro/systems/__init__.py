"""systems — the paper's validated system instantiations.

Table 4 parameterizes VOODB twice: as the **O2** page server running on
the authors' IBM RISC 6000 workstation, and as the **Texas** persistent
store on their Linux PC.  This package ships those instantiations as
ready-made config builders (`o2`, `texas`), the §4.4 DSTC experiment
setup (`dstc_experiment`), and the paper's published numbers — both the
benchmarked and the simulated series of every figure and table — as
reference data for shape comparison (`reference_data`).
"""

from repro.systems.dstc_experiment import (
    DSTC_EXPERIMENT_PARAMETERS,
    HIERARCHY_DEPTH,
    HIERARCHY_REF_TYPE,
    texas_dstc_config,
)
from repro.systems.o2 import O2_SERVER_CACHE_MB, o2_config
from repro.systems.texas import TEXAS_DEFAULT_MEMORY_MB, texas_config
from repro.systems import reference_data

__all__ = [
    "o2_config",
    "O2_SERVER_CACHE_MB",
    "texas_config",
    "TEXAS_DEFAULT_MEMORY_MB",
    "texas_dstc_config",
    "DSTC_EXPERIMENT_PARAMETERS",
    "HIERARCHY_REF_TYPE",
    "HIERARCHY_DEPTH",
    "reference_data",
]
