"""VOODB — a generic discrete-event random simulation model for OODBs.

Reproduction of: J. Darmont, M. Schneider, "VOODB: A Generic
Discrete-Event Random Simulation Model to Evaluate the Performances of
OODBs", Proceedings of the 25th VLDB Conference, Edinburgh, 1999.

Packages (bottom-up):

* :mod:`repro.despy` — the discrete-event simulation kernel (the paper's
  DESP-C++, ported);
* :mod:`repro.ocb` — the OCB benchmark workload substrate;
* :mod:`repro.core` — the VOODB evaluation model itself;
* :mod:`repro.clustering` — placement + clustering policies (DSTC...);
* :mod:`repro.systems` — the O2 and Texas instantiations of Table 4;
* :mod:`repro.experiments` — replication running, Figures 6-11 and
  Tables 6-8 regeneration;
* :mod:`repro.scenarios` — the declarative scenario catalog (named
  workload mixes, open-system arrivals, fault plans) compiled onto the
  experiment engine.

Quickstart::

    from repro import o2_config, ExperimentRunner

    runner = ExperimentRunner(o2_config(nc=50, no=20_000))
    runner.run(replications=10)
    print(runner.interval("total_ios"))
"""

from repro.clustering import (
    DSTC,
    ClusteringPolicy,
    DSTCParameters,
    GreedyGraphClustering,
    NoClustering,
)
from repro.core import (
    MemoryModel,
    SimulationResults,
    SystemClass,
    VOODBConfig,
    VOODBSimulation,
    build_database,
    run_replication,
)
from repro.despy import RandomStream, Simulation
from repro.experiments import (
    ExperimentRunner,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    format_dstc_table,
    format_series,
    format_table7,
    table6,
    table7,
    table8,
)
from repro.ocb import Database, OCBConfig, Schema, TransactionGenerator
from repro.scenarios import (
    Scenario,
    all_scenarios,
    get_scenario,
    run_scenario,
    scenario_names,
)
from repro.systems import o2_config, texas_config, texas_dstc_config

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "VOODBConfig",
    "OCBConfig",
    "SystemClass",
    "MemoryModel",
    "o2_config",
    "texas_config",
    "texas_dstc_config",
    # model
    "VOODBSimulation",
    "run_replication",
    "build_database",
    "SimulationResults",
    # substrate
    "Simulation",
    "RandomStream",
    "Schema",
    "Database",
    "TransactionGenerator",
    # clustering
    "ClusteringPolicy",
    "NoClustering",
    "DSTC",
    "DSTCParameters",
    "GreedyGraphClustering",
    # experiments
    "ExperimentRunner",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "table6",
    "table7",
    "table8",
    "format_series",
    "format_dstc_table",
    "format_table7",
    # scenarios
    "Scenario",
    "all_scenarios",
    "get_scenario",
    "run_scenario",
    "scenario_names",
]
