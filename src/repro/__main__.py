"""Command-line regeneration of the paper's evaluation.

Usage::

    python -m repro figures              # Figures 6-11
    python -m repro figure 8             # one figure
    python -m repro tables               # Tables 6-8
    python -m repro all                  # everything
    python -m repro -r 10 all            # 10 replications per point
    python -m repro -j 4 figure 6        # fan replications over 4 workers
    python -m repro --cache-dir .voodb-cache all   # memoize replications
    python -m repro -o out.txt figure 11 # also write the report to a file

    python -m repro scenario list        # the scenario catalog
    python -m repro scenario describe open-bursty
    python -m repro scenario run open-bursty         # golden text report
    python -m repro scenario run -r 10 --json failure-storm
    python -m repro scenario run my-study.yaml       # no registry edit
    python -m repro scenario validate src/repro/scenarios/library/*.yaml

``scenario describe``/``run`` accept either a registered catalog name
or a path to a declarative scenario file (``.yaml``/``.yml``/``.toml``,
see :mod:`repro.scenarios.schema`); ``scenario validate`` schema-checks
files without running them (exit 2 on the first invalid file).

Every command prints the paper's published series (benchmark and
simulation) next to this reproduction's means with 95% confidence
intervals — the same reports the benchmark harness writes under
``results/``.  ``--jobs``/``VOODB_JOBS`` select the executor (serial vs
process pool); ``--cache-dir``/``VOODB_CACHE_DIR`` enable the on-disk
replication cache.  Both paths produce bit-identical statistics for the
same seeds; ``scenario run`` with the default replication protocol
reproduces the committed ``results/scenario_*.txt`` goldens exactly.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.experiments.cache import ReplicationCache
from repro.experiments.executor import Executor, make_executor
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.specs import resolve_replications
from repro.experiments.report import (
    format_dstc_table,
    format_scenario,
    format_scenario_description,
    format_scenario_list,
    format_series,
    format_table7,
    scenario_to_json,
)
from repro.experiments.tables import table6, table8
from repro.scenarios import (
    ScenarioSchemaError,
    UnknownScenarioError,
    all_scenarios,
    get_scenario,
    load_scenario_file,
    looks_like_scenario_path,
    run_scenario,
)


def _emit(report: str, output: Optional[str]) -> None:
    print(report)
    print()
    if output:
        with open(output, "a", encoding="utf-8") as sink:
            sink.write(report + "\n\n")


def run_figures(
    numbers: List[str],
    replications: Optional[int],
    hotn: int,
    output: Optional[str],
    executor: Optional[Executor] = None,
) -> None:
    for number in numbers:
        series = ALL_FIGURES[number](
            replications=replications, hotn=hotn, executor=executor
        )
        _emit(format_series(series), output)


def run_tables(
    replications: Optional[int],
    output: Optional[str],
    executor: Optional[Executor] = None,
) -> None:
    result6 = table6(replications=replications, executor=executor)
    _emit(format_dstc_table(result6), output)
    _emit(format_table7(result6), output)
    result8 = table8(replications=replications, executor=executor)
    _emit(format_dstc_table(result8), output)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the VOODB paper's figures and tables.",
    )
    parser.add_argument(
        "-r",
        "--replications",
        type=int,
        default=None,
        help="replications per experiment point "
        "(default: VOODB_REPLICATIONS or 5; the paper used 100)",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        help="worker processes for replications "
        "(default: VOODB_JOBS or 1 = serial; results are identical)",
    )
    parser.add_argument(
        "--hotn",
        type=int,
        default=None,
        help="transactions per replication (default 1000, the Table 5 "
        "value; for scenarios: scale every point down to this many)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the on-disk replication cache "
        "(default: VOODB_CACHE_DIR, unset = no cache)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="append the reports to this file as well",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("figures", help="regenerate Figures 6-11")
    sub.add_parser("tables", help="regenerate Tables 6-8")
    sub.add_parser("all", help="regenerate everything")
    one = sub.add_parser("figure", help="regenerate a single figure")
    one.add_argument("number", choices=sorted(ALL_FIGURES, key=int))
    scenario = sub.add_parser("scenario", help="the scenario catalog")
    action = scenario.add_subparsers(dest="scenario_command", required=True)
    action.add_parser("list", help="list the registered scenarios")
    name_help = "catalog name or path to a scenario file (.yaml/.yml/.toml)"
    describe = action.add_parser("describe", help="describe one scenario")
    describe.add_argument("name", help=name_help)
    run = action.add_parser("run", help="run one scenario and print its report")
    run.add_argument("name", help=name_help)
    run.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON summary instead of the text table",
    )
    validate = action.add_parser(
        "validate", help="schema-check scenario files without running them"
    )
    validate.add_argument(
        "paths", nargs="+", help="scenario files to validate"
    )
    return parser


def make_cli_executor(
    jobs: Optional[int] = None, cache_dir: Optional[str] = None
) -> Executor:
    """Executor from CLI flags, falling back to the environment knobs."""
    cache = ReplicationCache(cache_dir) if cache_dir else None
    return make_executor(jobs=jobs, cache=cache)  # None -> VOODB_CACHE_DIR


def resolve_scenario(name: str):
    """A scenario from either the registry or a file path."""
    if looks_like_scenario_path(name):
        return load_scenario_file(name)
    return get_scenario(name)


def validate_scenario_files(paths: List[str], output: Optional[str]) -> int:
    """Schema-check scenario files; exit 2 on the first invalid one."""
    for path in paths:
        try:
            scenario = load_scenario_file(path)
        except (ScenarioSchemaError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        _emit(
            f"{path}: ok (scenario {scenario.name!r}, "
            f"{len(scenario.points)} point(s), "
            f"{scenario.replications} replications)",
            output,
        )
    return 0


def run_scenario_command(args, executor: Executor) -> int:
    if args.scenario_command == "list":
        _emit(format_scenario_list(all_scenarios()), args.output)
        return 0
    if args.scenario_command == "validate":
        return validate_scenario_files(args.paths, args.output)
    scenario = resolve_scenario(args.name)
    if args.scenario_command == "describe":
        _emit(format_scenario_description(scenario), args.output)
        return 0
    if args.hotn is not None:
        scenario = scenario.scaled(args.hotn)
    result = run_scenario(scenario, executor=executor, replications=args.replications)
    if args.json:
        report = json.dumps(scenario_to_json(scenario, result), indent=2)
    else:
        report = format_scenario(scenario, result)
    _emit(report, args.output)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command != "scenario" or args.replications is not None:
            # Fail fast on a bad -r / VOODB_REPLICATIONS.  Scenarios pin
            # their own replication count, so a missing -r there must
            # not drag the environment default in.
            resolve_replications(args.replications)
        if args.hotn is not None and args.hotn < 1:
            raise ValueError(f"--hotn must be >= 1, got {args.hotn}")
        executor = make_cli_executor(args.jobs, args.cache_dir)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    hotn = args.hotn if args.hotn is not None else 1000
    figure_numbers = sorted(ALL_FIGURES, key=int)
    if args.command == "scenario":
        try:
            return run_scenario_command(args, executor)
        except (UnknownScenarioError, ScenarioSchemaError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.command == "figure":
        run_figures([args.number], args.replications, hotn, args.output, executor)
    elif args.command == "figures":
        run_figures(figure_numbers, args.replications, hotn, args.output, executor)
    elif args.command == "tables":
        run_tables(args.replications, args.output, executor)
    else:  # all
        run_figures(figure_numbers, args.replications, hotn, args.output, executor)
        run_tables(args.replications, args.output, executor)
    return 0


if __name__ == "__main__":
    sys.exit(main())
