"""Command-line regeneration of the paper's evaluation.

Usage::

    python -m repro figures              # Figures 6-11
    python -m repro figure 8             # one figure
    python -m repro tables               # Tables 6-8
    python -m repro all                  # everything
    python -m repro -r 10 all            # 10 replications per point
    python -m repro -j 4 figure 6        # fan replications over 4 workers
    python -m repro --cache-dir .voodb-cache all   # memoize replications
    python -m repro -o out.txt figure 11 # also write the report to a file

Every command prints the paper's published series (benchmark and
simulation) next to this reproduction's means with 95% confidence
intervals — the same reports the benchmark harness writes under
``results/``.  ``--jobs``/``VOODB_JOBS`` select the executor (serial vs
process pool); ``--cache-dir``/``VOODB_CACHE_DIR`` enable the on-disk
replication cache.  Both paths produce bit-identical statistics for the
same seeds.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.cache import ReplicationCache
from repro.experiments.executor import Executor, make_executor
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.specs import resolve_replications
from repro.experiments.report import (
    format_dstc_table,
    format_series,
    format_table7,
)
from repro.experiments.tables import table6, table8


def _emit(report: str, output: Optional[str]) -> None:
    print(report)
    print()
    if output:
        with open(output, "a", encoding="utf-8") as sink:
            sink.write(report + "\n\n")


def run_figures(
    numbers: List[str],
    replications: Optional[int],
    hotn: int,
    output: Optional[str],
    executor: Optional[Executor] = None,
) -> None:
    for number in numbers:
        series = ALL_FIGURES[number](
            replications=replications, hotn=hotn, executor=executor
        )
        _emit(format_series(series), output)


def run_tables(
    replications: Optional[int],
    output: Optional[str],
    executor: Optional[Executor] = None,
) -> None:
    result6 = table6(replications=replications, executor=executor)
    _emit(format_dstc_table(result6), output)
    _emit(format_table7(result6), output)
    _emit(format_dstc_table(table8(replications=replications, executor=executor)), output)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the VOODB paper's figures and tables.",
    )
    parser.add_argument(
        "-r",
        "--replications",
        type=int,
        default=None,
        help="replications per experiment point "
        "(default: VOODB_REPLICATIONS or 5; the paper used 100)",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        help="worker processes for replications "
        "(default: VOODB_JOBS or 1 = serial; results are identical)",
    )
    parser.add_argument(
        "--hotn",
        type=int,
        default=1000,
        help="transactions per replication (Table 5 default: 1000)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the on-disk replication cache "
        "(default: VOODB_CACHE_DIR, unset = no cache)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="append the reports to this file as well",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("figures", help="regenerate Figures 6-11")
    sub.add_parser("tables", help="regenerate Tables 6-8")
    sub.add_parser("all", help="regenerate everything")
    one = sub.add_parser("figure", help="regenerate a single figure")
    one.add_argument("number", choices=sorted(ALL_FIGURES, key=int))
    return parser


def make_cli_executor(
    jobs: Optional[int] = None, cache_dir: Optional[str] = None
) -> Executor:
    """Executor from CLI flags, falling back to the environment knobs."""
    cache = ReplicationCache(cache_dir) if cache_dir else None
    return make_executor(jobs=jobs, cache=cache)  # None -> VOODB_CACHE_DIR


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        resolve_replications(args.replications)  # fail fast on bad -r / env
        executor = make_cli_executor(args.jobs, args.cache_dir)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    figure_numbers = sorted(ALL_FIGURES, key=int)
    if args.command == "figure":
        run_figures([args.number], args.replications, args.hotn, args.output, executor)
    elif args.command == "figures":
        run_figures(figure_numbers, args.replications, args.hotn, args.output, executor)
    elif args.command == "tables":
        run_tables(args.replications, args.output, executor)
    else:  # all
        run_figures(figure_numbers, args.replications, args.hotn, args.output, executor)
        run_tables(args.replications, args.output, executor)
    return 0


if __name__ == "__main__":
    sys.exit(main())
