"""Replication statistics: the [Ban96] confidence-interval method.

Paper §4.2.2: simulation results are achieved with 95% confidence
intervals.  For observations with sample mean X̄ and sample standard
deviation σ, the half-interval width is

    h = t(n-1, 1-α/2) · σ / √n

where t is the Student t quantile, n the number of replications and
α = 1 - c.  The paper first runs a pilot study with n = 10 replications,
then sizes the full study with n* = n · (h/h*)² where h* is the desired
half-width, and settles on 100 replications for every experiment.

This module implements exactly that workflow:

* :func:`confidence_interval` — one-shot CI for a list of observations;
* :func:`required_replications` — the n* pilot-study formula;
* :class:`ReplicationAnalyzer` — collects per-replication metric
  dictionaries and reports mean/CI per metric.

Steady-state output analysis (open-system scenarios)
----------------------------------------------------

A raw mean over an open-system run is contaminated by the initial
transient: the first arrivals hit an empty system, so queueing delay is
systematically under-represented until the backlog reaches steady
state.  This module therefore also implements the standard two-step
honest pipeline ([Ban96]; White's MSER):

* :func:`mser5_truncation_index` — MSER-5 warm-up truncation: batch the
  series in non-overlapping batches of five, and delete the prefix that
  minimizes the standard error of the retained mean (the Marginal
  Standard Error Rule);
* :func:`steady_state_estimate` — truncate with MSER-5, then build a
  batch-means confidence interval over the retained observations,
  returning a :class:`SteadyStateEstimate` (point estimate, CI
  half-width, truncation index, batch count) to report *alongside* the
  raw mean, never silently in its place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence

from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean with its symmetric Student-t confidence interval."""

    mean: float
    half_width: float
    confidence: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    @property
    def relative_half_width(self) -> float:
        """h / |X̄| — the paper targets 5% of the sample mean."""
        if self.mean == 0:
            return math.inf if self.half_width > 0 else 0.0
        return self.half_width / abs(self.mean)

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (
            f"{self.mean:.2f} ± {self.half_width:.2f} "
            f"({self.confidence:.0%}, n={self.n})"
        )


def student_t_quantile(degrees: int, probability: float) -> float:
    """Quantile of the Student t distribution (wraps scipy)."""
    if degrees < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {degrees}")
    return float(_scipy_stats.t.ppf(probability, degrees))


def confidence_interval(
    observations: Sequence[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of the observations.

    Implements h = t(n-1, 1-α/2)·σ/√n from paper §4.2.2.  A single
    observation yields a degenerate interval of half-width 0 (the paper
    never reports single-replication results; this keeps small tests
    convenient).
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    n = len(observations)
    if n == 0:
        raise ValueError("cannot build a confidence interval from no data")
    mean = sum(observations) / n
    if n == 1:
        return ConfidenceInterval(mean, 0.0, confidence, 1)
    variance = sum((x - mean) ** 2 for x in observations) / (n - 1)
    alpha = 1.0 - confidence
    t = student_t_quantile(n - 1, 1.0 - alpha / 2.0)
    half_width = t * math.sqrt(variance / n)
    return ConfidenceInterval(mean, half_width, confidence, n)


def required_replications(
    pilot_half_width: float, desired_half_width: float, pilot_n: int
) -> int:
    """Additional replications n* = n·(h/h*)² from the pilot study.

    Returns the number of replications *beyond* the pilot run needed to
    shrink the half-width from ``pilot_half_width`` to
    ``desired_half_width`` (paper §4.2.2).
    """
    if pilot_n < 1:
        raise ValueError("pilot study needs at least one replication")
    if desired_half_width <= 0:
        raise ValueError("desired half-width must be positive")
    if pilot_half_width <= desired_half_width:
        return 0
    return math.ceil(pilot_n * (pilot_half_width / desired_half_width) ** 2)


def batch_means_interval(
    observations: Sequence[float],
    batches: int = 10,
    confidence: float = 0.95,
    warmup: int = 0,
) -> ConfidenceInterval:
    """Confidence interval from a single long run via batch means.

    The other output-analysis technique of [Ban96]: instead of n
    independent replications, one long run is split into ``batches``
    contiguous batches whose means are treated as (approximately
    independent) observations.  ``warmup`` initial observations are
    discarded first (initial-transient deletion).  Useful for
    steady-state metrics where restarting the system per replication is
    wasteful; the replication method of §4.2.2 remains the default.
    """
    if batches < 2:
        raise ValueError(f"need at least 2 batches, got {batches}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    data = list(observations[warmup:])
    if len(data) < batches:
        raise ValueError(
            f"{len(data)} post-warmup observations cannot fill {batches} batches"
        )
    batch_size = len(data) // batches
    means = []
    for b in range(batches):
        chunk = data[b * batch_size : (b + 1) * batch_size]
        means.append(sum(chunk) / len(chunk))
    return confidence_interval(means, confidence)


# ----------------------------------------------------------------------
# Steady-state analysis: MSER-5 truncation + batch means
# ----------------------------------------------------------------------
#: MSER's classic batch size: the rule is applied to means of five.
MSER_BATCH_SIZE = 5

#: Observations below which :func:`steady_state_estimate` refuses to
#: pretend there is a steady state to estimate.
MIN_STEADY_OBSERVATIONS = 2 * MSER_BATCH_SIZE


@dataclass(frozen=True)
class SteadyStateEstimate:
    """A truncated batch-means estimate of a steady-state mean.

    ``point`` is the batch-means estimate over the observations retained
    after MSER truncation; ``half_width`` its Student-t confidence
    half-interval over ``batches`` batch means.  ``truncated`` counts
    the warm-up observations deleted (a multiple of the MSER batch
    size), ``retained`` the observations the estimate is built from.
    """

    point: float
    half_width: float
    confidence: float
    truncated: int
    retained: int
    batches: int

    @property
    def low(self) -> float:
        return self.point - self.half_width

    @property
    def high(self) -> float:
        return self.point + self.half_width

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (
            f"{self.point:.2f} ± {self.half_width:.2f} "
            f"({self.confidence:.0%}, trunc {self.truncated}, "
            f"{self.batches} batches)"
        )


def mser5_truncation_index(
    observations: Sequence[float], batch_size: int = MSER_BATCH_SIZE
) -> int:
    """MSER warm-up truncation point, in raw-observation units.

    The Marginal Standard Error Rule over batch means: batch the series
    into non-overlapping batches of ``batch_size`` (MSER-5 with the
    default; the trailing remainder is ignored), and pick the deletion
    point d that minimizes

        MSER(d) = S²(d) / (m - d)²,   S²(d) = Σ_{j>=d} (Z_j - Z̄_d)²

    over the batch means Z_j — the standard error of the retained mean,
    penalizing both residual transient bias (which inflates S²) and
    over-deletion (which shrinks m - d).  The search is restricted to
    the first half of the batches, the usual guard against the
    statistic's instability when almost everything is deleted.  Ties
    take the smallest d.  Returns ``d* × batch_size``.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    m = len(observations) // batch_size
    if m < 2:
        raise ValueError(
            f"MSER needs at least 2 batches of {batch_size}, "
            f"got {len(observations)} observations"
        )
    means = [
        sum(observations[j * batch_size : (j + 1) * batch_size]) / batch_size
        for j in range(m)
    ]
    # Suffix sums make every candidate O(1): S²(d) = Σz² - (Σz)²/(m-d).
    suffix_sum = [0.0] * (m + 1)
    suffix_sq = [0.0] * (m + 1)
    for j in range(m - 1, -1, -1):
        suffix_sum[j] = suffix_sum[j + 1] + means[j]
        suffix_sq[j] = suffix_sq[j + 1] + means[j] * means[j]
    best_d = 0
    best_stat = math.inf
    for d in range(m // 2 + 1):
        kept = m - d
        variance_sum = suffix_sq[d] - suffix_sum[d] * suffix_sum[d] / kept
        # Snap cancellation noise to an exact zero: an (analytically)
        # constant suffix must tie at 0 for every d so the tie-break
        # below picks the smallest deletion, per the rule.
        if variance_sum < 1e-12 * suffix_sq[d]:
            variance_sum = 0.0
        stat = max(variance_sum, 0.0) / (kept * kept)
        if stat < best_stat:
            best_stat = stat
            best_d = d
    return best_d * batch_size


def steady_state_batches(retained: int) -> int:
    """Batch count for the post-truncation CI: ⌊√n⌋ clipped to [2, 30].

    The square-root rule balances batch length (long batches absorb
    autocorrelation) against degrees of freedom; the cap keeps batches
    long on big runs, where more than ~30 means buys no CI accuracy.
    """
    if retained < 2:
        raise ValueError(f"need at least 2 retained observations, got {retained}")
    return max(2, min(30, math.isqrt(retained)))


def steady_state_estimate(
    observations: Sequence[float],
    confidence: float = 0.95,
    batch_size: int = MSER_BATCH_SIZE,
) -> SteadyStateEstimate:
    """MSER-truncated batch-means estimate of a steady-state mean.

    The honest open-system pipeline in one call: delete the initial
    transient with :func:`mser5_truncation_index`, then treat the
    retained series as one long steady-state run and build a
    :func:`batch_means_interval` over ⌊√n⌋ batches.  The result carries
    its own evidence — truncation index and batch count — so a report
    can show *how much* warm-up was removed, not just the survivor.
    """
    n = len(observations)
    if n < MIN_STEADY_OBSERVATIONS:
        raise ValueError(
            f"steady-state estimation needs at least "
            f"{MIN_STEADY_OBSERVATIONS} observations, got {n}"
        )
    truncated = mser5_truncation_index(observations, batch_size=batch_size)
    retained = observations[truncated:]
    batches = steady_state_batches(len(retained))
    interval = batch_means_interval(retained, batches=batches, confidence=confidence)
    return SteadyStateEstimate(
        point=interval.mean,
        half_width=interval.half_width,
        confidence=confidence,
        truncated=truncated,
        retained=len(retained),
        batches=batches,
    )


class ReplicationAnalyzer:
    """Aggregates per-replication metrics into means and intervals.

    Each replication contributes a mapping ``{metric_name: value}``; the
    analyzer reports a :class:`ConfidenceInterval` per metric and can run
    the paper's pilot-study sizing for any of them.
    """

    def __init__(self, confidence: float = 0.95) -> None:
        if not 0.0 < confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {confidence}")
        self.confidence = confidence
        self._observations: Dict[str, list[float]] = {}
        self.replications = 0

    def add(self, metrics: Mapping[str, float]) -> None:
        """Record the metric dictionary of one completed replication."""
        self.replications += 1
        for name, value in metrics.items():
            self._observations.setdefault(name, []).append(float(value))

    def add_all(self, results: Iterable[Mapping[str, float]]) -> None:
        """Record many replications in the given order."""
        for metrics in results:
            self.add(metrics)

    def merge(self, other: "ReplicationAnalyzer") -> "ReplicationAnalyzer":
        """Fold another analyzer's observations into this one.

        The fan-in path for partial analyzers — per-point analyzers of a
        sweep (:meth:`SweepResult.combined`), or analyzers built over
        contiguous seed slices by out-of-order workers, folded back *in
        slice order*.  Appending raw observation lists (rather than
        re-aggregating interval objects) keeps the merged result
        bit-identical to one analyzer fed the same observations in the
        same order.  (The executors themselves guarantee ordering
        differently: they reassemble raw metric dicts by job index
        before any analyzer sees them.)
        """
        if other.confidence != self.confidence:
            raise ValueError(
                "cannot merge analyzers with different confidences: "
                f"{self.confidence} vs {other.confidence}"
            )
        self.replications += other.replications
        for name, values in other._observations.items():
            self._observations.setdefault(name, []).extend(values)
        return self

    @classmethod
    def merged(
        cls,
        parts: Iterable["ReplicationAnalyzer"],
        confidence: "float | None" = None,
    ) -> "ReplicationAnalyzer":
        """Combine partial analyzers (e.g. one per worker) into one.

        ``confidence`` defaults to the parts' own (shared) confidence;
        pass it explicitly only to assert a particular level.
        """
        part_list = list(parts)
        if confidence is None:
            confidence = part_list[0].confidence if part_list else 0.95
        combined = cls(confidence=confidence)
        for part in part_list:
            combined.merge(part)
        return combined

    def metrics(self) -> Iterable[str]:
        return self._observations.keys()

    def observations(self, metric: str) -> list[float]:
        return list(self._observations[metric])

    def interval(self, metric: str) -> ConfidenceInterval:
        if metric not in self._observations:
            raise KeyError(f"no observations recorded for metric {metric!r}")
        return confidence_interval(self._observations[metric], self.confidence)

    def mean(self, metric: str) -> float:
        return self.interval(metric).mean

    def summary(self) -> Dict[str, ConfidenceInterval]:
        return {name: self.interval(name) for name in self._observations}

    def additional_replications_for(
        self, metric: str, relative_half_width: float = 0.05
    ) -> int:
        """Pilot-study sizing: replications still needed so that the
        half-width falls below ``relative_half_width``·|mean| (the paper's
        "within 5% of the sample mean with 95% confidence")."""
        interval = self.interval(metric)
        target = abs(interval.mean) * relative_half_width
        if target == 0.0:
            return 0
        return required_replications(
            interval.half_width, target, interval.n
        )
