"""Arrival processes: interarrival-time streams for open systems.

The seed model is a *closed* system — NUSERS user processes cycling
through submit/think loops, the population fixed by Table 3.  Open
systems (paper §5: "modelling the arrival of new clients") instead draw
transaction arrivals from a stochastic point process, independent of how
many transactions are still in flight.  This module provides the point
processes as plain interarrival-time generators over a
:class:`~repro.despy.randomstream.RandomStream`:

* :func:`fixed_interarrivals` — a deterministic (D/·) source;
* :func:`poisson_interarrivals` — the M/·/· source: exponential gaps at
  a constant rate;
* :func:`mmpp_interarrivals` — a Markov-modulated Poisson process that
  cycles through states of different rates with exponentially
  distributed dwell times; two states (calm/burst) give the classic
  bursty-traffic source;
* :func:`aggregated_interarrivals` — the flow-aggregation source: a
  large closed population collapsed to Poisson gaps at the calibrated
  interactive-law rate (:func:`closed_equivalent_rate_tps`), rescaled
  by :func:`probe_rescaled_rate` for the probe cohort's own load.

All generators are infinite and consume *only* the stream they are
given, so an arrival sequence is a pure function of ``(seed, stream
name)`` — replayable exactly, and independent of every other stream of
the replication (service times, workload draws...).

Parameters are quoted in the units people use — rates in arrivals **per
second**, intervals and dwell times in milliseconds — but the yielded
gaps are **integer ticks** (see :mod:`repro.despy.timebase`): the
ms→tick conversion happens here, at the draw site, so the generators
feed ``Hold`` commands directly.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.despy.randomstream import RandomStream
from repro.despy.timebase import ms_to_ticks

#: Milliseconds per second — rates are quoted per second.
_MS_PER_SECOND = 1000.0


def fixed_interarrivals(interval_ms: float) -> Iterator[int]:
    """Deterministic source: one arrival every ``interval_ms``."""
    if interval_ms <= 0:
        raise ValueError(f"interval_ms must be > 0, got {interval_ms}")
    interval = ms_to_ticks(interval_ms)
    while True:
        yield interval


#: Gaps pre-drawn per refill by :func:`poisson_interarrivals`.
_POISSON_BLOCK = 256


def poisson_interarrivals(
    stream: RandomStream, rate_per_s: float
) -> Iterator[int]:
    """Poisson source: exponential gaps with mean ``1000 / rate_per_s`` ms.

    Gaps are pre-drawn in blocks of ``_POISSON_BLOCK``.  The stream is
    dedicated to this generator (module contract above), and a batched
    block consumes exactly the same underlying draws as scalar calls —
    so the yielded sequence is bit-identical to the scalar formulation.
    """
    if rate_per_s <= 0:
        raise ValueError(f"rate_per_s must be > 0, got {rate_per_s}")
    mean_ms = _MS_PER_SECOND / rate_per_s
    while True:
        yield from stream.exponential_ticks_block(mean_ms, _POISSON_BLOCK)


def closed_equivalent_rate_tps(
    population: int, think_time_ms: float, response_time_ms: float
) -> float:
    """The interactive response time law: λ = N / (Z + R).

    A closed population of ``population`` users, each thinking
    ``think_time_ms`` between transactions that take
    ``response_time_ms`` to come back, submits in steady state at this
    rate (transactions per second) — the open-stream equivalent a large
    closed population aggregates to.  The fixed-point calibration in
    :mod:`repro.core.aggregation` iterates this with R measured by
    pilot runs.
    """
    if population < 1:
        raise ValueError(f"population must be >= 1, got {population}")
    if think_time_ms <= 0:
        raise ValueError(
            f"think_time_ms must be > 0, got {think_time_ms} "
            "(a closed loop with zero think time has no finite "
            "zero-response rate to seed the fixed point)"
        )
    if response_time_ms < 0:
        raise ValueError(
            f"response_time_ms must be >= 0, got {response_time_ms}"
        )
    return population * _MS_PER_SECOND / (think_time_ms + response_time_ms)


def probe_rescaled_rate(
    rate_tps: float, population: int, probe_cohort: int
) -> float:
    """Aggregate-stream share of the population rate.

    The ``probe_cohort`` real user processes generate their own
    closed-loop load, so the aggregate source emits only the remaining
    ``(population - probe_cohort) / population`` share of the calibrated
    rate — total offered load stays λ, whatever the cohort size.
    """
    if rate_tps <= 0:
        raise ValueError(f"rate_tps must be > 0, got {rate_tps}")
    if population < 1:
        raise ValueError(f"population must be >= 1, got {population}")
    if not 0 <= probe_cohort < population:
        raise ValueError(
            f"probe_cohort must be in [0, population), got {probe_cohort} "
            f"of {population}"
        )
    return rate_tps * (population - probe_cohort) / population


def aggregated_interarrivals(
    stream: RandomStream, rate_per_s: float
) -> Iterator[int]:
    """The aggregated source: Poisson gaps at the calibrated rate.

    A superposition of many independent, sparse per-user renewal
    processes converges to a Poisson stream (Palm–Khintchine), which is
    what justifies collapsing the population in the first place — so the
    aggregate tier draws exponential gaps at the calibrated rate, on its
    own dedicated stream, through the same block-drawn fast path as
    :func:`poisson_interarrivals`.
    """
    return poisson_interarrivals(stream, rate_per_s)


def mmpp_interarrivals(
    stream: RandomStream,
    rates_per_s: Sequence[float],
    dwell_ms: Sequence[float],
) -> Iterator[int]:
    """Markov-modulated Poisson source cycling through rate states.

    The process starts in state 0 and cycles ``0 -> 1 -> ... -> 0``;
    state ``i`` emits arrivals at ``rates_per_s[i]`` and lasts an
    exponential dwell of mean ``dwell_ms[i]``.  With two states this is
    the standard bursty-arrival model: a calm state at a background rate
    and a burst state at a much higher one.

    On a state switch the pending exponential gap is *redrawn* at the
    new state's rate — valid by memorylessness, and it keeps every gap a
    single-stream draw so the sequence stays replayable.
    """
    if len(rates_per_s) != len(dwell_ms):
        raise ValueError(
            f"rates and dwell times must pair up, got {len(rates_per_s)} "
            f"rates and {len(dwell_ms)} dwell times"
        )
    if len(rates_per_s) < 2:
        raise ValueError("an MMPP needs at least two states")
    for rate in rates_per_s:
        if rate <= 0:
            raise ValueError(f"rates must be > 0, got {rate}")
    for dwell in dwell_ms:
        if dwell <= 0:
            raise ValueError(f"dwell times must be > 0, got {dwell}")
    state = 0
    remaining = stream.exponential(dwell_ms[state])
    carried = 0.0
    while True:
        gap = stream.exponential(_MS_PER_SECOND / rates_per_s[state])
        while gap >= remaining:
            # The dwell ends first: bank the dwelt time, move to the
            # next state and redraw the gap at its rate.
            carried += remaining
            state = (state + 1) % len(rates_per_s)
            remaining = stream.exponential(dwell_ms[state])
            gap = stream.exponential(_MS_PER_SECOND / rates_per_s[state])
        remaining -= gap
        # State-machine arithmetic stays in float ms; only the yielded
        # gap quantizes, through the one canonical ms→tick rounding.
        yield ms_to_ticks(carried + gap)
        carried = 0.0
