"""Reproducible, independent random streams.

A discrete-event *random* simulation needs several independent sources of
randomness (inter-arrival times, service times, workload choices...) that
are all reproducible from one root seed, so that a replication can be
replayed exactly and so that replication *r* of two different system
configurations sees the same workload (common random numbers — the
variance-reduction setup the paper's O2-vs-Texas comparisons rely on).

Each :class:`RandomStream` derives its own seed from ``(root_seed, name)``
through SHA-256, which makes distinct named streams statistically
independent while remaining pure functions of the root seed.
"""

from __future__ import annotations

import bisect
import hashlib
import random
from math import log as _log
from typing import List, Sequence, TypeVar

from repro.despy.timebase import ms_to_ticks

T = TypeVar("T")


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a root seed and a stream name."""
    digest = hashlib.sha256(f"{root_seed}/{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStream:
    """One named random stream with the distributions VOODB needs.

    Scalar draws are the replayable unit: every batched ``*_block``
    method consumes *exactly* the same underlying ``random.Random``
    draws as the equivalent run of scalar calls, so pre-drawing a block
    from a stream is invisible to replay as long as the block replaces
    consecutive scalar calls on that stream (draws on *other* streams
    interleave freely — each stream owns its own generator).
    """

    def __init__(self, root_seed: int, name: str) -> None:
        self.name = name
        self.root_seed = root_seed
        self._rng = random.Random(derive_seed(root_seed, name))
        self._zipf_cdfs: dict[tuple[int, float], list[float]] = {}
        #: probability vector -> (partial sums, total, last index)
        self._discrete_cdfs: dict = {}
        # ``randint`` is the hottest draw in the system (workload
        # materialization and object-graph generation draw millions);
        # ``random.Random.randint`` costs three Python frames
        # (randint → randrange → _randbelow) of pure argument checking
        # per draw.  This closure performs the *identical* rejection
        # sampling against ``getrandbits`` — the same bit stream, so
        # draws replay bit-identically — in a single frame.
        getrandbits = self._rng.getrandbits

        def _fast_randint(low: int, high: int) -> int:
            n = high - low + 1
            if n <= 0:
                raise ValueError(f"empty range for randint({low}, {high})")
            k = n.bit_length()
            r = getrandbits(k)
            while r >= n:
                r = getrandbits(k)
            return low + r

        self._fast_randint = _fast_randint
        # The pure pass-throughs below are aliased to the underlying
        # generator's bound methods: the wrapper frame is measurable.
        # The defs remain as API documentation; a subclass overriding
        # one of them keeps its override (no alias is installed then).
        cls = type(self)
        if cls.randint is RandomStream.randint:
            self.randint = _fast_randint
        if cls.random is RandomStream.random:
            self.random = self._rng.random
        if cls.uniform is RandomStream.uniform:
            self.uniform = self._rng.uniform
        if cls.choice is RandomStream.choice:
            self.choice = self._rng.choice

    # ------------------------------------------------------------------
    # Continuous distributions
    # ------------------------------------------------------------------
    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def exponential(self, mean: float) -> float:
        """Exponential with the given *mean* (not rate)."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be > 0, got {mean}")
        return self._rng.expovariate(1.0 / mean)

    def exponential_ticks(self, mean_ms: float) -> int:
        """One exponential delay with mean ``mean_ms``, in integer ticks.

        The draw-site conversion for the tick time base: consumes the
        identical underlying draw as :meth:`exponential`, then rounds
        through :func:`~repro.despy.timebase.ms_to_ticks` — the one
        canonical ms→tick rounding, so every delay in the system
        quantizes the same way.
        """
        return ms_to_ticks(self.exponential(mean_ms))

    def normal(self, mean: float, stdev: float) -> float:
        return self._rng.gauss(mean, stdev)

    def lognormal(self, mu: float, sigma: float) -> float:
        return self._rng.lognormvariate(mu, sigma)

    def triangular(self, low: float, high: float, mode: float) -> float:
        return self._rng.triangular(low, high, mode)

    # ------------------------------------------------------------------
    # Discrete distributions
    # ------------------------------------------------------------------
    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        return self._rng.randint(low, high)

    def bernoulli(self, p: float) -> bool:
        return self._rng.random() < p

    def random(self) -> float:
        return self._rng.random()

    def choice(self, items: Sequence[T]) -> T:
        return self._rng.choice(items)

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        return self._rng.sample(items, k)

    def shuffle(self, items: list) -> None:
        self._rng.shuffle(items)

    def discrete(self, probabilities: Sequence[float]) -> int:
        """Index drawn according to ``probabilities`` (must sum to ~1).

        Used for the OCB transaction mix (PSET/PSIMPLE/PHIER/PSTOCH) —
        once per transaction, always with the same tuple, so the
        validation and the cumulative sums are cached per distinct
        probability vector.  The draw itself is the identical
        ``random() * total`` compared against the same partial sums
        (``bisect_right`` finds the first strict exceedance exactly as
        the linear scan did), so sequences replay bit-for-bit.
        """
        key = tuple(probabilities)
        cached = self._discrete_cdfs.get(key)
        if cached is None:
            if any(p < 0 for p in probabilities):
                raise ValueError("probabilities must be >= 0")
            total = sum(probabilities)
            if not 0.999 <= total <= 1.001:
                raise ValueError(f"probabilities sum to {total}, expected 1.0")
            cumulative = 0.0
            sums = []
            for p in probabilities:
                cumulative += p
                sums.append(cumulative)
            cached = self._discrete_cdfs[key] = (sums, total, len(sums) - 1)
        sums, total, last = cached
        u = self._rng.random() * total
        index = bisect.bisect_right(sums, u)
        return index if index <= last else last

    def zipf_index(self, n: int, skew: float) -> int:
        """Zipf-like index in [0, n): rank r drawn with weight 1/(r+1)^skew.

        ``skew=0`` degenerates to the uniform distribution.  OCB's object
        locality windows use this to make low-index objects hotter than
        others.  The inverse CDF is cached per ``(n, skew)`` so repeated
        draws cost one binary search.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if skew == 0.0:
            # Same rejection sampling as randrange(n): identical bits.
            return self._fast_randint(0, n - 1)
        cdf = self._zipf_cdfs.get((n, skew))
        if cdf is None:
            cdf = _zipf_cdf(n, skew)
            self._zipf_cdfs[(n, skew)] = cdf
        return bisect.bisect_right(cdf, self._rng.random() * cdf[-1])

    # ------------------------------------------------------------------
    # Batched draws
    # ------------------------------------------------------------------
    # Each block consumes exactly the same underlying generator draws as
    # ``count`` scalar calls, in the same order — pre-drawing a block is
    # bit-identical to scalar consumption whenever the block stands in
    # for consecutive scalar calls on this stream.  Hot loops consume
    # the returned list index-wise instead of paying a method call (and
    # the wrapper frames underneath it) per variate.

    def exponential_block(self, mean: float, count: int) -> List[float]:
        """``count`` draws equivalent to ``exponential(mean)`` each.

        Replicates ``random.Random.expovariate`` exactly: one uniform
        draw per variate, transformed with the same float operations.
        """
        if mean <= 0:
            raise ValueError(f"exponential mean must be > 0, got {mean}")
        lambd = 1.0 / mean
        rnd = self._rng.random
        return [-_log(1.0 - rnd()) / lambd for __ in range(count)]

    def exponential_ticks_block(self, mean_ms: float, count: int) -> List[int]:
        """``count`` draws equivalent to ``exponential_ticks(mean_ms)`` each.

        Same underlying draws as :meth:`exponential_block`, converted at
        the draw site with the canonical ms→tick rounding.
        """
        if mean_ms <= 0:
            raise ValueError(f"exponential mean must be > 0, got {mean_ms}")
        lambd = 1.0 / mean_ms
        rnd = self._rng.random
        convert = ms_to_ticks
        return [convert(-_log(1.0 - rnd()) / lambd) for __ in range(count)]

    def uniform_block(self, low: float, high: float, count: int) -> List[float]:
        """``count`` draws equivalent to ``uniform(low, high)`` each."""
        span = high - low
        rnd = self._rng.random
        return [low + span * rnd() for __ in range(count)]

    def randint_block(self, low: int, high: int, count: int) -> List[int]:
        """``count`` draws equivalent to ``randint(low, high)`` each."""
        n = high - low + 1
        if n <= 0:
            raise ValueError(f"empty range for randint({low}, {high})")
        k = n.bit_length()
        getrandbits = self._rng.getrandbits
        block = []
        append = block.append
        for __ in range(count):
            r = getrandbits(k)
            while r >= n:
                r = getrandbits(k)
            append(low + r)
        return block

    def zipf_block(self, n: int, skew: float, count: int) -> List[int]:
        """``count`` draws equivalent to ``zipf_index(n, skew)`` each."""
        if n <= 0:
            raise ValueError("n must be positive")
        if skew == 0.0:
            return self.randint_block(0, n - 1, count)
        cdf = self._zipf_cdfs.get((n, skew))
        if cdf is None:
            cdf = _zipf_cdf(n, skew)
            self._zipf_cdfs[(n, skew)] = cdf
        rnd = self._rng.random
        top = cdf[-1]
        right = bisect.bisect_right
        return [right(cdf, rnd() * top) for __ in range(count)]

    def spawn(self, name: str) -> "RandomStream":
        """Create a child stream seeded from this stream's identity."""
        return RandomStream(derive_seed(self.root_seed, self.name), name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RandomStream {self.name!r} root={self.root_seed}>"


def _zipf_cdf(n: int, skew: float) -> list[float]:
    """Unnormalized cumulative Zipf weights for ranks 0..n-1."""
    cumulative = 0.0
    cdf = []
    for rank in range(n):
        cumulative += 1.0 / (rank + 1) ** skew
        cdf.append(cumulative)
    return cdf
