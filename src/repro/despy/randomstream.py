"""Reproducible, independent random streams.

A discrete-event *random* simulation needs several independent sources of
randomness (inter-arrival times, service times, workload choices...) that
are all reproducible from one root seed, so that a replication can be
replayed exactly and so that replication *r* of two different system
configurations sees the same workload (common random numbers — the
variance-reduction setup the paper's O2-vs-Texas comparisons rely on).

Each :class:`RandomStream` derives its own seed from ``(root_seed, name)``
through SHA-256, which makes distinct named streams statistically
independent while remaining pure functions of the root seed.
"""

from __future__ import annotations

import bisect
import hashlib
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a root seed and a stream name."""
    digest = hashlib.sha256(f"{root_seed}/{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStream:
    """One named random stream with the distributions VOODB needs."""

    def __init__(self, root_seed: int, name: str) -> None:
        self.name = name
        self.root_seed = root_seed
        self._rng = random.Random(derive_seed(root_seed, name))
        self._zipf_cdfs: dict[tuple[int, float], list[float]] = {}
        # The pure pass-throughs below are aliased to the underlying
        # generator's bound methods: workload materialization draws
        # millions of integers, and the wrapper frame is measurable.
        # The defs remain as API documentation; a subclass overriding
        # one of them keeps its override (no alias is installed then).
        cls = type(self)
        if cls.randint is RandomStream.randint:
            self.randint = self._rng.randint
        if cls.random is RandomStream.random:
            self.random = self._rng.random
        if cls.uniform is RandomStream.uniform:
            self.uniform = self._rng.uniform
        if cls.choice is RandomStream.choice:
            self.choice = self._rng.choice

    # ------------------------------------------------------------------
    # Continuous distributions
    # ------------------------------------------------------------------
    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def exponential(self, mean: float) -> float:
        """Exponential with the given *mean* (not rate)."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be > 0, got {mean}")
        return self._rng.expovariate(1.0 / mean)

    def normal(self, mean: float, stdev: float) -> float:
        return self._rng.gauss(mean, stdev)

    def lognormal(self, mu: float, sigma: float) -> float:
        return self._rng.lognormvariate(mu, sigma)

    def triangular(self, low: float, high: float, mode: float) -> float:
        return self._rng.triangular(low, high, mode)

    # ------------------------------------------------------------------
    # Discrete distributions
    # ------------------------------------------------------------------
    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        return self._rng.randint(low, high)

    def bernoulli(self, p: float) -> bool:
        return self._rng.random() < p

    def random(self) -> float:
        return self._rng.random()

    def choice(self, items: Sequence[T]) -> T:
        return self._rng.choice(items)

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        return self._rng.sample(items, k)

    def shuffle(self, items: list) -> None:
        self._rng.shuffle(items)

    def discrete(self, probabilities: Sequence[float]) -> int:
        """Index drawn according to ``probabilities`` (must sum to ~1).

        Used for the OCB transaction mix (PSET/PSIMPLE/PHIER/PSTOCH).
        """
        if any(p < 0 for p in probabilities):
            raise ValueError("probabilities must be >= 0")
        total = sum(probabilities)
        if not 0.999 <= total <= 1.001:
            raise ValueError(f"probabilities sum to {total}, expected 1.0")
        u = self._rng.random() * total
        cumulative = 0.0
        for index, p in enumerate(probabilities):
            cumulative += p
            if u < cumulative:
                return index
        return len(probabilities) - 1

    def zipf_index(self, n: int, skew: float) -> int:
        """Zipf-like index in [0, n): rank r drawn with weight 1/(r+1)^skew.

        ``skew=0`` degenerates to the uniform distribution.  OCB's object
        locality windows use this to make low-index objects hotter than
        others.  The inverse CDF is cached per ``(n, skew)`` so repeated
        draws cost one binary search.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if skew == 0.0:
            return self._rng.randrange(n)
        cdf = self._zipf_cdfs.get((n, skew))
        if cdf is None:
            cdf = _zipf_cdf(n, skew)
            self._zipf_cdfs[(n, skew)] = cdf
        return bisect.bisect_right(cdf, self._rng.random() * cdf[-1])

    def spawn(self, name: str) -> "RandomStream":
        """Create a child stream seeded from this stream's identity."""
        return RandomStream(derive_seed(self.root_seed, self.name), name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RandomStream {self.name!r} root={self.root_seed}>"


def _zipf_cdf(n: int, skew: float) -> list[float]:
    """Unnormalized cumulative Zipf weights for ranks 0..n-1."""
    cumulative = 0.0
    cdf = []
    for rank in range(n):
        cumulative += 1.0 / (rank + 1) ** skew
        cdf.append(cumulative)
    return cdf
