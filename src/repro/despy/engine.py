"""The simulation engine: clock, event loop and process bookkeeping.

A :class:`Simulation` owns one event list and one clock.  It can be driven
in two styles, mirroring how DESP-C++ models were written:

* **event scheduling** — ``sim.schedule(delay, handler, *args)`` runs a
  plain callable at a future time;
* **process interaction** — ``sim.process(generator)`` turns a generator
  into a :class:`~repro.despy.process.Process` whose ``yield`` statements
  are interpreted as Hold / Request / Release commands.

Both styles share the same deterministic event ordering, so they compose.

Time base
---------
The clock and every delay are **integer ticks** (1 tick = 2⁻²⁰ ms; see
:mod:`repro.despy.timebase`).  Convert milliseconds at the call site
with :func:`~repro.despy.timebase.ms_to_ticks`; fractional float delays
raise — they are unit bugs, not near-misses.  Integral floats (including
the ``float('inf')`` horizon sentinel, which saturates) are coerced.
:attr:`Simulation.now_ms` reports the clock in milliseconds for display.

Fast paths
----------
Zero-delay, priority-0 events (the continuations that dominate VOODB:
resource grants, gate openings, process wake-ups after a release) skip
the timed tiers and land on an immediate-dispatch FIFO; timed events go
through a calendar-queue event wheel with a far-future overflow heap —
see :mod:`repro.despy.events`.  The run loop merges the FIFO head with
the wheel's due head on the full ``(time, priority, seq)`` key, so the
execution order is *bit-identical* to a pure-heap kernel; only the
per-event cost changes.  The counters :attr:`Simulation.events_wheel_pushed`,
:attr:`Simulation.events_heap_pushed`, :attr:`Simulation.events_fast_dispatched`
and :attr:`Simulation.events_pooled_reused` report how much traffic each
tier carried and how many Event allocations the free-list pool saved.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Generator, Optional, Union

from repro.despy.errors import SchedulingError
from repro.despy.events import Event, EventList
from repro.despy.process import Process
from repro.despy.randomstream import RandomStream
from repro.despy.timebase import MS_PER_TICK, TICK_HORIZON, coerce_ticks

#: Fence value above any real sequence number (the engine drains the
#: immediate queue up to, but not past, a tick-tied timed event's seq).
_NO_FENCE = 9223372036854775807


def _coerce_horizon(until: Union[int, float]) -> Union[int, float]:
    """Normalize a ``run(until=...)`` horizon to ticks.

    ``float('inf')`` passes through (an infinite horizon compares fine
    against integer ticks); integral floats become ints; fractional
    floats are unit bugs and raise.
    """
    if isinstance(until, float):
        if math.isinf(until):
            return until
        if until != until or until != int(until):
            raise SchedulingError(
                f"run horizon must be integer ticks, got {until!r}; "
                "convert milliseconds with ms_to_ticks()"
            )
        return int(until)
    return until


class Simulation:
    """A single replication of a discrete-event random simulation.

    Parameters
    ----------
    seed:
        Root seed for this replication.  Named random streams derived via
        :meth:`stream` are independent of one another but fully determined
        by this seed, so a replication can always be replayed.
    trace:
        Optional callable invoked as ``trace(time, message)`` for kernel
        tracing; mainly useful in tests and debugging.  Tracing forces the
        engine onto a slower generic loop; leave it ``None`` for runs
        that matter.
    """

    def __init__(
        self,
        seed: int = 0,
        trace: Optional[Callable[[int, str], None]] = None,
    ) -> None:
        #: current simulated time in integer ticks
        self.now: int = 0
        self.seed = seed
        self._events = EventList()
        self._running = False
        self._trace = trace
        self._streams: dict[str, RandomStream] = {}
        self._processes_started = 0
        self._events_executed = 0
        #: active hold-warp horizon (ticks).  While the untraced run
        #: loop executes, this is the run's ``until`` (or the largest
        #: warpable tick under an infinite horizon); -1 disables the
        #: warp lane (outside run(), under trace, after stop()).  See
        #: Process._step.
        self._warp_until = -1

    @property
    def now_ms(self) -> float:
        """The clock in milliseconds (reporting only; exact < 2**53)."""
        return self.now * MS_PER_TICK

    # ------------------------------------------------------------------
    # Random streams
    # ------------------------------------------------------------------
    def stream(self, name: str) -> RandomStream:
        """Return the named random stream, creating it on first use.

        Streams are cached: asking twice for ``"disk"`` returns the same
        generator, so consumption order stays well-defined.
        """
        if name not in self._streams:
            self._streams[name] = RandomStream(self.seed, name)
        return self._streams[name]

    # ------------------------------------------------------------------
    # Event scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: int,
        handler: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``handler(*args)`` to run ``delay`` ticks from now."""
        if delay.__class__ is not int:
            delay = coerce_ticks(delay)
        if delay < 0:
            raise SchedulingError(f"delay must be >= 0, got {delay!r}")
        if delay == 0 and priority == 0:
            return self._events.push_immediate(self.now, handler, args)
        return self._events.push(self.now + delay, priority, handler, args)

    def schedule_at(
        self,
        time: int,
        handler: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``handler(*args)`` at an absolute tick time."""
        if time.__class__ is not int:
            time = coerce_ticks(time)
        if time < self.now:
            raise SchedulingError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        return self.schedule(time - self.now, handler, *args, priority=priority)

    def wake(self, handler: Callable[..., Any], *args: Any) -> Event:
        """Queue ``handler(*args)`` for immediate dispatch at the current time.

        Equivalent to ``schedule(0, handler, *args)`` in every
        observable way (ordering and cancellability included) — just
        spelled as what it is.
        """
        return self._events.push_immediate(self.now, handler, args)

    # ------------------------------------------------------------------
    # Process layer
    # ------------------------------------------------------------------
    def process(
        self,
        generator: Generator,
        name: str = "",
        delay: int = 0,
        priority: int = 0,
    ) -> Process:
        """Register a generator as a simulation process.

        The process starts ``delay`` ticks from now.  See
        :mod:`repro.despy.process` for the command protocol.
        """
        proc = Process(self, generator, name or f"process-{self._processes_started}")
        self._processes_started += 1
        self.schedule(delay, proc._step, None, priority=priority)
        return proc

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, until: Union[int, float] = math.inf) -> int:
        """Execute events in order until the list drains or ``until``.

        Returns the final simulation clock (ticks).  The clock is left
        at ``until`` when the horizon is hit with events still pending,
        and at the last executed event time otherwise.  An infinite
        horizon never touches the clock (``run(until=float("inf"))``
        behaves like ``run()``).

        A drained simulation is *reusable*: scheduling new events and
        calling :meth:`run` again continues on the same clock.  VOODB's
        multi-phase experiments (usage run → clustering → usage run,
        paper §4.4) rely on this.
        """
        if until.__class__ is not int:
            until = _coerce_horizon(until)
        if self._trace is not None:
            return self._run_traced(until)
        self._running = True
        events = self._events
        immediate = events._immediate
        popleft = immediate.popleft
        advance = events._advance
        pool_append = events._pool.append
        executed = self._events_executed
        fast = 0
        now = self.now
        events.now_hint = now
        # Arm the hold-warp lane (see Process._step): a handler may
        # advance the clock in place up to this tick when the event
        # list is provably empty.  Holds landing at the tick horizon
        # must keep their overflow-heap semantics, hence the -1.
        self._warp_until = until if until.__class__ is int else TICK_HORIZON - 1
        try:
            while True:
                # A handler may have warped the clock forward without
                # queueing anything — re-read it every iteration.
                now = self.now
                # Timed head: the due list's live slice, refilled from
                # the wheel/heap only when it runs dry.
                if events._timed:
                    due = events._due
                    idx = events._due_idx
                    if idx < len(due):
                        head = due[idx]
                        if head.cancelled:
                            events._due_idx = idx + 1
                            events._timed -= 1
                            continue
                    else:
                        head = advance()
                else:
                    head = None
                if immediate:
                    if now > until:
                        # Horizon in the past: leave the queue intact
                        # for the next run().
                        return self.now
                    seq_fence = _NO_FENCE
                    if head is not None and head.time == now:
                        # A timed event on the current tick precedes the
                        # pending immediates when its priority is
                        # negative, or on a seq tie-break at priority 0.
                        # (Priority-0 timed events usually come from an
                        # earlier tick and win the tie-break — but a
                        # zero-tick positive delay, now + 0 == now,
                        # lands on this tick with a *larger* seq, so
                        # the compare is required.)
                        prio = head.priority
                        if prio < 0 or (
                            prio == 0 and head.seq < immediate[0].seq
                        ):
                            events._due_idx += 1
                            events._timed -= 1
                            executed += 1
                            self._events_executed = executed
                            head.handler(*head.args)
                            if head.pooled:
                                head.handler = None
                                pool_append(head)
                            continue
                        if prio == 0:
                            # The tick-tied head sorts between two
                            # queued immediates: drain only up to it.
                            seq_fence = head.seq
                    # No preempting timed contender: drain immediates
                    # until the fence, or until one of their handlers
                    # pushes a timed event that could preempt this tick
                    # (preempt_dirty).
                    events.preempt_dirty = False
                    # The timed head is fixed for this drain (pushes
                    # that could tie the tick set preempt_dirty and
                    # break out), so its tie status is too.
                    tie_free = (
                        head is None or head.time != now or head.priority > 0
                    )
                    while immediate:
                        event = immediate[0]
                        if event.seq > seq_fence:
                            break
                        popleft()
                        if event.cancelled:
                            continue
                        executed += 1
                        # Kept live (not only synced in the finally) so
                        # mid-run introspection matches the traced loop.
                        self._events_executed = executed
                        fast += 1
                        events.quiet = False if immediate else tie_free
                        event.handler(*event.args)
                        if event.pooled:
                            event.handler = None
                            pool_append(event)
                        if events.preempt_dirty:
                            break
                    continue
                if head is None:
                    break
                time = head.time
                if time > until:
                    if until > now:
                        self.now = until
                    return self.now
                events._due_idx += 1
                events._timed -= 1
                events.now_hint = now = self.now = time
                executed += 1
                self._events_executed = executed
                # Refresh the cached merged-continuation test for the
                # new tick (the immediate queue is empty here; see
                # EventList._compute_quiet for the due-head/fallback
                # reasoning).
                due = events._due
                idx = events._due_idx
                if idx < len(due):
                    nxt = due[idx]
                    events.quiet = nxt.priority > 0 or nxt.time != time
                else:
                    bucket_heap = events._bucket_heap
                    heap = events._heap
                    events.quiet = not (
                        bucket_heap
                        and time >> events._shift >= bucket_heap[0]
                    ) and not (
                        heap and heap[0][0] == time and heap[0][1] <= 0
                    )
                head.handler(*head.args)
                if head.pooled:
                    head.handler = None
                    pool_append(head)
        finally:
            self._events_executed = executed
            events.fast_dispatched += fast
            self._running = False
            self._warp_until = -1
        if until.__class__ is int and until > now:
            self.now = until
        return self.now

    def _run_traced(self, until: Union[int, float]) -> int:
        """Generic loop used only when a trace callback is installed."""
        self._running = True
        events = self._events
        pool_append = events._pool.append
        try:
            while True:
                next_time = events.peek_time()
                if next_time is None:
                    break
                if next_time > until:
                    if until > self.now:
                        self.now = until
                    return self.now
                event = events.pop()
                events.now_hint = self.now = event.time
                events.quiet = events._compute_quiet(event.time)
                self._events_executed += 1
                name = getattr(event.handler, "__qualname__", "?")
                self._trace(self.now, f"execute {name}")
                event.handler(*event.args)
                if event.pooled:
                    event.handler = None
                    pool_append(event)
        finally:
            self._running = False
        if until.__class__ is int and until > self.now:
            self.now = until
        return self.now

    def stop(self) -> None:
        """Drop every pending event, ending :meth:`run` at the current time."""
        self._events.clear()
        # Disarm the warp lane: a process stepping on after stop() must
        # park normally so the drained loop can actually exit.
        self._warp_until = -1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of events (live or cancelled) still queued."""
        return len(self._events)

    @property
    def events_executed(self) -> int:
        """Total events the loop has dispatched so far."""
        return self._events_executed

    @property
    def events_heap_pushed(self) -> int:
        """Events that paid a far-future overflow heap push (perf counter)."""
        return self._events.heap_pushed

    @property
    def events_wheel_pushed(self) -> int:
        """Timed events routed through the calendar wheel (perf counter)."""
        return self._events.wheel_pushed

    @property
    def events_fast_dispatched(self) -> int:
        """Events dispatched straight off the immediate queue (perf counter)."""
        return self._events.fast_dispatched

    @property
    def events_pooled_reused(self) -> int:
        """Event objects recycled through the free list instead of
        allocated fresh (perf counter)."""
        return self._events.pooled_reused

    @property
    def events_merged_continuations(self) -> int:
        """Zero-delay continuations the process layer ran in place,
        without any queue round-trip at all (perf counter)."""
        return self._events.merged_continuations

    @property
    def events_holds_warped(self) -> int:
        """Timed holds that advanced the clock in place — the event
        list was provably empty, so the push/dispatch round trip was
        skipped entirely (perf counter)."""
        return self._events.holds_warped

    @property
    def events_ticks_overflowed(self) -> int:
        """Pushes saturated at the tick horizon (perf counter; see
        :mod:`repro.despy.timebase`)."""
        return self._events.ticks_overflowed

    @property
    def events_wheel_recalibrations(self) -> int:
        """Adaptive bucket-width re-derivations applied (perf counter)."""
        return self._events.wheel_recalibrations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulation t={self.now} pending={self.pending_events} "
            f"seed={self.seed}>"
        )
