"""The simulation engine: clock, event loop and process bookkeeping.

A :class:`Simulation` owns one event list and one clock.  It can be driven
in two styles, mirroring how DESP-C++ models were written:

* **event scheduling** — ``sim.schedule(delay, handler, *args)`` runs a
  plain callable at a future time;
* **process interaction** — ``sim.process(generator)`` turns a generator
  into a :class:`~repro.despy.process.Process` whose ``yield`` statements
  are interpreted as Hold / Request / Release commands.

Both styles share the same deterministic event ordering, so they compose.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Generator, Optional

from repro.despy.errors import SchedulingError
from repro.despy.events import Event, EventList
from repro.despy.process import Process
from repro.despy.randomstream import RandomStream


class Simulation:
    """A single replication of a discrete-event random simulation.

    Parameters
    ----------
    seed:
        Root seed for this replication.  Named random streams derived via
        :meth:`stream` are independent of one another but fully determined
        by this seed, so a replication can always be replayed.
    trace:
        Optional callable invoked as ``trace(time, message)`` for kernel
        tracing; mainly useful in tests and debugging.
    """

    def __init__(
        self,
        seed: int = 0,
        trace: Optional[Callable[[float, str], None]] = None,
    ) -> None:
        self.now: float = 0.0
        self.seed = seed
        self._events = EventList()
        self._running = False
        self._trace = trace
        self._streams: dict[str, RandomStream] = {}
        self._processes_started = 0
        self._events_executed = 0

    # ------------------------------------------------------------------
    # Random streams
    # ------------------------------------------------------------------
    def stream(self, name: str) -> RandomStream:
        """Return the named random stream, creating it on first use.

        Streams are cached: asking twice for ``"disk"`` returns the same
        generator, so consumption order stays well-defined.
        """
        if name not in self._streams:
            self._streams[name] = RandomStream(self.seed, name)
        return self._streams[name]

    # ------------------------------------------------------------------
    # Event scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        handler: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``handler(*args)`` to run ``delay`` time units from now."""
        if delay < 0 or math.isnan(delay):
            raise SchedulingError(f"delay must be >= 0, got {delay!r}")
        return self._events.push(self.now + delay, priority, handler, args)

    def schedule_at(
        self,
        time: float,
        handler: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``handler(*args)`` at an absolute simulated time."""
        if time < self.now:
            raise SchedulingError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        return self.schedule(time - self.now, handler, *args, priority=priority)

    # ------------------------------------------------------------------
    # Process layer
    # ------------------------------------------------------------------
    def process(
        self,
        generator: Generator,
        name: str = "",
        delay: float = 0.0,
        priority: int = 0,
    ) -> Process:
        """Register a generator as a simulation process.

        The process starts ``delay`` time units from now.  See
        :mod:`repro.despy.process` for the command protocol.
        """
        proc = Process(self, generator, name or f"process-{self._processes_started}")
        self._processes_started += 1
        self.schedule(delay, proc._step, None, priority=priority)
        return proc

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, until: float = math.inf) -> float:
        """Execute events in order until the list drains or ``until``.

        Returns the final simulation clock.  The clock is left at
        ``until`` when the horizon is hit with events still pending, and
        at the last executed event time otherwise.

        A drained simulation is *reusable*: scheduling new events and
        calling :meth:`run` again continues on the same clock.  VOODB's
        multi-phase experiments (usage run → clustering → usage run,
        paper §4.4) rely on this.
        """
        self._running = True
        events = self._events
        while events:
            next_time = events.peek_time()
            if next_time is None:
                break
            if next_time > until:
                self.now = until
                self._running = False
                return self.now
            event = events.pop()
            self.now = event.time
            self._events_executed += 1
            if self._trace is not None:
                name = getattr(event.handler, "__qualname__", "?")
                self._trace(self.now, f"execute {name}")
            event.handler(*event.args)
        self._running = False
        if until is not math.inf and until > self.now:
            self.now = until
        return self.now

    def stop(self) -> None:
        """Drop every pending event, ending :meth:`run` at the current time."""
        self._events.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of events (live or cancelled) still queued."""
        return len(self._events)

    @property
    def events_executed(self) -> int:
        """Total events the loop has dispatched so far."""
        return self._events_executed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulation t={self.now:.6g} pending={self.pending_events} "
            f"seed={self.seed}>"
        )
