"""The simulation engine: clock, event loop and process bookkeeping.

A :class:`Simulation` owns one event list and one clock.  It can be driven
in two styles, mirroring how DESP-C++ models were written:

* **event scheduling** — ``sim.schedule(delay, handler, *args)`` runs a
  plain callable at a future time;
* **process interaction** — ``sim.process(generator)`` turns a generator
  into a :class:`~repro.despy.process.Process` whose ``yield`` statements
  are interpreted as Hold / Request / Release commands.

Both styles share the same deterministic event ordering, so they compose.

Fast paths
----------
Zero-delay, priority-0 events (the continuations that dominate VOODB:
resource grants, gate openings, process wake-ups after a release) skip
the timed tiers and land on an immediate-dispatch FIFO; timed events go
through a calendar-queue event wheel with a far-future overflow heap —
see :mod:`repro.despy.events`.  The run loop merges the FIFO head with
the wheel's due head on the full ``(time, priority, seq)`` key, so the
execution order is *bit-identical* to a pure-heap kernel; only the
per-event cost changes.  The counters :attr:`Simulation.events_wheel_pushed`,
:attr:`Simulation.events_heap_pushed`, :attr:`Simulation.events_fast_dispatched`
and :attr:`Simulation.events_pooled_reused` report how much traffic each
tier carried and how many Event allocations the free-list pool saved.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Generator, Optional

from repro.despy.errors import SchedulingError
from repro.despy.events import Event, EventList
from repro.despy.process import Process
from repro.despy.randomstream import RandomStream

#: Fence value above any real sequence number (the engine drains the
#: immediate queue up to, but not past, a tick-tied timed event's seq).
_NO_FENCE = 9223372036854775807


class Simulation:
    """A single replication of a discrete-event random simulation.

    Parameters
    ----------
    seed:
        Root seed for this replication.  Named random streams derived via
        :meth:`stream` are independent of one another but fully determined
        by this seed, so a replication can always be replayed.
    trace:
        Optional callable invoked as ``trace(time, message)`` for kernel
        tracing; mainly useful in tests and debugging.  Tracing forces the
        engine onto a slower generic loop; leave it ``None`` for runs
        that matter.
    """

    def __init__(
        self,
        seed: int = 0,
        trace: Optional[Callable[[float, str], None]] = None,
    ) -> None:
        self.now: float = 0.0
        self.seed = seed
        self._events = EventList()
        self._running = False
        self._trace = trace
        self._streams: dict[str, RandomStream] = {}
        self._processes_started = 0
        self._events_executed = 0

    # ------------------------------------------------------------------
    # Random streams
    # ------------------------------------------------------------------
    def stream(self, name: str) -> RandomStream:
        """Return the named random stream, creating it on first use.

        Streams are cached: asking twice for ``"disk"`` returns the same
        generator, so consumption order stays well-defined.
        """
        if name not in self._streams:
            self._streams[name] = RandomStream(self.seed, name)
        return self._streams[name]

    # ------------------------------------------------------------------
    # Event scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        handler: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``handler(*args)`` to run ``delay`` time units from now."""
        if delay < 0 or math.isnan(delay):
            raise SchedulingError(f"delay must be >= 0, got {delay!r}")
        if delay == 0.0 and priority == 0:
            return self._events.push_immediate(self.now, handler, args)
        return self._events.push(self.now + delay, priority, handler, args)

    def schedule_at(
        self,
        time: float,
        handler: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``handler(*args)`` at an absolute simulated time."""
        if time < self.now:
            raise SchedulingError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        return self.schedule(time - self.now, handler, *args, priority=priority)

    def wake(self, handler: Callable[..., Any], *args: Any) -> Event:
        """Queue ``handler(*args)`` for immediate dispatch at the current time.

        Equivalent to ``schedule(0.0, handler, *args)`` in every
        observable way (ordering and cancellability included) — just
        spelled as what it is.
        """
        return self._events.push_immediate(self.now, handler, args)

    # ------------------------------------------------------------------
    # Process layer
    # ------------------------------------------------------------------
    def process(
        self,
        generator: Generator,
        name: str = "",
        delay: float = 0.0,
        priority: int = 0,
    ) -> Process:
        """Register a generator as a simulation process.

        The process starts ``delay`` time units from now.  See
        :mod:`repro.despy.process` for the command protocol.
        """
        proc = Process(self, generator, name or f"process-{self._processes_started}")
        self._processes_started += 1
        self.schedule(delay, proc._step, None, priority=priority)
        return proc

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, until: float = math.inf) -> float:
        """Execute events in order until the list drains or ``until``.

        Returns the final simulation clock.  The clock is left at
        ``until`` when the horizon is hit with events still pending, and
        at the last executed event time otherwise.  An infinite horizon
        never touches the clock (``run(until=float("inf"))`` behaves like
        ``run()``).

        A drained simulation is *reusable*: scheduling new events and
        calling :meth:`run` again continues on the same clock.  VOODB's
        multi-phase experiments (usage run → clustering → usage run,
        paper §4.4) rely on this.
        """
        if self._trace is not None:
            return self._run_traced(until)
        self._running = True
        events = self._events
        immediate = events._immediate
        popleft = immediate.popleft
        advance = events._advance
        pool_append = events._pool.append
        executed = self._events_executed
        fast = 0
        now = self.now
        events.now_hint = now
        try:
            while True:
                # Timed head: the due list's live slice, refilled from
                # the wheel/heap only when it runs dry.
                if events._timed:
                    due = events._due
                    idx = events._due_idx
                    if idx < len(due):
                        head = due[idx]
                        if head.cancelled:
                            events._due_idx = idx + 1
                            events._timed -= 1
                            continue
                    else:
                        head = advance()
                else:
                    head = None
                if immediate:
                    if now > until:
                        # Horizon in the past: leave the queue intact
                        # for the next run().
                        return self.now
                    seq_fence = _NO_FENCE
                    if head is not None and head.time == now:
                        # A timed event on the current tick precedes the
                        # pending immediates when its priority is
                        # negative, or on a seq tie-break at priority 0.
                        # (Priority-0 timed events usually come from an
                        # earlier tick and win the tie-break — but a
                        # positive delay absorbed by float rounding,
                        # now + delay == now, lands on this tick with a
                        # *larger* seq, so the compare is required.)
                        prio = head.priority
                        if prio < 0 or (
                            prio == 0 and head.seq < immediate[0].seq
                        ):
                            events._due_idx += 1
                            events._timed -= 1
                            executed += 1
                            self._events_executed = executed
                            head.handler(*head.args)
                            if head.pooled:
                                head.handler = None
                                pool_append(head)
                            continue
                        if prio == 0:
                            # The tick-tied head sorts between two
                            # queued immediates: drain only up to it.
                            seq_fence = head.seq
                    # No preempting timed contender: drain immediates
                    # until the fence, or until one of their handlers
                    # pushes a timed event that could preempt this tick
                    # (preempt_dirty).
                    events.preempt_dirty = False
                    while immediate:
                        event = immediate[0]
                        if event.seq > seq_fence:
                            break
                        popleft()
                        if event.cancelled:
                            continue
                        executed += 1
                        # Kept live (not only synced in the finally) so
                        # mid-run introspection matches the traced loop.
                        self._events_executed = executed
                        fast += 1
                        event.handler(*event.args)
                        if event.pooled:
                            event.handler = None
                            pool_append(event)
                        if events.preempt_dirty:
                            break
                    continue
                if head is None:
                    break
                time = head.time
                if time > until:
                    if until > now:
                        self.now = until
                    return self.now
                events._due_idx += 1
                events._timed -= 1
                events.now_hint = now = self.now = time
                executed += 1
                self._events_executed = executed
                head.handler(*head.args)
                if head.pooled:
                    head.handler = None
                    pool_append(head)
        finally:
            self._events_executed = executed
            events.fast_dispatched += fast
            self._running = False
        if not math.isinf(until) and until > now:
            self.now = until
        return self.now

    def _run_traced(self, until: float) -> float:
        """Generic loop used only when a trace callback is installed."""
        self._running = True
        events = self._events
        pool_append = events._pool.append
        try:
            while True:
                next_time = events.peek_time()
                if next_time is None:
                    break
                if next_time > until:
                    if until > self.now:
                        self.now = until
                    return self.now
                event = events.pop()
                events.now_hint = self.now = event.time
                self._events_executed += 1
                name = getattr(event.handler, "__qualname__", "?")
                self._trace(self.now, f"execute {name}")
                event.handler(*event.args)
                if event.pooled:
                    event.handler = None
                    pool_append(event)
        finally:
            self._running = False
        if not math.isinf(until) and until > self.now:
            self.now = until
        return self.now

    def stop(self) -> None:
        """Drop every pending event, ending :meth:`run` at the current time."""
        self._events.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of events (live or cancelled) still queued."""
        return len(self._events)

    @property
    def events_executed(self) -> int:
        """Total events the loop has dispatched so far."""
        return self._events_executed

    @property
    def events_heap_pushed(self) -> int:
        """Events that paid a far-future overflow heap push (perf counter)."""
        return self._events.heap_pushed

    @property
    def events_wheel_pushed(self) -> int:
        """Timed events routed through the calendar wheel (perf counter)."""
        return self._events.wheel_pushed

    @property
    def events_fast_dispatched(self) -> int:
        """Events dispatched straight off the immediate queue (perf counter)."""
        return self._events.fast_dispatched

    @property
    def events_pooled_reused(self) -> int:
        """Event objects recycled through the free list instead of
        allocated fresh (perf counter)."""
        return self._events.pooled_reused

    @property
    def events_merged_continuations(self) -> int:
        """Zero-delay continuations the process layer ran in place,
        without any queue round-trip at all (perf counter)."""
        return self._events.merged_continuations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulation t={self.now:.6g} pending={self.pending_events} "
            f"seed={self.seed}>"
        )
