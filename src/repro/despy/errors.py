"""Exception hierarchy for the despy simulation kernel."""


class DespyError(Exception):
    """Base class for every error raised by the despy kernel."""


class SchedulingError(DespyError):
    """Raised for invalid scheduling requests (negative delays, events
    scheduled in the past, cancelling an already-executed event...)."""


class ResourceError(DespyError):
    """Raised for invalid resource operations (releasing a resource that
    is not held, non-positive capacity...)."""
