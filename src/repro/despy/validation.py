"""Closed-form queueing results used to validate the kernel.

DESP-C++ was validated by re-running QNAP2 models and comparing outputs
(paper §3.2.1).  QNAP2 is proprietary, so this reproduction validates the
kernel against an even harder oracle: exact stationary results for M/M/1
and M/M/c queues.  The test suite builds those queues out of despy
primitives and asserts the simulated utilization, queue length and
response time land on these formulas.

The cluster topology layer is validated the same way, against the
multi-node generalizations:

* **parallel M/M/c nodes** — a Poisson stream probabilistically split
  over independent nodes stays Poisson per branch (Poisson splitting),
  so each node is an exact M/M/c and the cluster sojourn time is the
  split-weighted mean (:func:`parallel_mmc_mean_response_time`);
* **open Jackson networks** — nodes connected by a substochastic
  routing matrix; the product-form theorem makes each node an
  independent M/M/c at its effective arrival rate, which
  :func:`jackson_arrival_rates` obtains from the traffic equations
  λ = γ + Rᵀλ (solved exactly, pure-Python Gaussian elimination).

Notation: ``arrival_rate`` λ, ``service_rate`` μ, ``servers`` c,
ρ = λ/(cμ) must be < 1 for stationarity; γ is the vector of external
(exogenous) arrival rates and ``routing[i][j]`` the probability a job
leaving node *i* proceeds to node *j* (row sums ≤ 1, the rest exits).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple


def _check_stable(arrival_rate: float, service_rate: float, servers: int = 1) -> float:
    if arrival_rate <= 0 or service_rate <= 0:
        raise ValueError("rates must be positive")
    if servers < 1:
        raise ValueError("need at least one server")
    rho = arrival_rate / (servers * service_rate)
    if rho >= 1.0:
        raise ValueError(f"unstable queue: utilization {rho:.3f} >= 1")
    return rho


def mm1_utilization(arrival_rate: float, service_rate: float) -> float:
    """Server utilization ρ = λ/μ of the M/M/1 queue."""
    return _check_stable(arrival_rate, service_rate)


def mm1_mean_queue_length(arrival_rate: float, service_rate: float) -> float:
    """Mean number waiting in queue, Lq = ρ²/(1-ρ)."""
    rho = _check_stable(arrival_rate, service_rate)
    return rho * rho / (1.0 - rho)


def mm1_mean_response_time(arrival_rate: float, service_rate: float) -> float:
    """Mean sojourn time (wait + service), W = 1/(μ-λ)."""
    _check_stable(arrival_rate, service_rate)
    return 1.0 / (service_rate - arrival_rate)


def mmc_erlang_c(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Erlang C: probability an arrival must wait in an M/M/c queue."""
    rho = _check_stable(arrival_rate, service_rate, servers)
    a = arrival_rate / service_rate  # offered load in Erlangs
    summation = sum(a**k / math.factorial(k) for k in range(servers))
    tail = a**servers / (math.factorial(servers) * (1.0 - rho))
    return tail / (summation + tail)


def mmc_mean_queue_length(
    arrival_rate: float, service_rate: float, servers: int
) -> float:
    """Mean number waiting in queue for M/M/c: Lq = C·ρ/(1-ρ)."""
    rho = _check_stable(arrival_rate, service_rate, servers)
    c_prob = mmc_erlang_c(arrival_rate, service_rate, servers)
    return c_prob * rho / (1.0 - rho)


def mmc_mean_response_time(
    arrival_rate: float, service_rate: float, servers: int
) -> float:
    """Mean sojourn time for M/M/c: W = C/(cμ-λ) + 1/μ."""
    _check_stable(arrival_rate, service_rate, servers)
    c_prob = mmc_erlang_c(arrival_rate, service_rate, servers)
    return c_prob / (servers * service_rate - arrival_rate) + 1.0 / service_rate


def md1_mean_queue_length(arrival_rate: float, service_rate: float) -> float:
    """M/D/1 (deterministic service): Lq = ρ²/(2(1-ρ)).

    Deterministic service is despy's bread and butter — VOODB's disk
    times are constants — so this Pollaczek-Khinchine special case is
    the validation oracle closest to how the model actually runs.
    """
    rho = _check_stable(arrival_rate, service_rate)
    return rho * rho / (2.0 * (1.0 - rho))


def md1_mean_response_time(arrival_rate: float, service_rate: float) -> float:
    """M/D/1 mean sojourn time: Wq + service = Lq/λ + 1/μ."""
    _check_stable(arrival_rate, service_rate)
    lq = md1_mean_queue_length(arrival_rate, service_rate)
    return lq / arrival_rate + 1.0 / service_rate


# ----------------------------------------------------------------------
# Cluster oracles: parallel M/M/c nodes and open Jackson networks
# ----------------------------------------------------------------------
def _check_split(split: Sequence[float]) -> Tuple[float, ...]:
    probabilities = tuple(float(p) for p in split)
    if not probabilities:
        raise ValueError("split must name at least one node")
    for p in probabilities:
        if p < 0 or not math.isfinite(p):
            raise ValueError(f"split probabilities must be >= 0, got {p}")
    total = sum(probabilities)
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"split probabilities must sum to 1, got {total}")
    return probabilities


def _broadcast_servers(servers, count: int) -> Tuple[int, ...]:
    if servers is None:
        return (1,) * count
    if isinstance(servers, int):
        return (servers,) * count
    resolved = tuple(int(c) for c in servers)
    if len(resolved) != count:
        raise ValueError(
            f"servers names {len(resolved)} nodes, expected {count}"
        )
    return resolved


def _broadcast_rates(service_rates, count: int) -> Tuple[float, ...]:
    if isinstance(service_rates, (int, float)):
        return (float(service_rates),) * count
    resolved = tuple(float(mu) for mu in service_rates)
    if len(resolved) != count:
        raise ValueError(
            f"service_rates names {len(resolved)} nodes, expected {count}"
        )
    return resolved


def parallel_mmc_utilizations(
    arrival_rate: float,
    split: Sequence[float],
    service_rates,
    servers=None,
) -> Tuple[float, ...]:
    """Per-node utilization of a probabilistically split M/M/c cluster.

    A Poisson(λ) stream thinned with probabilities ``split`` yields an
    independent Poisson(λ·pᵢ) stream per node, so node *i* is an exact
    M/M/cᵢ at rate λ·pᵢ — the oracle for the sharded-cluster shape the
    scale-out scenarios simulate.
    """
    probabilities = _check_split(split)
    counts = _broadcast_servers(servers, len(probabilities))
    rates = _broadcast_rates(service_rates, len(probabilities))
    utilizations = []
    for p, mu, c in zip(probabilities, rates, counts):
        if p == 0.0:
            utilizations.append(0.0)
            continue
        utilizations.append(_check_stable(arrival_rate * p, mu, c))
    return tuple(utilizations)


def parallel_mmc_mean_response_time(
    arrival_rate: float,
    split: Sequence[float],
    service_rates,
    servers=None,
) -> float:
    """Cluster sojourn time of a split M/M/c cluster: W = Σ pᵢ·Wᵢ(λpᵢ)."""
    probabilities = _check_split(split)
    counts = _broadcast_servers(servers, len(probabilities))
    rates = _broadcast_rates(service_rates, len(probabilities))
    total = 0.0
    for p, mu, c in zip(probabilities, rates, counts):
        if p == 0.0:
            continue
        total += p * mmc_mean_response_time(arrival_rate * p, mu, c)
    return total


def _solve_linear(matrix: List[List[float]], vector: List[float]) -> List[float]:
    """Solve ``matrix @ x = vector`` by Gaussian elimination (pivoted).

    The systems here are tiny (one row per cluster node), so a dense
    pure-Python solve keeps despy dependency-free.
    """
    n = len(vector)
    augmented = [list(row) + [vector[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(augmented[r][col]))
        if abs(augmented[pivot][col]) < 1e-12:
            raise ValueError("singular traffic equations (bad routing matrix)")
        augmented[col], augmented[pivot] = augmented[pivot], augmented[col]
        head = augmented[col][col]
        for r in range(col + 1, n):
            factor = augmented[r][col] / head
            if factor == 0.0:
                continue
            for c in range(col, n + 1):
                augmented[r][c] -= factor * augmented[col][c]
    solution = [0.0] * n
    for row in range(n - 1, -1, -1):
        acc = augmented[row][n]
        for c in range(row + 1, n):
            acc -= augmented[row][c] * solution[c]
        solution[row] = acc / augmented[row][row]
    return solution


def jackson_arrival_rates(
    external_rates: Sequence[float],
    routing: Optional[Sequence[Sequence[float]]] = None,
) -> Tuple[float, ...]:
    """Effective per-node arrival rates of an open Jackson network.

    Solves the traffic equations λⱼ = γⱼ + Σᵢ λᵢ·routing[i][j] exactly.
    ``routing`` rows must be substochastic (sum ≤ 1; the remainder is
    the exit probability); ``None`` means every job leaves after one
    service (a parallel cluster), so λ = γ.
    """
    gammas = tuple(float(g) for g in external_rates)
    if not gammas:
        raise ValueError("external_rates must name at least one node")
    for g in gammas:
        if g < 0 or not math.isfinite(g):
            raise ValueError(f"external rates must be >= 0, got {g}")
    if sum(gammas) <= 0:
        raise ValueError("an open network needs some external arrivals")
    if routing is None:
        return gammas
    n = len(gammas)
    rows = [list(map(float, row)) for row in routing]
    if len(rows) != n or any(len(row) != n for row in rows):
        raise ValueError(f"routing must be a {n}x{n} matrix")
    for row in rows:
        for p in row:
            if p < 0 or not math.isfinite(p):
                raise ValueError(f"routing probabilities must be >= 0, got {p}")
        if sum(row) > 1.0 + 1e-9:
            raise ValueError(
                f"routing rows must sum to <= 1 (substochastic), got {sum(row)}"
            )
    # (I - Rᵀ) λ = γ
    matrix = [
        [(1.0 if i == j else 0.0) - rows[j][i] for j in range(n)]
        for i in range(n)
    ]
    rates = _solve_linear(matrix, list(gammas))
    for lam in rates:
        if lam < -1e-9:
            raise ValueError(
                "traffic equations produced a negative rate: the routing "
                "matrix does not drain jobs out of the network"
            )
    return tuple(max(0.0, lam) for lam in rates)


def jackson_mean_jobs(
    external_rates: Sequence[float],
    service_rates,
    servers=None,
    routing: Optional[Sequence[Sequence[float]]] = None,
) -> Tuple[float, ...]:
    """Mean number of jobs at each node of an open Jackson network.

    Product form: node *i* behaves as an independent M/M/cᵢ at its
    effective rate λᵢ, so Lᵢ = Lqᵢ + λᵢ/μᵢ.
    """
    rates = jackson_arrival_rates(external_rates, routing)
    counts = _broadcast_servers(servers, len(rates))
    mus = _broadcast_rates(service_rates, len(rates))
    jobs = []
    for lam, mu, c in zip(rates, mus, counts):
        if lam == 0.0:
            jobs.append(0.0)
            continue
        jobs.append(mmc_mean_queue_length(lam, mu, c) + lam / mu)
    return tuple(jobs)


def jackson_mean_response_time(
    external_rates: Sequence[float],
    service_rates,
    servers=None,
    routing: Optional[Sequence[Sequence[float]]] = None,
) -> float:
    """Network sojourn time of an open Jackson network.

    Little's law over the whole network: W = Σᵢ Lᵢ / Σⱼ γⱼ — the time
    from external arrival to final departure, revisits included.
    """
    jobs = jackson_mean_jobs(external_rates, service_rates, servers, routing)
    return sum(jobs) / sum(float(g) for g in external_rates)
