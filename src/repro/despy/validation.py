"""Closed-form queueing results used to validate the kernel.

DESP-C++ was validated by re-running QNAP2 models and comparing outputs
(paper §3.2.1).  QNAP2 is proprietary, so this reproduction validates the
kernel against an even harder oracle: exact stationary results for M/M/1
and M/M/c queues.  The test suite builds those queues out of despy
primitives and asserts the simulated utilization, queue length and
response time land on these formulas.

Notation: ``arrival_rate`` λ, ``service_rate`` μ, ``servers`` c,
ρ = λ/(cμ) must be < 1 for stationarity.
"""

from __future__ import annotations

import math


def _check_stable(arrival_rate: float, service_rate: float, servers: int = 1) -> float:
    if arrival_rate <= 0 or service_rate <= 0:
        raise ValueError("rates must be positive")
    if servers < 1:
        raise ValueError("need at least one server")
    rho = arrival_rate / (servers * service_rate)
    if rho >= 1.0:
        raise ValueError(f"unstable queue: utilization {rho:.3f} >= 1")
    return rho


def mm1_utilization(arrival_rate: float, service_rate: float) -> float:
    """Server utilization ρ = λ/μ of the M/M/1 queue."""
    return _check_stable(arrival_rate, service_rate)


def mm1_mean_queue_length(arrival_rate: float, service_rate: float) -> float:
    """Mean number waiting in queue, Lq = ρ²/(1-ρ)."""
    rho = _check_stable(arrival_rate, service_rate)
    return rho * rho / (1.0 - rho)


def mm1_mean_response_time(arrival_rate: float, service_rate: float) -> float:
    """Mean sojourn time (wait + service), W = 1/(μ-λ)."""
    _check_stable(arrival_rate, service_rate)
    return 1.0 / (service_rate - arrival_rate)


def mmc_erlang_c(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Erlang C: probability an arrival must wait in an M/M/c queue."""
    rho = _check_stable(arrival_rate, service_rate, servers)
    a = arrival_rate / service_rate  # offered load in Erlangs
    summation = sum(a**k / math.factorial(k) for k in range(servers))
    tail = a**servers / (math.factorial(servers) * (1.0 - rho))
    return tail / (summation + tail)


def mmc_mean_queue_length(
    arrival_rate: float, service_rate: float, servers: int
) -> float:
    """Mean number waiting in queue for M/M/c: Lq = C·ρ/(1-ρ)."""
    rho = _check_stable(arrival_rate, service_rate, servers)
    c_prob = mmc_erlang_c(arrival_rate, service_rate, servers)
    return c_prob * rho / (1.0 - rho)


def mmc_mean_response_time(
    arrival_rate: float, service_rate: float, servers: int
) -> float:
    """Mean sojourn time for M/M/c: W = C/(cμ-λ) + 1/μ."""
    _check_stable(arrival_rate, service_rate, servers)
    c_prob = mmc_erlang_c(arrival_rate, service_rate, servers)
    return c_prob / (servers * service_rate - arrival_rate) + 1.0 / service_rate


def md1_mean_queue_length(arrival_rate: float, service_rate: float) -> float:
    """M/D/1 (deterministic service): Lq = ρ²/(2(1-ρ)).

    Deterministic service is despy's bread and butter — VOODB's disk
    times are constants — so this Pollaczek-Khinchine special case is
    the validation oracle closest to how the model actually runs.
    """
    rho = _check_stable(arrival_rate, service_rate)
    return rho * rho / (2.0 * (1.0 - rho))


def md1_mean_response_time(arrival_rate: float, service_rate: float) -> float:
    """M/D/1 mean sojourn time: Wq + service = Lq/λ + 1/μ."""
    _check_stable(arrival_rate, service_rate)
    lq = md1_mean_queue_length(arrival_rate, service_rate)
    return lq / arrival_rate + 1.0 / service_rate
