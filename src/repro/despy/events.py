"""Event and event-list primitives.

The event list is the heart of a discrete-event kernel: a priority queue
ordered by ``(time, priority, sequence)``.  The sequence number makes the
ordering total and deterministic — two events scheduled for the same time
and priority always execute in scheduling order, which is what makes the
whole simulation reproducible for a given random seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class Event:
    """A pending occurrence in simulated time.

    Events are created by :meth:`repro.despy.engine.Simulation.schedule`;
    user code normally only keeps a reference in order to ``cancel()`` it.
    """

    __slots__ = ("time", "priority", "seq", "handler", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        handler: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.handler = handler
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it when its time comes."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.handler, "__qualname__", repr(self.handler))
        return f"<Event t={self.time:.6g} prio={self.priority} {name}{state}>"


class EventList:
    """A deterministic future-event list backed by a binary heap."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(
        self,
        time: float,
        priority: int,
        handler: Callable[..., Any],
        args: tuple = (),
    ) -> Event:
        """Insert a new event and return it (so callers may cancel it)."""
        event = Event(time, priority, self._seq, handler, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the next non-cancelled event.

        Cancelled events are lazily discarded here, which keeps
        :meth:`Event.cancel` O(1).
        """
        while True:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the list is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        self._heap.clear()
