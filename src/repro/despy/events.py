"""Event and event-list primitives.

The event list is the heart of a discrete-event kernel: a priority queue
ordered by ``(time, priority, sequence)``.  The sequence number makes the
ordering total and deterministic — two events scheduled for the same time
and priority always execute in scheduling order, which is what makes the
whole simulation reproducible for a given random seed.

Two storage tiers share one sequence counter:

* a binary **heap** for events in the strict future (or with a non-zero
  priority), and
* an **immediate queue** (a plain FIFO deque) for priority-0 events at
  the current clock value — the zero-delay continuations that dominate
  VOODB traffic (resource grants, gate openings, process wake-ups).

Because immediate events all carry ``(now, 0, seq)`` keys and the deque
preserves scheduling order, FIFO order *is* key order within the queue;
the engine compares the deque head against the heap head before each
dispatch, so the merged execution order is exactly the total order a
single heap would produce — only without the O(log n) sift per
zero-delay event.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Optional

from repro.despy.errors import SchedulingError


class Event:
    """A pending occurrence in simulated time.

    Events are created by :meth:`repro.despy.engine.Simulation.schedule`;
    user code normally only keeps a reference in order to ``cancel()`` it.
    """

    __slots__ = ("time", "priority", "seq", "handler", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        handler: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.handler = handler
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it when its time comes."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.handler, "__qualname__", repr(self.handler))
        return f"<Event t={self.time:.6g} prio={self.priority} {name}{state}>"


class EventList:
    """A deterministic future-event list: binary heap + immediate queue."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._immediate: deque[Event] = deque()
        self._seq = 0
        #: events that went through the heap (perf counter)
        self.heap_pushed = 0
        #: events that entered the immediate queue (perf counter)
        self.fast_scheduled = 0
        #: events dispatched straight off the immediate queue
        self.fast_dispatched = 0
        #: the engine's current clock, mirrored here so :meth:`push` can
        #: tell whether a new heap event could preempt the tick being
        #: drained (see ``preempt_dirty``).
        self.now_hint = 0.0
        #: set when a heap push lands at the current tick with priority
        #: <= 0; tells the engine's drain loop to re-merge with the heap.
        self.preempt_dirty = False
        #: continuations the process layer ran synchronously because the
        #: process was provably the next dispatch anyway (perf counter).
        self.merged_continuations = 0

    def __len__(self) -> int:
        return len(self._heap) + len(self._immediate)

    def __bool__(self) -> bool:
        return bool(self._heap) or bool(self._immediate)

    def push(
        self,
        time: float,
        priority: int,
        handler: Callable[..., Any],
        args: tuple = (),
    ) -> Event:
        """Insert a new event and return it (so callers may cancel it)."""
        event = Event(time, priority, self._seq, handler, args)
        self._seq += 1
        self.heap_pushed += 1
        heapq.heappush(self._heap, event)
        if priority <= 0 and time <= self.now_hint:
            self.preempt_dirty = True
        return event

    def push_immediate(
        self,
        time: float,
        handler: Callable[..., Any],
        args: tuple = (),
    ) -> Event:
        """Append a priority-0 event at the current clock value.

        The caller (the engine) guarantees ``time`` equals the current
        simulation clock; under that invariant FIFO order within the
        queue equals ``(time, priority, seq)`` order, so the heap is
        bypassed without changing the execution order.
        """
        event = Event(time, 0, self._seq, handler, args)
        self._seq += 1
        self.fast_scheduled += 1
        self._immediate.append(event)
        return event

    def _head(self) -> Optional[Event]:
        """The next live event (pruning cancelled heads), or ``None``.

        The event stays queued; pair with :meth:`pop` to consume it.
        """
        immediate = self._immediate
        while immediate and immediate[0].cancelled:
            immediate.popleft()
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        if immediate:
            first = immediate[0]
            if heap and heap[0] < first:
                return heap[0]
            return first
        return heap[0] if heap else None

    def pop(self) -> Event:
        """Remove and return the next live event in key order.

        Cancelled events are lazily discarded here, which keeps
        :meth:`Event.cancel` O(1).  When no live event remains —
        the list is empty or every queued event has been cancelled —
        a :class:`~repro.despy.errors.SchedulingError` is raised; that
        makes exhaustion explicit instead of leaking the heap's bare
        ``IndexError``.
        """
        event = self._head()
        if event is None:
            raise SchedulingError("event list exhausted: no live events remain")
        if self._immediate and event is self._immediate[0]:
            self._immediate.popleft()
            self.fast_dispatched += 1
        else:
            heapq.heappop(self._heap)
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the list is empty."""
        event = self._head()
        return None if event is None else event.time

    def clear(self) -> None:
        self._heap.clear()
        self._immediate.clear()
