"""Event and event-list primitives.

The event list is the heart of a discrete-event kernel: a priority queue
ordered by ``(time, priority, sequence)``.  The sequence number makes the
ordering total and deterministic — two events scheduled for the same time
and priority always execute in scheduling order, which is what makes the
whole simulation reproducible for a given random seed.

Time is an **integer tick count** (see :mod:`repro.despy.timebase`): the
wheel's bucket index is an exact shift (``time >> shift``), clock
compares are integer compares, and the adaptive-width recalibration is
integer arithmetic — no float quantization anywhere in the schedule.

Three storage tiers share one sequence counter:

* an **immediate queue** (a plain FIFO deque) for priority-0 events at
  the current clock value — the zero-delay continuations that dominate
  VOODB traffic (resource grants, gate openings, process wake-ups);
* a **calendar-queue event wheel** for timed events in the near future:
  events are appended unsorted to a bucket keyed by the high bits of
  their tick time (``time >> shift``; the bucket width is always a power
  of two), and a whole bucket is sorted at once — in C, via an
  attrgetter sort key — when the clock reaches it.  The width adapts to
  the observed mean scheduling delay, and a small heap of *bucket
  indices* (ints, one entry per bucket rather than per event) finds the
  next non-empty bucket without scanning.  When nothing at all is
  queued, a push skips the bucket machinery entirely and becomes the due
  list on its own (the *singleton lane* — the common shape of
  low-multiprogramming phases);
* a **binary heap** for far-future overflow: events more than
  ``_OVERFLOW_BUCKETS`` bucket widths ahead (or saturated at the tick
  horizon — the old "non-finite time" case) would bloat the bucket-index
  heap, so they wait in a conventional heap of ``(time, priority, seq,
  event)`` tuples and are merged, bucket by bucket, as the wheel
  advances.

Dispatch drains the *due list* — the sorted current bucket — by index.
A timed event landing at or before the due bucket is insorted into the
remaining (unconsumed) slice of the due list, so the due head is always
the earliest pending timed event; the engine merges it against the
immediate queue head on the full ``(time, priority, seq)`` key.  The
merged execution order is therefore exactly the total order a single
heap would produce — only without a Python-level ``__lt__`` call per
heap sift or an O(log n) push per timed event.

Dispatched events whose creator keeps no reference (process
continuations, resource grants — flagged ``pooled=True`` at push time)
are recycled through a free list instead of being garbage: a sweep
allocates a few thousand :class:`Event` objects instead of millions.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from heapq import heappop, heappush
from operator import attrgetter
from typing import Any, Callable, Optional

from repro.despy.errors import SchedulingError
from repro.despy.timebase import TICK_HORIZON, TICKS_PER_MS

#: Timed events further ahead than this many bucket widths go to the
#: overflow heap instead of the wheel, bounding the bucket-index heap.
_OVERFLOW_BUCKETS = 4096

#: Pushes with a delay at or past this are excluded from the adaptive
#: width statistics (saturated horizons would poison the mean).
_DELAY_STAT_CAP = TICK_HORIZON


class Event:
    """A pending occurrence in simulated time.

    Events are created by :meth:`repro.despy.engine.Simulation.schedule`;
    user code normally only keeps a reference in order to ``cancel()`` it.
    Events flagged ``pooled`` are internal continuations whose creator
    provably dropped the reference; the engine recycles them through the
    event list's free list after dispatch.
    """

    __slots__ = ("time", "priority", "seq", "handler", "args", "cancelled", "pooled")

    def __init__(
        self,
        time: int,
        priority: int,
        seq: int,
        handler: Callable[..., Any],
        args: tuple,
        pooled: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.handler = handler
        self.args = args
        self.cancelled = False
        self.pooled = pooled

    def cancel(self) -> None:
        """Mark the event so the engine skips it when its time comes."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.handler, "__qualname__", repr(self.handler))
        return f"<Event t={self.time} prio={self.priority} {name}{state}>"


#: Bucket sort key: builds the (time, priority, seq) tuples in C, once
#: per event per bucket sort, instead of per comparison via __lt__.
_SORT_KEY = attrgetter("time", "priority", "seq")


class EventList:
    """A deterministic future-event list: immediate FIFO + wheel + heap.

    The wheel tiers store :class:`Event` objects directly; only the
    far-future overflow heap wraps them in ``(time, priority, seq,
    event)`` tuples so its sifts compare C scalars (``seq`` is unique,
    so the event itself is never compared).
    """

    __slots__ = (
        "_immediate",
        "_due",
        "_due_idx",
        "_due_bucket",
        "_buckets",
        "_bucket_heap",
        "_heap",
        "_seq",
        "_shift",
        "_delay_sum",
        "_delay_n",
        "_timed",
        "_pool",
        "heap_pushed",
        "fast_scheduled",
        "fast_dispatched",
        "pooled_reused",
        "ticks_overflowed",
        "wheel_recalibrations",
        "now_hint",
        "preempt_dirty",
        "quiet",
        "merged_continuations",
        "holds_warped",
    )

    def __init__(self) -> None:
        self._immediate: deque[Event] = deque()
        #: sorted events of the bucket currently being drained, consumed
        #: by index (the dead prefix is dropped wholesale on refill)
        self._due: list = []
        self._due_idx = 0
        #: bucket index (``time >> _shift``) of the due bucket; wheel
        #: buckets and heap entries are always strictly beyond it (see
        #: :meth:`push`)
        self._due_bucket = -1
        #: bucket index -> unsorted list of events
        self._buckets: dict = {}
        #: min-heap of the indices of existing buckets
        self._bucket_heap: list = []
        #: far-future overflow entries (conventional key-tuple heap)
        self._heap: list = []
        self._seq = 0
        # Adaptive bucket width, always a power of two: bucket index =
        # ``time >> _shift``.  ``_shift < 0`` means uncalibrated: the
        # first timed push seeds the shift from its own delay, and the
        # shift is re-derived from the observed mean delay whenever the
        # wheel runs empty.
        self._shift = -1
        self._delay_sum = 0
        self._delay_n = 0
        #: timed events still queued (live or cancelled-but-unpruned)
        self._timed = 0
        #: free list of recycled Event objects (see ``pooled``)
        self._pool: list = []
        #: events that paid a far-future overflow heap push (perf counter)
        self.heap_pushed = 0
        #: events that entered the immediate queue (perf counter)
        self.fast_scheduled = 0
        #: events dispatched straight off the immediate queue
        self.fast_dispatched = 0
        #: Event objects recycled from the free list (perf counter)
        self.pooled_reused = 0
        #: pushes whose time saturated at the tick horizon (perf counter;
        #: see repro.despy.timebase — these were float-inf sentinels)
        self.ticks_overflowed = 0
        #: adaptive-width re-derivations applied while the wheel was
        #: empty (perf counter)
        self.wheel_recalibrations = 0
        #: the engine's current clock, mirrored here so :meth:`push` can
        #: tell whether a new timed event could preempt the tick being
        #: drained (see ``preempt_dirty``).
        self.now_hint = 0
        #: set when a timed push lands at the current tick with priority
        #: <= 0; tells the engine's drain loop to re-merge.
        self.preempt_dirty = False
        #: cached merged-continuation test: True iff the currently
        #: executing handler's process is provably the next dispatch
        #: (immediate queue empty, no timed event tying the current tick
        #: at priority <= 0).  The engine computes it exactly at each
        #: dispatch (see :meth:`_compute_quiet`); the two push paths
        #: that can create a tie clear it.  It may go conservatively
        #: stale-False (a cancel can silently clear a tie) — that skips
        #: a merge, never permits a wrong one.  One attribute load
        #: replaces the full test on the hottest kernel sites
        #: (``Process._step``, the inline grant/release fast paths).
        self.quiet = False
        #: continuations the process layer ran synchronously because the
        #: process was provably the next dispatch anyway (perf counter).
        self.merged_continuations = 0
        #: timed holds that advanced the engine clock in place because
        #: the event list was completely empty — the sole process just
        #: kept running at its own landing tick (perf counter; see
        #: Process._step's warp lane).
        self.holds_warped = 0

    @property
    def wheel_pushed(self) -> int:
        """Timed events routed through the wheel tiers (perf counter).

        Derived: every push draws a sequence number, immediates count in
        ``fast_scheduled`` and overflow pushes in ``heap_pushed`` — the
        remainder went through the wheel.  Keeping it out of
        :meth:`push` saves a counter update on the hottest path.
        """
        return self._seq - self.fast_scheduled - self.heap_pushed

    def __len__(self) -> int:
        return self._timed + len(self._immediate)

    def __bool__(self) -> bool:
        return bool(self._timed) or bool(self._immediate)

    # ------------------------------------------------------------------
    # Push side
    # ------------------------------------------------------------------
    def push(
        self,
        time: int,
        priority: int,
        handler: Callable[..., Any],
        args: tuple = (),
        pooled: bool = False,
    ) -> Event:
        """Insert a new timed event and return it (so callers may cancel it).

        Routing: at or before the due bucket → insorted into the live
        slice of the due list; within the wheel horizon → appended to its
        bucket (or the singleton lane when nothing is queued); beyond →
        overflow heap.
        """
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            # Recycled events were dispatched live, so ``cancelled`` is
            # already False.
            event = pool.pop()
            event.time = time
            event.priority = priority
            event.seq = seq
            event.handler = handler
            event.args = args
            event.pooled = pooled
            self.pooled_reused += 1
        else:
            event = Event(time, priority, seq, handler, args, pooled)
        now = self.now_hint
        if time <= now and priority <= 0:
            self.preempt_dirty = True
            self.quiet = False
        shift = self._shift
        if shift < 0:
            shift = self._calibrate(time - now)
        if time < TICK_HORIZON:
            if not seq & 15:
                # Sampled width statistics: 1 push in 16 is plenty for
                # the adaptive width and keeps the per-push cost down.
                self._delay_sum += time - now
                self._delay_n += 1
            bucket = time >> shift
            due_bucket = self._due_bucket
            if bucket > due_bucket:
                if bucket - due_bucket > _OVERFLOW_BUCKETS:
                    heappush(self._heap, (time, priority, seq, event))
                    self.heap_pushed += 1
                elif self._timed:
                    buckets = self._buckets
                    chain = buckets.get(bucket)
                    if chain is None:
                        buckets[bucket] = [event]
                        heappush(self._bucket_heap, bucket)
                    else:
                        chain.append(event)
                else:
                    # Singleton lane: nothing else is queued (not even a
                    # cancelled-but-unpruned event), so this event *is*
                    # the due list — no bucket, no bucket-index heap
                    # push, and no _advance() on the pop side.
                    self._due = [event]
                    self._due_idx = 0
                    self._due_bucket = bucket
            else:
                insort(self._due, event, self._due_idx)
        else:
            # Saturated at the tick horizon (float-inf sentinel or an
            # absurd delay): dispatches last, in key order, off the heap.
            heappush(self._heap, (time, priority, seq, event))
            self.heap_pushed += 1
            self.ticks_overflowed += 1
        self._timed += 1
        return event

    def push_immediate(
        self,
        time: int,
        handler: Callable[..., Any],
        args: tuple = (),
        pooled: bool = False,
    ) -> Event:
        """Append a priority-0 event at the current clock value.

        The caller (the engine) guarantees ``time`` equals the current
        simulation clock; under that invariant FIFO order within the
        queue equals ``(time, priority, seq)`` order, so the timed tiers
        are bypassed without changing the execution order.
        """
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = time
            event.priority = 0
            event.seq = seq
            event.handler = handler
            event.args = args
            event.pooled = pooled
            self.pooled_reused += 1
        else:
            event = Event(time, 0, seq, handler, args, pooled)
        self.fast_scheduled += 1
        self.quiet = False
        self._immediate.append(event)
        return event

    def _compute_quiet(self, now: int) -> bool:
        """The merged-continuation test, evaluated exactly.

        True iff the immediate queue is empty and no pending timed event
        ties tick ``now`` at priority <= 0.  The due head (always the
        earliest pending timed event while the due list is live) makes
        the test exact; with the due list drained it falls back to
        bucket-index checks against the wheel and overflow heap — exact
        whenever the clock has not out-run the due bucket, conservative
        in the rare horizon-jump states.
        """
        if self._immediate:
            return False
        if self._timed:
            due = self._due
            idx = self._due_idx
            if idx < len(due):
                head = due[idx]
                return head.priority > 0 or head.time != now
            bucket_heap = self._bucket_heap
            heap = self._heap
            return not (
                bucket_heap and now >> self._shift >= bucket_heap[0]
            ) and not (heap and heap[0][0] == now and heap[0][1] <= 0)
        return True

    # ------------------------------------------------------------------
    # Wheel mechanics
    # ------------------------------------------------------------------
    def _calibrate(self, delay: int) -> int:
        """Seed the bucket shift from the first observed delay."""
        if not 0 < delay < _DELAY_STAT_CAP:
            delay = TICKS_PER_MS  # 1 ms: the old float default
        width = delay >> 2
        # Largest power of two <= width (shift 0 = 1-tick buckets).
        shift = width.bit_length() - 1 if width else 0
        self._shift = shift
        return shift

    def _recalibrate(self) -> None:
        """Re-derive the bucket shift from the observed mean delay.

        Only legal while the wheel's buckets are empty (bucket indices
        are width-relative); callers guarantee that.
        """
        n = self._delay_n
        if n >= 16:
            mean = self._delay_sum // n
            if 0 < mean < _DELAY_STAT_CAP:
                width = mean >> 2
                self._shift = width.bit_length() - 1 if width else 0
                self.wheel_recalibrations += 1
            self._delay_sum = 0
            self._delay_n = 0

    def _advance(self):
        """Refill the due list and return its head event, or ``None``.

        Prunes cancelled events, merges the next wheel bucket with any
        overflow-heap entries falling in the same bucket, and sorts the
        merged batch — the only per-timed-event ordering work the wheel
        ever does.
        """
        due = self._due
        idx = self._due_idx
        timed = self._timed
        while idx < len(due):
            event = due[idx]
            if not event.cancelled:
                self._due_idx = idx
                self._timed = timed
                return event
            idx += 1
            timed -= 1
        self._due_idx = idx
        self._timed = timed
        while True:
            bucket_heap = self._bucket_heap
            heap = self._heap
            if bucket_heap:
                shift = self._shift
                bucket = bucket_heap[0]
                batch = None
                if heap:
                    head_bucket = heap[0][0] >> shift
                    if head_bucket < bucket:
                        # The overflow head precedes every wheel
                        # bucket: open its bucket instead.
                        bucket = head_bucket
                        batch = [heappop(heap)[3]]
                if batch is None:
                    heappop(bucket_heap)
                    batch = self._buckets.pop(bucket)
                # Absorb overflow entries falling in the same bucket
                # (exact integer compares — no 2**53 float edge cases).
                while heap and heap[0][0] >> shift <= bucket:
                    batch.append(heappop(heap)[3])
                batch.sort(key=_SORT_KEY)
            elif heap:
                # Wheel empty: a safe moment to adapt the bucket width
                # before quantizing the overflow head's bucket.  (The
                # shift is always calibrated here: push() seeds it on
                # the first timed event, heap-routed or not.)
                self._recalibrate()
                shift = self._shift
                bucket = heap[0][0] >> shift
                batch = [heappop(heap)[3]]
                while heap and heap[0][0] >> shift <= bucket:
                    batch.append(heappop(heap)[3])
                batch.sort(key=_SORT_KEY)
            else:
                # Fully drained: adapt the width for the next burst and
                # re-anchor the due bucket at the current clock so fresh
                # pushes route through the wheel, not the insort path.
                self._due = []
                self._due_idx = 0
                self._recalibrate()
                shift = self._shift
                if shift >= 0:
                    self._due_bucket = self.now_hint >> shift
                return None
            self._due = due = batch
            self._due_bucket = bucket
            idx = 0
            timed = self._timed
            while idx < len(due):
                event = due[idx]
                if not event.cancelled:
                    self._due_idx = idx
                    self._timed = timed
                    return event
                idx += 1
                timed -= 1
            self._due_idx = idx
            self._timed = timed
            # Every event in the batch was cancelled: take the next bucket.

    # The merged-continuation predicate — "no immediate event queued and
    # no timed event ties the current tick at priority <= 0" — is
    # deliberately *inlined* at its call sites rather than offered as a
    # method: Process._step evaluates it on every continuation and
    # Resource.try_acquire_inline/release_inline on every grant/release,
    # and a call frame there is measurable.  When changing the test
    # (e.g. the conservative bucket-horizon compare), update every copy:
    # the three _step command branches in repro.despy.process and the
    # two inline helpers in repro.despy.resource.

    # ------------------------------------------------------------------
    # Generic pop side (tests and the traced loop; the engine inlines)
    # ------------------------------------------------------------------
    def _timed_head(self) -> Optional[Event]:
        """Next live timed event (pruning cancelled), or ``None``."""
        due = self._due
        idx = self._due_idx
        if idx < len(due):
            event = due[idx]
            if not event.cancelled:
                return event
            return self._advance()
        if self._bucket_heap or self._heap:
            return self._advance()
        return None

    def _head(self) -> Optional[Event]:
        """The next live event (pruning cancelled heads), or ``None``.

        The event stays queued; pair with :meth:`pop` to consume it.
        """
        immediate = self._immediate
        while immediate and immediate[0].cancelled:
            immediate.popleft()
        timed = self._timed_head()
        if immediate:
            first = immediate[0]
            if timed is not None and (
                (timed.time, timed.priority, timed.seq)
                < (first.time, first.priority, first.seq)
            ):
                return timed
            return first
        return timed

    def pop(self) -> Event:
        """Remove and return the next live event in key order.

        Cancelled events are lazily discarded here, which keeps
        :meth:`Event.cancel` O(1).  When no live event remains —
        the list is empty or every queued event has been cancelled —
        a :class:`~repro.despy.errors.SchedulingError` is raised; that
        makes exhaustion explicit instead of leaking a bare
        ``IndexError``.
        """
        event = self._head()
        if event is None:
            raise SchedulingError("event list exhausted: no live events remain")
        immediate = self._immediate
        if immediate and event is immediate[0]:
            immediate.popleft()
            self.fast_dispatched += 1
        else:
            self._due_idx += 1
            self._timed -= 1
        return event

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or ``None`` if the list is empty."""
        event = self._head()
        return None if event is None else event.time

    def clear(self) -> None:
        self._immediate.clear()
        self._due = []
        self._due_idx = 0
        self._buckets.clear()
        self._bucket_heap.clear()
        self._heap.clear()
        self._timed = 0
        self.quiet = False
