"""Passive resources: capacity-limited queues with usage statistics.

Paper Table 1 lists VOODB's passive resources (processors and main
memory, disk controller, the database scheduler); Table 2 maps each to a
``RESOURCE STATION`` in QNAP2 and an ``instance of class Resource`` in
DESP-C++.  This module is that class.

A :class:`Resource` offers two faces:

* the *process* face — ``yield Request(res)`` / ``yield Release(res)``
  from process generators;
* the *plain* face — :meth:`Resource.try_acquire` / :meth:`Resource.release`
  for immediate, non-blocking use from event handlers.

Both update the same time-weighted statistics, which is how resource
utilization and queue lengths are reported at the end of a replication.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Optional

from repro.despy.errors import ResourceError
from repro.despy.monitor import OnlineStats, TimeWeightedStats
from repro.despy.process import _STEP_ARGS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.despy.engine import Simulation
    from repro.despy.process import Process


class Resource:
    """A capacity-limited passive resource with a priority/FIFO queue."""

    def __init__(self, sim: "Simulation", name: str, capacity: int = 1) -> None:
        if capacity < 1:
            raise ResourceError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._queue: list[tuple[int, int, "Process", float]] = []
        self._queue_seq = 0
        # Statistics
        self.busy_units = TimeWeightedStats(sim)
        self.queue_length = TimeWeightedStats(sim)
        self.wait_times = OnlineStats()
        self.total_requests = 0
        self.total_served = 0

    # ------------------------------------------------------------------
    # Plain (non-blocking) face
    # ------------------------------------------------------------------
    @property
    def available(self) -> int:
        """Capacity units currently free."""
        return self.capacity - self._in_use

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._queue)

    def try_acquire(self) -> bool:
        """Take one unit immediately if available; never queues."""
        self.total_requests += 1
        if self._in_use < self.capacity:
            self._take()
            self.wait_times.record(0.0)
            return True
        return False

    # ------------------------------------------------------------------
    # Process face (used by the Request/Release commands)
    # ------------------------------------------------------------------
    def _grant_now(self) -> None:
        """Book an uncontended grant whose process continues in place.

        Same accounting as the grant branch of :meth:`_enqueue`, minus
        the wake-up: the caller (``Process._step``) has proven it may
        keep stepping the process synchronously.
        """
        self.total_requests += 1
        self._take()
        self.wait_times.record(0.0)

    def _enqueue(self, process: "Process", priority: int) -> None:
        self.total_requests += 1
        if self._in_use < self.capacity and not self._queue:
            # Uncontended grant (the common case): take the unit and hand
            # the process straight to the immediate-dispatch queue.
            self._take()
            self.wait_times.record(0.0)
            sim = self.sim
            sim._events.push_immediate(sim.now, process._step, _STEP_ARGS)
            return
        heapq.heappush(
            self._queue, (priority, self._queue_seq, process, self.sim.now)
        )
        self._queue_seq += 1
        self.queue_length.record(len(self._queue))

    def release(self, process: Optional["Process"] = None) -> None:
        """Return one capacity unit, waking the next queued process."""
        if self._in_use <= 0:
            raise ResourceError(f"release of idle resource {self.name!r}")
        self._in_use -= 1
        self.busy_units.record(self._in_use)
        if self._queue:
            __, __, waiter, enqueue_time = heapq.heappop(self._queue)
            self.queue_length.record(len(self._queue))
            self._take()
            self.wait_times.record(self.sim.now - enqueue_time)
            sim = self.sim
            sim._events.push_immediate(sim.now, waiter._step, _STEP_ARGS)

    def _take(self) -> None:
        self._in_use += 1
        self.total_served += 1
        self.busy_units.record(self._in_use)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Time-averaged fraction of capacity in use so far."""
        return self.busy_units.time_average() / self.capacity

    def mean_queue_length(self) -> float:
        return self.queue_length.time_average()

    def mean_wait(self) -> float:
        return self.wait_times.mean

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Resource {self.name!r} {self._in_use}/{self.capacity} "
            f"queued={len(self._queue)}>"
        )


class Gate:
    """A broadcast synchronization point (closed until opened).

    Processes yielding :class:`~repro.despy.process.WaitFor` on a closed
    gate suspend; :meth:`open` releases them all at the current time.  A
    gate can be re-closed and reused — VOODB uses one to model the
    external clustering demand of Figure 4.
    """

    def __init__(self, sim: "Simulation", name: str = "gate") -> None:
        self.sim = sim
        self.name = name
        self._open = False
        self._waiters: list["Process"] = []
        self.times_opened = 0

    @property
    def is_open(self) -> bool:
        return self._open

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def _wait(self, process: "Process") -> None:
        if self._open:
            self.sim.wake(process._step, None)
        else:
            self._waiters.append(process)

    def open(self) -> None:
        """Open the gate, releasing every waiting process."""
        self._open = True
        self.times_opened += 1
        waiters, self._waiters = self._waiters, []
        wake = self.sim.wake
        for process in waiters:
            wake(process._step, None)

    def close(self) -> None:
        self._open = False
