"""Passive resources: capacity-limited queues with usage statistics.

Paper Table 1 lists VOODB's passive resources (processors and main
memory, disk controller, the database scheduler); Table 2 maps each to a
``RESOURCE STATION`` in QNAP2 and an ``instance of class Resource`` in
DESP-C++.  This module is that class.

A :class:`Resource` offers two faces:

* the *process* face — ``yield Request(res)`` / ``yield Release(res)``
  from process generators;
* the *plain* face — :meth:`Resource.try_acquire` / :meth:`Resource.release`
  for immediate, non-blocking use from event handlers.

Both update the same time-weighted statistics, which is how resource
utilization and queue lengths are reported at the end of a replication.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Optional

from repro.despy.errors import ResourceError
from repro.despy.monitor import OnlineStats, TimeWeightedStats
from repro.despy.process import _STEP_ARGS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.despy.engine import Simulation
    from repro.despy.process import Process


class Resource:
    """A capacity-limited passive resource with a priority/FIFO queue."""

    def __init__(self, sim: "Simulation", name: str, capacity: int = 1) -> None:
        if capacity < 1:
            raise ResourceError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._queue: list[tuple[int, int, "Process", int]] = []
        self._queue_seq = 0
        # Statistics
        self.busy_units = TimeWeightedStats(sim)
        self.queue_length = TimeWeightedStats(sim)
        self.wait_times = OnlineStats()
        self.total_requests = 0
        self.total_served = 0

    # ------------------------------------------------------------------
    # Plain (non-blocking) face
    # ------------------------------------------------------------------
    @property
    def available(self) -> int:
        """Capacity units currently free."""
        return self.capacity - self._in_use

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._queue)

    def try_acquire(self) -> bool:
        """Take one unit immediately if available; never queues."""
        self.total_requests += 1
        if self._in_use < self.capacity:
            self._take()
            self.wait_times.record(0.0)
            return True
        return False

    def release_inline(self) -> bool:
        """Release a unit; True iff the caller may keep running inline.

        The exact sequence of ``yield Release(self)``: the release (with
        its statistics and waiter wake-up) happens immediately; the
        return value is the merged-continuation test.  On False the
        caller must ``yield PARK`` (a shared ``Hold(0)``) — the process
        layer then parks it on the immediate queue exactly as the
        Release command's non-merged branch would have.

        The release bookkeeping is spelled out inline (every simulated
        I/O and network transfer ends here); the uncontended no-waiter
        exit never leaves this frame.  The merge test is the event
        list's cached ``quiet`` flag — the same one Process._step reads
        (see the note in repro.despy.events).
        """
        in_use = self._in_use
        if in_use <= 0:
            raise ResourceError(f"release of idle resource {self.name!r}")
        in_use -= 1
        self._in_use = in_use
        sim = self.sim
        now = sim.now
        busy = self.busy_units
        if now != busy._last_time:
            busy._area += busy._last_value * (now - busy._last_time)
            busy._last_time = now
        busy._last_value = in_use
        if self._queue:
            __, __, waiter, enqueue_time = heapq.heappop(self._queue)
            self.queue_length.record(len(self._queue))
            self._take()
            self.wait_times.record(now - enqueue_time)
            events = sim._events
            events.push_immediate(now, waiter._step, _STEP_ARGS, True)
            # The wake-up above cleared the quiet flag, so the merge
            # test below is False by construction.
            return False
        events = sim._events
        if events.quiet:
            events.merged_continuations += 1
            return True
        return False

    def try_acquire_inline(self) -> bool:
        """Grant a unit inline iff ``yield Request(self)`` would merge.

        The exact merged-continuation test and accounting the process
        layer performs for an uncontended ``Request`` — offered to hot
        model generators so they can skip the Request yield's round trip
        through the command pump entirely.  Returns False (booking
        nothing) whenever the grant is contended or this caller is not
        provably the next dispatch; the caller then falls back to
        ``yield Request(self)``, which re-evaluates the same state.

        The merge test and the grant accounting (:meth:`_book_grant`)
        are spelled out inline for the same reason as
        :meth:`release_inline`.
        """
        sim = self.sim
        events = sim._events
        if events.quiet and self._in_use < self.capacity and not self._queue:
            now = sim.now
            self.total_requests += 1
            in_use = self._in_use + 1
            self._in_use = in_use
            self.total_served += 1
            busy = self.busy_units
            if now != busy._last_time:
                busy._area += busy._last_value * (now - busy._last_time)
                busy._last_time = now
            busy._last_value = in_use
            waits = self.wait_times
            n = waits.n + 1
            waits.n = n
            waits.total += 0.0
            delta = 0.0 - waits.mean
            waits.mean += delta / n
            waits._m2 += delta * (0.0 - waits.mean)
            if waits.minimum > 0.0:
                waits.minimum = 0.0
            if waits.maximum < 0.0:
                waits.maximum = 0.0
            events.merged_continuations += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Process face (used by the Request/Release commands)
    # ------------------------------------------------------------------
    # The grant/release accounting below inlines the two collectors'
    # ``record`` bodies (the time-weighted busy integral and Welford's
    # zero-wait update).  Every simulated I/O passes through these
    # methods, and the method-call overhead of three ``record`` calls
    # per grant cycle is measurable; the statement sequence — including
    # each float operation — is exactly what the ``record`` calls
    # perform, so the statistics stay bit-identical.

    def _book_grant(self) -> None:
        """Uncontended-grant accounting: take a unit, record zero wait."""
        in_use = self._in_use + 1
        self._in_use = in_use
        self.total_served += 1
        busy = self.busy_units
        now = self.sim.now
        if now != busy._last_time:
            busy._area += busy._last_value * (now - busy._last_time)
            busy._last_time = now
        busy._last_value = in_use
        waits = self.wait_times
        n = waits.n + 1
        waits.n = n
        waits.total += 0.0
        delta = 0.0 - waits.mean
        waits.mean += delta / n
        waits._m2 += delta * (0.0 - waits.mean)
        if waits.minimum > 0.0:
            waits.minimum = 0.0
        if waits.maximum < 0.0:
            waits.maximum = 0.0

    def _grant_now(self) -> None:
        """Book an uncontended grant whose process continues in place.

        Same accounting as the grant branch of :meth:`_enqueue`, minus
        the wake-up: the caller (``Process._step``) has proven it may
        keep stepping the process synchronously.
        """
        self.total_requests += 1
        self._book_grant()

    def _enqueue(self, process: "Process", priority: int) -> None:
        self.total_requests += 1
        if self._in_use < self.capacity and not self._queue:
            # Uncontended grant (the common case): take the unit and hand
            # the process straight to the immediate-dispatch queue.
            self._book_grant()
            sim = self.sim
            sim._events.push_immediate(sim.now, process._step, _STEP_ARGS, True)
            return
        heapq.heappush(
            self._queue, (priority, self._queue_seq, process, self.sim.now)
        )
        self._queue_seq += 1
        self.queue_length.record(len(self._queue))

    def release(self, process: Optional["Process"] = None) -> None:
        """Return one capacity unit, waking the next queued process."""
        in_use = self._in_use
        if in_use <= 0:
            raise ResourceError(f"release of idle resource {self.name!r}")
        in_use -= 1
        self._in_use = in_use
        busy = self.busy_units
        now = self.sim.now
        if now != busy._last_time:
            busy._area += busy._last_value * (now - busy._last_time)
            busy._last_time = now
        busy._last_value = in_use
        if self._queue:
            __, __, waiter, enqueue_time = heapq.heappop(self._queue)
            self.queue_length.record(len(self._queue))
            self._take()
            self.wait_times.record(self.sim.now - enqueue_time)
            sim = self.sim
            sim._events.push_immediate(sim.now, waiter._step, _STEP_ARGS, True)

    def _take(self) -> None:
        self._in_use += 1
        self.total_served += 1
        self.busy_units.record(self._in_use)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Time-averaged fraction of capacity in use so far."""
        return self.busy_units.time_average() / self.capacity

    def mean_queue_length(self) -> float:
        return self.queue_length.time_average()

    def mean_wait(self) -> float:
        return self.wait_times.mean

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Resource {self.name!r} {self._in_use}/{self.capacity} "
            f"queued={len(self._queue)}>"
        )


class Gate:
    """A broadcast synchronization point (closed until opened).

    Processes yielding :class:`~repro.despy.process.WaitFor` on a closed
    gate suspend; :meth:`open` releases them all at the current time.  A
    gate can be re-closed and reused — VOODB uses one to model the
    external clustering demand of Figure 4.
    """

    def __init__(self, sim: "Simulation", name: str = "gate") -> None:
        self.sim = sim
        self.name = name
        self._open = False
        self._waiters: list["Process"] = []
        self.times_opened = 0

    @property
    def is_open(self) -> bool:
        return self._open

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def _wait(self, process: "Process") -> None:
        if self._open:
            sim = self.sim
            sim._events.push_immediate(sim.now, process._step, _STEP_ARGS, True)
        else:
            self._waiters.append(process)

    def open(self) -> None:
        """Open the gate, releasing every waiting process.

        Wake-up events are pooled: waiters never see them, so the engine
        may recycle each one after its dispatch.
        """
        self._open = True
        self.times_opened += 1
        waiters, self._waiters = self._waiters, []
        sim = self.sim
        events = sim._events
        now = sim.now
        for process in waiters:
            events.push_immediate(now, process._step, _STEP_ARGS, True)

    def close(self) -> None:
        self._open = False
