"""Observation collectors: running moments and time-weighted averages.

Two collectors cover everything the kernel and the VOODB model report:

* :class:`OnlineStats` — Welford's streaming mean/variance for discrete
  observations (wait times, I/Os per transaction, response times);
* :class:`TimeWeightedStats` — the integral of a piecewise-constant value
  over simulated time (queue lengths, resource busy units), whose
  ``time_average`` is the standard output of queueing simulations.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.despy.engine import Simulation


class OnlineStats:
    """Streaming count/mean/variance/min/max via Welford's algorithm."""

    __slots__ = ("n", "mean", "_m2", "minimum", "maximum", "total")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.total = 0.0

    def record(self, value: float) -> None:
        self.n += 1
        self.total += value
        delta = value - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        if self.n < 2:
            return 0.0
        return self._m2 / (self.n - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Return a new collector equivalent to seeing both streams."""
        merged = OnlineStats()
        merged.n = self.n + other.n
        if merged.n == 0:
            return merged
        delta = other.mean - self.mean
        merged.mean = self.mean + delta * other.n / merged.n
        merged._m2 = self._m2 + other._m2 + delta**2 * self.n * other.n / merged.n
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        merged.total = self.total + other.total
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OnlineStats n={self.n} mean={self.mean:.6g}>"


class TimeWeightedStats:
    """Integral of a piecewise-constant signal over simulated time.

    Call :meth:`record` with the *new* value each time the signal changes;
    the collector accumulates ``old_value * elapsed`` automatically.
    """

    __slots__ = ("sim", "_last_time", "_last_value", "_area", "_start")

    def __init__(self, sim: "Simulation", initial: float = 0.0) -> None:
        self.sim = sim
        self._start = sim.now
        self._last_time = sim.now
        self._last_value = initial
        self._area = 0.0

    def record(self, value: float) -> None:
        now = self.sim.now
        # Same-instant updates collapse to "last value wins": only the
        # final value at a timestamp contributes area, so the multiply-
        # accumulate is skipped when the clock has not moved.  Adding
        # ``v * 0.0`` would be a bitwise no-op anyway — this guard just
        # avoids paying for it, which matters on the release→grant pairs
        # the Resource hot path emits at one instant.
        if now != self._last_time:
            self._area += self._last_value * (now - self._last_time)
            self._last_time = now
        self._last_value = value

    @property
    def current(self) -> float:
        return self._last_value

    def time_average(self) -> float:
        """Average value from construction until the current clock."""
        now = self.sim.now
        elapsed = now - self._start
        if elapsed <= 0:
            return self._last_value
        area = self._area + self._last_value * (now - self._last_time)
        return area / elapsed
