"""despy — a Discrete-Event Simulation Package for Python.

This package is the reproduction of DESP-C++, the simulation kernel the
VOODB authors wrote when QNAP2 proved too slow (paper §3.2.1).  Like
DESP-C++ it adopts the *resource view* of simulation (paper Table 2):

* active resources are classes whose functioning rules are methods,
* passive resources are :class:`Resource` instances with reserve/release
  operations,
* transactions flowing through the system are :class:`Process` instances
  (DESP-C++ calls them *clients*),
* the :class:`Simulation` engine owns the event list and the clock.

The kernel is deliberately small: an event scheduler (`scheduler`), a
generator-based process layer (`process`), queued resources with
time-weighted statistics (`resource`), reproducible random streams
(`randomstream`) and replication statistics with Student-t confidence
intervals (`stats`, implementing the [Ban96] method of paper §4.2.2).

It is validated the way DESP-C++ was validated against QNAP2: by checking
simulated queueing systems against closed-form M/M/1 and M/M/c results
(`validation`, exercised in the test suite).

Compiled kernel
---------------
The four hot modules (``events``, ``process``, ``resource``, ``engine``)
can optionally be built as mypyc extension modules (``pip install -e
.[compiled]`` with ``VOODB_MYPYC=1``; see setup.py).  Setting
``VOODB_COMPILED=1`` at import time installs the compiled modules under
the ``repro.despy.*`` names **before** any submodule import below, so
every consumer — model code, tests, ``isinstance`` checks — sees one
consistent set of classes.  Without the env var, or when no compiled
artifacts exist, the pure-Python modules load as always;
:data:`KERNEL_BACKEND` says which one won.
"""

import os as _os
import sys as _sys

KERNEL_BACKEND = "pure"
if _os.environ.get("VOODB_COMPILED", "").strip().lower() in ("1", "true", "yes"):
    try:
        from repro import _despy_compiled as _compiled_pkg

        for _name in ("events", "process", "resource", "engine"):
            _sys.modules[f"repro.despy.{_name}"] = getattr(_compiled_pkg, _name)
        KERNEL_BACKEND = "compiled"
        del _compiled_pkg
    except ImportError:
        # No compiled artifacts in this environment: fall back cleanly.
        KERNEL_BACKEND = "pure"
del _os, _sys

from repro.despy.arrivals import (
    fixed_interarrivals,
    mmpp_interarrivals,
    poisson_interarrivals,
)
from repro.despy.engine import Simulation
from repro.despy.errors import (
    DespyError,
    ResourceError,
    SchedulingError,
)
from repro.despy.events import Event, EventList
from repro.despy.monitor import OnlineStats, TimeWeightedStats
from repro.despy.process import Hold, Process, Request, Release, WaitFor
from repro.despy.randomstream import RandomStream
from repro.despy.resource import Gate, Resource
from repro.despy.timebase import (
    MS_PER_TICK,
    TICK_HORIZON,
    TICK_SHIFT,
    TICKS_PER_MS,
    ms_to_ticks,
    ticks_to_ms,
)
from repro.despy.stats import (
    ConfidenceInterval,
    ReplicationAnalyzer,
    SteadyStateEstimate,
    batch_means_interval,
    confidence_interval,
    mser5_truncation_index,
    required_replications,
    steady_state_estimate,
)
from repro.despy.validation import (
    jackson_arrival_rates,
    jackson_mean_jobs,
    jackson_mean_response_time,
    md1_mean_queue_length,
    md1_mean_response_time,
    mm1_mean_queue_length,
    mm1_mean_response_time,
    mm1_utilization,
    mmc_erlang_c,
    mmc_mean_queue_length,
    mmc_mean_response_time,
    parallel_mmc_mean_response_time,
    parallel_mmc_utilizations,
)

__all__ = [
    "KERNEL_BACKEND",
    "TICK_SHIFT",
    "TICKS_PER_MS",
    "MS_PER_TICK",
    "TICK_HORIZON",
    "ms_to_ticks",
    "ticks_to_ms",
    "Simulation",
    "Event",
    "EventList",
    "Process",
    "Hold",
    "Request",
    "Release",
    "WaitFor",
    "Resource",
    "Gate",
    "RandomStream",
    "fixed_interarrivals",
    "poisson_interarrivals",
    "mmpp_interarrivals",
    "OnlineStats",
    "TimeWeightedStats",
    "ConfidenceInterval",
    "ReplicationAnalyzer",
    "SteadyStateEstimate",
    "confidence_interval",
    "batch_means_interval",
    "mser5_truncation_index",
    "required_replications",
    "steady_state_estimate",
    "DespyError",
    "ResourceError",
    "SchedulingError",
    "mm1_utilization",
    "mm1_mean_queue_length",
    "mm1_mean_response_time",
    "mmc_erlang_c",
    "mmc_mean_queue_length",
    "mmc_mean_response_time",
    "md1_mean_queue_length",
    "md1_mean_response_time",
    "jackson_arrival_rates",
    "jackson_mean_jobs",
    "jackson_mean_response_time",
    "parallel_mmc_mean_response_time",
    "parallel_mmc_utilizations",
]
