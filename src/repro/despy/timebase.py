"""The integer-tick time base: exact simulated time on a dyadic scale.

The kernel used to run on float milliseconds.  That worked, but it left
the calendar wheel quantizing *floats* into buckets — exactly the
"accumulated floating point errors corrupt event sequence" sharp edge a
discrete-event kernel must never flirt with — and it made every clock
compare, bucket index and width recalibration a float operation.

Simulated time is now an **integer count of ticks** with

    1 tick = 2**-20 ms        (``TICKS_PER_MS = 1 << 20``)

The scale is a power of two on purpose: converting a millisecond
quantity whose fraction is dyadic (0.5, 7.4 is not, 0.005 is not — but
every *binary* float literal is dyadic by construction) multiplies by
``2**20`` exactly in IEEE-754, so :func:`ms_to_ticks` of any float that
survives the multiplication without rounding round-trips exactly through
:func:`ticks_to_ms`.  At 2⁻²⁰ ms ≈ 0.95 ns resolution, a 64-bit-sized
tick count covers ~280 years of simulated time before arbitrary
precision even begins to cost — and Python ints never overflow anyway.

Conversion discipline
---------------------
* **Inbound** (config knobs, random delay draws): convert once, at the
  draw site or at subsystem construction, with :func:`ms_to_ticks`.
* **Kernel** (events / engine / process / resource): integers only.
  The kernel is unit-agnostic — it orders and adds ticks, nothing else.
* **Outbound** (statistics, reports, goldens): convert at the reporting
  boundary with :func:`ticks_to_ms`; ``ticks * MS_PER_TICK`` is exact
  for any count below 2**53.

Overflow policy
---------------
Delays at or beyond :data:`TICK_HORIZON` (2**62 ticks ≈ 139 years of
simulated milliseconds), including ``float('inf')`` sentinels, saturate
to ``TICK_HORIZON``.  The event list counts such pushes in its
``ticks_overflowed`` perf counter and routes them through the overflow
heap; they dispatch last, in key order, exactly like the old non-finite
times did.  ``NaN`` delays still raise — silence there would corrupt
the schedule.
"""

from __future__ import annotations

from repro.despy.errors import SchedulingError

#: log2 of the ticks-per-millisecond scale.
TICK_SHIFT = 20

#: Ticks per simulated millisecond (a power of two: conversions of
#: dyadic-representable ms values are exact).
TICKS_PER_MS = 1 << TICK_SHIFT

#: Exact float reciprocal of :data:`TICKS_PER_MS` (a power of two, so
#: ``ticks * MS_PER_TICK`` is a single exact multiply below 2**53).
MS_PER_TICK = 1.0 / TICKS_PER_MS

#: Saturation value for infinite / absurdly far delays (see module
#: docstring, *Overflow policy*).
TICK_HORIZON = 1 << 62

#: Float copy of the horizon for the one inbound compare in
#: :func:`ms_to_ticks` (exact: 2**62 is representable).
_HORIZON_SCALED = float(TICK_HORIZON)


def ms_to_ticks(ms: float) -> int:
    """Convert a millisecond quantity to integer ticks.

    Rounds to the nearest tick (ties to even, like the float rounding
    it replaces); dyadic-representable ms values convert exactly.
    Values at or beyond the horizon — ``float('inf')`` included —
    saturate to :data:`TICK_HORIZON`.  ``NaN`` raises ``ValueError``.
    """
    scaled = ms * TICKS_PER_MS
    if scaled >= _HORIZON_SCALED:
        return TICK_HORIZON
    # round() of a NaN raises ValueError — the loud failure we want.
    return round(scaled)


def ticks_to_ms(ticks: int) -> float:
    """Convert integer ticks back to float milliseconds (exact < 2**53)."""
    return ticks * MS_PER_TICK


def coerce_ticks(value) -> int:
    """Coerce a delay/duration to an integer tick count, loudly.

    The kernel's scheduling API takes ticks.  Integral floats (and the
    ``float('inf')`` sentinel, which saturates to the horizon) are
    coerced for convenience; a *fractional* float is a unit bug — some
    call site passed milliseconds where ticks were expected — and
    raises with a pointer to :func:`ms_to_ticks` instead of silently
    truncating the schedule.
    """
    if isinstance(value, float):
        if value != value or value == float("-inf"):
            raise SchedulingError(f"delay must be >= 0, got {value!r}")
        if value >= _HORIZON_SCALED:
            return TICK_HORIZON
        if value != int(value):
            raise SchedulingError(
                f"simulated time is integer ticks, got fractional {value!r}; "
                "convert milliseconds with ms_to_ticks()"
            )
        return int(value)
    return int(value)
