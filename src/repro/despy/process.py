"""Generator-based processes and their command protocol.

DESP-C++ models describe each *client* (paper Table 2: a transaction or
sub-transaction flowing through the system) as a sequence of service
demands on resources.  In despy a client is a generator that yields
command objects:

``yield Hold(duration)``
    advance simulated time for this process;
``yield Request(resource, priority=0)``
    queue for one capacity unit of a resource, resuming once granted;
``yield Release(resource)``
    give the unit back (also available as a plain method call,
    ``resource.release(process)``, from non-process code);
``yield WaitFor(gate)``
    block until :meth:`repro.despy.resource.Gate.open` is called.

A process may also ``return`` at any point; the kernel then runs its
completion callbacks (see :meth:`Process.on_complete`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.despy.errors import SchedulingError
from repro.despy.timebase import coerce_ticks

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.despy.engine import Simulation
    from repro.despy.resource import Gate, Resource


class Hold:
    """Command: advance this process by ``duration`` integer ticks.

    Durations are ticks (see :mod:`repro.despy.timebase`); fractional
    floats raise at construction — convert milliseconds at the call
    site with :func:`~repro.despy.timebase.ms_to_ticks`.
    """

    __slots__ = ("duration", "priority")

    def __init__(self, duration: int, priority: int = 0) -> None:
        if duration.__class__ is not int:
            duration = coerce_ticks(duration)
        if duration < 0:
            raise SchedulingError(f"hold duration must be >= 0, got {duration}")
        self.duration = duration
        self.priority = priority


class Request:
    """Command: acquire one capacity unit of ``resource``.

    Lower ``priority`` values are served first (ties broken FIFO), which
    matches the priority-queue discipline of DESP-C++ resources.
    """

    __slots__ = ("resource", "priority")

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        self.resource = resource
        self.priority = priority


class Release:
    """Command: release one previously acquired unit of ``resource``."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        self.resource = resource


class WaitFor:
    """Command: block until the given :class:`Gate` opens."""

    __slots__ = ("gate",)

    def __init__(self, gate: "Gate") -> None:
        self.gate = gate


#: Shared argument tuple for process continuations — every ``_step``
#: resume sends ``None``, so one tuple serves all of them.
_STEP_ARGS = (None,)

#: Shared zero-delay Hold used as a *park* command: a generator that
#: called :meth:`repro.despy.resource.Resource.release_inline` and was
#: told it may not keep running yields this to defer itself through the
#: immediate queue — the exact non-merged branch of ``yield Release``.
PARK = Hold(0)


class Process:
    """A running generator inside a :class:`Simulation`.

    Do not instantiate directly — use :meth:`Simulation.process`.
    """

    __slots__ = ("sim", "name", "_generator", "_send", "_done", "_callbacks", "value")

    def __init__(self, sim: "Simulation", generator: Generator, name: str) -> None:
        self.sim = sim
        self.name = name
        self._generator = generator
        # Bound once: _step is the hottest call site in the kernel.
        self._send = generator.send
        self._done = False
        self._callbacks: list[Callable[["Process"], None]] = []
        #: value returned by the generator (``return x`` → ``value == x``)
        self.value: Any = None

    @property
    def done(self) -> bool:
        """True once the generator has run to completion."""
        return self._done

    def on_complete(self, callback: Callable[["Process"], None]) -> None:
        """Register ``callback(process)`` to run when the process ends."""
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    # ------------------------------------------------------------------
    # Kernel interface
    # ------------------------------------------------------------------
    def _step(self, send_value: Any) -> None:
        """Advance the generator one command and interpret the result.

        This is the kernel's innermost call: it runs once per event of
        every process, so the command dispatch uses exact-type checks
        (none of the commands are subclassed) and routes continuations
        straight onto the event list's tiers, skipping the generic
        ``schedule`` wrapper where validation adds nothing.

        Merged continuations
        --------------------
        A zero-delay continuation (an uncontended ``Request`` grant, a
        ``Release``, a ``Hold(0)``) normally parks this process on the
        immediate queue and returns to the engine, which dispatches it
        as the next event.  When the immediate queue is empty and no
        timed event ties the current tick at priority <= 0, this process
        *is* provably that next dispatch — so the loop below just keeps
        sending into the generator instead.  The observable execution
        order (and therefore every statistic and random draw) is
        bit-identical; only the queue round-trip disappears.

        The test itself is the event list's cached ``quiet`` flag — one
        attribute load.  The engine computes it exactly at every
        dispatch (reading the wheel's due head, with conservative
        bucket-index fallbacks; see ``EventList._compute_quiet``) and
        the push paths that can create a tick tie clear it, so the flag
        always equals the full test, erring only on the conservative
        side (skip the merge, park on the immediate queue) — the
        engine's merge loop then re-establishes the exact order.
        """
        send = self._send
        sim = self.sim
        events = sim._events
        while True:
            try:
                command = send(send_value)
            except StopIteration as stop:
                self.value = stop.value
                self._finish()
                return
            cls = command.__class__
            if cls is Hold:
                duration = command.duration
                priority = command.priority
                if duration == 0 and priority == 0:
                    if events.quiet:
                        events.merged_continuations += 1
                        send_value = None
                        continue
                    events.push_immediate(sim.now, self._step, _STEP_ARGS, True)
                else:
                    time = sim.now + duration
                    # Warp lane: when the event list is *completely*
                    # empty, this process is the entire simulation — the
                    # push would come straight back to it as the next
                    # dispatch at ``time``.  Advance the clock in place
                    # instead (within the run's armed horizon) and keep
                    # sending.  Clock and statistics are bit-identical;
                    # only the push/dispatch round trip disappears.
                    if (
                        priority == 0
                        and not events._timed
                        and not events._immediate
                        and time <= sim._warp_until
                    ):
                        sim.now = time
                        events.now_hint = time
                        events.quiet = True
                        events.holds_warped += 1
                        send_value = None
                        continue
                    # Hold validated the duration (int, >= 0) at
                    # construction — push without re-checking.
                    events.push(time, priority, self._step, _STEP_ARGS, True)
                return
            if cls is Request:
                resource = command.resource
                if (
                    events.quiet
                    and resource._in_use < resource.capacity
                    and not resource._queue
                ):
                    resource._grant_now()
                    events.merged_continuations += 1
                    send_value = None
                    continue
                resource._enqueue(self, command.priority)
                return
            if cls is Release:
                # release() may wake a waiter via push_immediate, which
                # clears the quiet flag — the merge test below then
                # parks this process behind the woken one, exactly the
                # Release command's documented order.
                command.resource.release(self)
                if events.quiet:
                    events.merged_continuations += 1
                    send_value = None
                    continue
                events.push_immediate(sim.now, self._step, _STEP_ARGS, True)
                return
            if cls is WaitFor:
                command.gate._wait(self)
                return
            # Generic fallback: subclassed commands keep the documented
            # (queue-routed) semantics.
            if isinstance(command, Hold):
                sim.schedule(
                    command.duration, self._step, None, priority=command.priority
                )
            elif isinstance(command, Request):
                command.resource._enqueue(self, command.priority)
            elif isinstance(command, Release):
                command.resource.release(self)
                sim.wake(self._step, None)
            elif isinstance(command, WaitFor):
                command.gate._wait(self)
            else:
                raise SchedulingError(
                    f"process {self.name!r} yielded unsupported command "
                    f"{command!r}; expected Hold/Request/Release/WaitFor"
                )
            return

    def _finish(self) -> None:
        self._done = True
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._done else "active"
        return f"<Process {self.name!r} {state}>"
