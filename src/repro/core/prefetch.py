"""Prefetching policies (Table 3 PREFETCH; §5 extension).

Table 3's default — and the setting of every validation experiment — is
**None**.  The paper's conclusion calls prefetching out as a component
"demonstrated to influence the performances of OODBs a lot" that VOODB
should gain; these policies are that extension, exercised by the
ablation benches:

* :class:`NoPrefetch` — the Table 4 behaviour;
* :class:`OneAheadPrefetch` — on every miss of page *p*, also fetch
  *p+1* (sequential read-ahead; synergizes with the Figure 5 contiguity
  shortcut, making the extra fetch nearly free in time);
* :class:`ClusterPrefetch` — fetch the next ``span`` pages, modelling
  cluster-sized reads for bases reorganized by a clustering policy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List


class PrefetchPolicy(ABC):
    """Decides which extra pages to stage on each buffer miss."""

    name: str = "abstract"

    @abstractmethod
    def pages_after_miss(self, page: int, total_pages: int) -> List[int]:
        """Extra pages to fetch after missing ``page``."""


class NoPrefetch(PrefetchPolicy):
    """Table 3 default: no prefetching."""

    name = "none"

    def pages_after_miss(self, page: int, total_pages: int) -> List[int]:
        return []


class OneAheadPrefetch(PrefetchPolicy):
    """Sequential read-ahead of the single next page."""

    name = "one_ahead"

    def pages_after_miss(self, page: int, total_pages: int) -> List[int]:
        nxt = page + 1
        return [nxt] if nxt < total_pages else []


class ClusterPrefetch(PrefetchPolicy):
    """Read the next ``span`` pages — a cluster-sized fetch."""

    name = "cluster"

    def __init__(self, span: int = 4) -> None:
        if span < 1:
            raise ValueError(f"span must be >= 1, got {span}")
        self.span = span

    def pages_after_miss(self, page: int, total_pages: int) -> List[int]:
        return [p for p in range(page + 1, page + 1 + self.span) if p < total_pages]


def make_prefetch_policy(name: str, cluster_span: int = 4) -> PrefetchPolicy:
    """Build a policy from its Table 3 PREFETCH code."""
    key = name.strip().lower()
    if key in ("none", ""):
        return NoPrefetch()
    if key == "one_ahead":
        return OneAheadPrefetch()
    if key == "cluster":
        return ClusterPrefetch(cluster_span)
    raise ValueError(
        f"unknown prefetch policy {name!r}; known: none, one_ahead, cluster"
    )
