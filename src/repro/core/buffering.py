"""The Buffering Manager (knowledge model, Figure 4).

"[The Object Manager] requests the page from the Buffering Manager that
checks if the page is present in the memory buffer.  If not, it requests
the page from the I/O Subsystem" — this module is that check.

The buffer holds up to BUFFSIZE page frames; residency is decided by the
pluggable replacement policy (Table 3 PGREP, :mod:`repro.core.replacement`)
and optionally widened by a prefetcher (Table 3 PREFETCH,
:mod:`repro.core.prefetch`).

The protocol with the Transaction Manager is miss-with-reservation:
``access(page)`` immediately claims a frame on a miss (evicting if
needed) and reports what disk work the caller owes — the page read plus
a possible dirty-victim write.  Claiming the frame before the simulated
I/O completes keeps two concurrent transactions from double-loading the
same page, which is the role page latches play in a real server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.despy.randomstream import RandomStream
from repro.core.parameters import VOODBConfig
from repro.core.replacement import ReplacementPolicy, make_replacement_policy


@dataclass
class AccessOutcome:
    """What one buffer access requires from the caller.

    ``hit`` — page was resident, no disk work.
    ``read_page`` — page to read from disk (None on hit).
    ``writeback_pages`` — dirty victims the caller must write first.

    Outcomes are read-only messages: the hit case and the empty
    writeback list are shared singletons on the hot path, so callers
    must never mutate an outcome they received.
    """

    hit: bool
    read_page: Optional[int] = None
    writeback_pages: Sequence[int] = ()

    # Class-level (non-field) defaults for the virtual-memory
    # extension's extra attributes, so the shared server path reads them
    # as plain attributes on any outcome without getattr fallbacks.
    swap_read = False
    swap_out_pages: Sequence[int] = ()


#: Shared "page was resident" outcome — every hit is the same message,
#: so the hot path hands out one frozen instance instead of allocating
#: ~2 objects (outcome + list) per buffer hit.
_HIT = AccessOutcome(hit=True)

#: Shared empty writebacks for misses that evicted nothing dirty — a
#: tuple, so a stray mutation fails loudly instead of corrupting every
#: outcome sharing the singleton.
_NO_WRITEBACKS: Sequence[int] = ()


class BufferManager:
    """A BUFFSIZE-frame database buffer with pluggable replacement."""

    __slots__ = (
        "config",
        "capacity",
        "policy",
        "_on_hit",
        "_on_admit",
        "_choose_victim",
        "_frames",
        "hits",
        "misses",
        "evictions",
        "dirty_writebacks",
    )

    def __init__(
        self,
        config: VOODBConfig,
        rng: RandomStream,
        capacity: Optional[int] = None,
        policy: Optional[ReplacementPolicy] = None,
    ) -> None:
        self.config = config
        self.capacity = capacity if capacity is not None else config.buffsize
        if self.capacity < 1:
            raise ValueError(f"buffer capacity must be >= 1, got {self.capacity}")
        self.policy = policy or make_replacement_policy(config.pgrep, rng)
        # The policy never changes after construction; its three hot
        # hooks are bound once so each access skips two attribute hops.
        self._on_hit = self.policy.on_hit
        self._on_admit = self.policy.on_admit
        self._choose_victim = self.policy.choose_victim
        #: frame table: page -> dirty flag
        self._frames: Dict[int, bool] = {}
        # Counters
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_writebacks = 0

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    def access(self, page: int, write: bool = False) -> AccessOutcome:
        """Reference one page; reserve its frame immediately on a miss."""
        frames = self._frames
        if page in frames:
            self.hits += 1
            if write:
                frames[page] = True
            self._on_hit(page)
            return _HIT
        self.misses += 1
        writebacks = self._make_room(1)
        frames[page] = write
        self._on_admit(page)
        return AccessOutcome(hit=False, read_page=page, writeback_pages=writebacks)

    def admit_prefetched(self, page: int) -> Optional[AccessOutcome]:
        """Bring a page in without counting a hit/miss (prefetch path).

        Returns the outcome (read + possible writebacks), or None if the
        page is already resident.
        """
        if page in self._frames:
            return None
        writebacks = self._make_room(1)
        self._frames[page] = False
        # The bound hot hook, exactly as access() uses: a caller that
        # swaps _on_admit (instrumentation, a policy wrapper) must see
        # the prefetch path too, not only demand admissions.
        self._on_admit(page)
        return AccessOutcome(hit=False, read_page=page, writeback_pages=writebacks)

    def _make_room(self, needed: int) -> Sequence[int]:
        frames = self._frames
        if len(frames) + needed <= self.capacity:
            return _NO_WRITEBACKS
        writebacks: Optional[List[int]] = None
        while len(frames) + needed > self.capacity:
            victim = self._choose_victim()
            dirty = frames.pop(victim)
            self.evictions += 1
            if dirty:
                self.dirty_writebacks += 1
                if writebacks is None:
                    writebacks = []
                writebacks.append(victim)
        return _NO_WRITEBACKS if writebacks is None else writebacks

    def note_object_access(self, oid: int) -> Sequence[int]:
        """Hook for memory models reacting to object-level accesses.

        A plain database buffer does nothing here; the Texas virtual-
        memory model (:mod:`repro.core.virtual_memory`) overrides this to
        run its reservation cascade.  Returns pages owed as swap writes.
        """
        return ()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def contains(self, page: int) -> bool:
        return page in self._frames

    def is_dirty(self, page: int) -> bool:
        return self._frames.get(page, False)

    def invalidate(self, page: int) -> bool:
        """Drop a page without write-back (clustering moved its objects)."""
        if page in self._frames:
            del self._frames[page]
            self.policy.forget(page)
            return True
        return False

    def invalidate_all(self) -> int:
        """Empty the buffer (post-reorganization), returning frames dropped."""
        count = len(self._frames)
        for page in list(self._frames):
            self.invalidate(page)
        return count

    def flush(self) -> List[int]:
        """Clean every dirty frame, returning the pages to write."""
        dirty = [page for page, d in self._frames.items() if d]
        for page in dirty:
            self._frames[page] = False
        return dirty

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def resident_pages(self) -> int:
        return len(self._frames)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_writebacks = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BufferManager {self.resident_pages}/{self.capacity} "
            f"hits={self.hits} misses={self.misses}>"
        )
