"""System-class strategies (Table 3 SYSCLASS; paper §3.3).

"Our generic model allows simulating the behavior of different types of
OODBMSs.  It is [...] especially suitable to page server systems (like
ObjectStore or O2), but can also be used to model object server systems
(like ORION or ONTOS), or database server systems [...].  The
organization of the VOODB components is controlled by the 'System class'
parameter."

Each strategy implements the object-access path of Figure 4 for one
organization:

* :class:`Centralized` — client and server are the same machine (Texas):
  Object Manager → memory → disk, no network.
* :class:`PageServer` — O2's organization: the client asks the server
  for the *page* holding the object; the page ships back whole.  An
  optional client page cache (``client_buffsize``) absorbs repeats.
* :class:`ObjectServer` — ORION/ONTOS: the client asks for the *object*;
  only the object's bytes ship.  The optional client cache holds objects.
* :class:`DBServer` — the whole transaction ships to the server and only
  request/result messages cross the network.

The shared server-side path (memory access, dirty write-back, swap
traffic, the read itself, prefetching) lives in the base class so that
architectures differ *only* in where requests travel — which is the
point of the paper's genericity claim.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, Optional

from repro.despy.process import PARK, Hold
from repro.core.buffering import BufferManager
from repro.core.network import Network
from repro.core.object_manager import ObjectManager
from repro.core.parameters import SystemClass, VOODBConfig
from repro.core.prefetch import NoPrefetch, PrefetchPolicy
from repro.ocb.database import Database

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.despy.engine import Simulation
    from repro.core.io_subsystem import IOSubsystem


class Architecture(ABC):
    """The object-access path of one system class."""

    name: str = "abstract"

    def __init__(
        self,
        sim: "Simulation",
        config: VOODBConfig,
        db: Database,
        object_manager: ObjectManager,
        memory,
        io: "IOSubsystem",
        network: Network,
        prefetcher: PrefetchPolicy,
    ) -> None:
        self.sim = sim
        self.config = config
        self.db = db
        self.object_manager = object_manager
        self.memory = memory
        self.io = io
        self.network = network
        self.prefetcher = prefetcher
        #: bound page-directory lookup — one frame per object access
        #: instead of two on the hottest lookup in the model
        self._om_pages_of = object_manager.pages_of
        self._admit_prefetched = getattr(memory, "admit_prefetched", None)
        self._prefetch_enabled = (
            self._admit_prefetched is not None
            and not isinstance(prefetcher, NoPrefetch)
        )
        self._prefetched_unused: set[int] = set()
        # Counters
        self.prefetched_pages = 0
        self.prefetch_hits = 0
        self.client_hits = 0
        self.client_misses = 0

    # ------------------------------------------------------------------
    def access_object(self, oid: int, write: bool):
        """Process-generator performing one object access end to end."""
        step = self.access_object_nowait(oid, write)
        if step is not None:
            yield from step

    @abstractmethod
    def access_object_nowait(self, oid: int, write: bool):
        """One object access, synchronous when no simulated time passes.

        This is the face subclasses implement (and the one the
        Transaction Manager calls): return ``None`` when the access
        completed entirely in place (client/buffer hits, free network) —
        the dominant outcome once the working set is resident — or a
        generator to ``yield from`` for the part that needs the event
        loop.  Pure cache hits then cost zero generator round-trips.
        :meth:`access_object` is a convenience wrapper over this.
        """

    def begin_transaction(self):
        """Hook before a transaction's accesses (network for DB server)."""
        step = self.begin_transaction_nowait()
        if step is not None:
            yield from step

    def end_transaction(self):
        """Hook after a transaction's accesses."""
        step = self.end_transaction_nowait()
        if step is not None:
            yield from step

    def begin_transaction_nowait(self):
        """The envelope face subclasses override (the Transaction
        Manager calls only this pair): ``None`` when there is no work —
        the default for every non-DB-server class."""
        return None

    def end_transaction_nowait(self):
        return None

    # ------------------------------------------------------------------
    # Shared server-side page path
    # ------------------------------------------------------------------
    def _server_page_access(self, page: int, write: bool):
        """Figure 4's Buffering Manager → I/O Subsystem chain for a page."""
        outcome = self.memory.access(page, write)
        if outcome.hit:
            if page in self._prefetched_unused:
                self._prefetched_unused.discard(page)
                self.prefetch_hits += 1
            return
        yield from self._miss_io(outcome, page)

    def _miss_io(self, outcome, page: int):
        """The disk traffic one buffer miss produced (writebacks, swap,
        the read itself, prefetching)."""
        io = self.io
        disk = io.disk
        disk_inline = disk.try_acquire_inline
        disk_release = disk.release_inline
        for victim in outcome.writeback_pages:
            if not disk_inline():
                yield io._request_disk
            yield io.write_hold(victim)
            if not disk_release():
                yield PARK
        for __ in outcome.swap_out_pages:
            if not disk_inline():
                yield io._request_disk
            yield io.swap_write_hold()
            if not disk_release():
                yield PARK
        if outcome.swap_read:
            if not disk_inline():
                yield io._request_disk
            yield io.swap_read_hold()
            if not disk_release():
                yield PARK
        read_page = outcome.read_page
        if read_page is not None:
            # io.read_page, inlined: this is once-per-buffer-miss.
            if not disk_inline():
                yield io._request_disk
            yield io.read_hold(read_page)
            if not disk_release():
                yield PARK
            if self._prefetch_enabled:
                yield from self._prefetch_after_miss(page)

    def _prefetch_after_miss(self, page: int):
        admit = self._admit_prefetched
        if admit is None:
            return  # prefetching needs a buffer; the VM model has none
        io = self.io
        disk = io.disk
        disk_inline = disk.try_acquire_inline
        disk_release = disk.release_inline
        for extra in self.prefetcher.pages_after_miss(
            page, self.object_manager.total_pages
        ):
            outcome = admit(extra)
            if outcome is None:
                continue
            for victim in outcome.writeback_pages:
                if not disk_inline():
                    yield io._request_disk
                yield io.write_hold(victim)
                if not disk_release():
                    yield PARK
            if not disk_inline():
                yield io._request_disk
            yield io.read_hold(extra)
            if not disk_release():
                yield PARK
            self._prefetched_unused.add(extra)
            self.prefetched_pages += 1

    def _server_object_access(self, oid: int, write: bool):
        """Fetch every page of the object, then run the swizzle hook."""
        for page in self.object_manager.pages_of(oid):
            yield from self._server_page_access(page, write)
        io = self.io
        disk_inline = io.disk.try_acquire_inline
        disk_release = io.disk.release_inline
        for __ in self.memory.note_object_access(oid):
            if not disk_inline():
                yield io._request_disk
            yield io.swap_write_hold()
            if not disk_release():
                yield PARK

    def _server_object_access_nowait(self, oid: int, write: bool):
        """Synchronous server-side object access, handing off on a miss.

        Walks the object's pages through the memory model in place; on
        the first miss it returns a generator that finishes that miss's
        disk work and the remaining pages.  Returns ``None`` when every
        page hit (and the swizzle hook owed nothing) — no simulated time
        passed, so there is nothing to yield.
        """
        memory = self.memory
        prefetched = self._prefetched_unused
        pages = iter(self._om_pages_of(oid))
        for page in pages:
            outcome = memory.access(page, write)
            if outcome.hit:
                if page in prefetched:
                    prefetched.discard(page)
                    self.prefetch_hits += 1
                continue
            return self._object_access_tail(oid, outcome, page, pages, write)
        notes = memory.note_object_access(oid)
        if notes:
            return self._swap_notes(notes)
        return None

    def _object_access_tail(self, oid, outcome, page, pages, write):
        """Finish an object access from its first missing page on.

        The miss traffic (write-backs, swap, the read) and the walk over
        the object's remaining pages run in this single frame — the VM
        model's fault storms otherwise pay a ``_miss_io`` +
        ``_server_page_access`` generator pair per faulted page.  The
        command sequence is exactly the delegated formulation's.
        """
        io = self.io
        request_disk = io._request_disk
        disk = io.disk
        disk_inline = disk.try_acquire_inline
        disk_release = disk.release_inline
        memory_access = self.memory.access
        prefetched = self._prefetched_unused
        prefetching = self._prefetch_enabled
        while True:
            for victim in outcome.writeback_pages:
                if not disk_inline():
                    yield request_disk
                yield io.write_hold(victim)
                if not disk_release():
                    yield PARK
            for __ in outcome.swap_out_pages:
                if not disk_inline():
                    yield request_disk
                yield io.swap_write_hold()
                if not disk_release():
                    yield PARK
            if outcome.swap_read:
                if not disk_inline():
                    yield request_disk
                yield io.swap_read_hold()
                if not disk_release():
                    yield PARK
            read_page = outcome.read_page
            if read_page is not None:
                if not disk_inline():
                    yield request_disk
                yield io.read_hold(read_page)
                if not disk_release():
                    yield PARK
                if prefetching:
                    yield from self._prefetch_after_miss(page)
            for page in pages:
                outcome = memory_access(page, write)
                if outcome.hit:
                    if page in prefetched:
                        prefetched.discard(page)
                        self.prefetch_hits += 1
                    continue
                break
            else:
                break
        for __ in self.memory.note_object_access(oid):
            if not disk_inline():
                yield request_disk
            yield io.swap_write_hold()
            if not disk_release():
                yield PARK

    def _swap_notes(self, notes):
        io = self.io
        disk_inline = io.disk.try_acquire_inline
        disk_release = io.disk.release_inline
        for __ in notes:
            if not disk_inline():
                yield io._request_disk
            yield io.swap_write_hold()
            if not disk_release():
                yield PARK

    def notify_reorganized(self) -> None:
        """Clustering moved objects: client/prefetch state is stale."""
        self._prefetched_unused.clear()

    # ------------------------------------------------------------------
    # Client-cache construction (shared by the single-server and
    # cluster variants, so their sizing can never diverge)
    # ------------------------------------------------------------------
    def _page_client_cache(self) -> "Optional[BufferManager]":
        """A page-granular client cache of ``client_buffsize`` frames."""
        if self.config.client_buffsize <= 0:
            return None
        return BufferManager(
            self.config,
            self.sim.stream("client-cache"),
            capacity=self.config.client_buffsize,
        )

    def _object_client_cache(self) -> "Optional[BufferManager]":
        """An object-granular client cache: the page budget translated
        into object slots at mean object size."""
        if self.config.client_buffsize <= 0:
            return None
        mean_size = max(1.0, self.db.config.mean_instance_size)
        slots = max(
            1,
            int(
                self.config.client_buffsize
                * self.config.usable_page_bytes
                / mean_size
            ),
        )
        return BufferManager(
            self.config, self.sim.stream("client-cache"), capacity=slots
        )


class Centralized(Architecture):
    """SYSCLASS = Centralized (Texas): everything is local."""

    name = "centralized"

    def access_object_nowait(self, oid: int, write: bool):
        return self._server_object_access_nowait(oid, write)


class PageServer(Architecture):
    """SYSCLASS = Page Server (O2, ObjectStore): pages ship to clients."""

    name = "page_server"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.client_cache: Optional[BufferManager] = self._page_client_cache()
        #: request + page response, precomputed for the free-net loop
        self._round_trip_bytes = self.config.message_bytes + self.config.pgsize

    def access_object_nowait(self, oid: int, write: bool):
        client_cache = self.client_cache
        network = self.network
        pages = iter(self._om_pages_of(oid))
        if network.infinite:
            # Free network (Table 4's NETTHRU = +inf): transfers only
            # count, so the whole loop stays synchronous until a page
            # actually needs the disk.  The request and response
            # messages are booked together — the totals are all that is
            # observable.
            memory = self.memory
            prefetched = self._prefetched_unused
            round_trip_bytes = self._round_trip_bytes
            for page in pages:
                if client_cache is not None:
                    if client_cache.access(page, False).hit:
                        self.client_hits += 1
                        continue
                    self.client_misses += 1
                network.messages += 2
                network.bytes_sent += round_trip_bytes
                outcome = memory.access(page, write)
                if outcome.hit:
                    if page in prefetched:
                        prefetched.discard(page)
                        self.prefetch_hits += 1
                    continue
                return self._page_server_free_net_tail(
                    outcome, page, pages, write
                )
            return None
        for page in pages:
            if client_cache is not None:
                if client_cache.access(page, False).hit:
                    self.client_hits += 1
                    continue
                self.client_misses += 1
            # This page must travel: hand the rest to the event loop.
            # Its client-cache miss is already booked, so the tail
            # starts at the ship-request step.
            return self._page_server_tail(page, pages, write)
        return None

    def _page_server_free_net_tail(self, outcome, page, pages, write: bool):
        """Finish a free-network object access from its first disk miss.

        The first page's round trip is already counted by the caller.
        """
        client_cache = self.client_cache
        network = self.network
        memory = self.memory
        prefetched = self._prefetched_unused
        round_trip_bytes = self.config.message_bytes + self.config.pgsize
        io = self.io
        prefetching = self._prefetch_enabled
        disk = io.disk
        if (
            not outcome.writeback_pages
            and not outcome.swap_out_pages
            and not outcome.swap_read
            and outcome.read_page is not None
            and not prefetching
        ):
            # Plain first miss (the common case), inlined.
            if not disk.try_acquire_inline():
                yield io._request_disk
            yield io.read_hold(outcome.read_page)
            if not disk.release_inline():
                yield PARK
        else:
            yield from self._miss_io(outcome, page)
        for page in pages:
            if client_cache is not None:
                if client_cache.access(page, False).hit:
                    self.client_hits += 1
                    continue
                self.client_misses += 1
            network.messages += 2
            network.bytes_sent += round_trip_bytes
            outcome = memory.access(page, write)
            if not outcome.hit:
                if (
                    not outcome.writeback_pages
                    and not outcome.swap_out_pages
                    and not outcome.swap_read
                    and outcome.read_page is not None
                    and not prefetching
                ):
                    # Plain read miss (the common case), inlined.
                    if not io.disk.try_acquire_inline():
                        yield io._request_disk
                    yield io.read_hold(outcome.read_page)
                    if not io.disk.release_inline():
                        yield PARK
                else:
                    yield from self._miss_io(outcome, page)
            elif page in prefetched:
                prefetched.discard(page)
                self.prefetch_hits += 1

    def _page_server_tail(self, page, pages, write: bool):
        """Ship the remaining pages over the (finite) network.

        The whole simulation funnels through this loop on the page-server
        class, so the per-page collaborators are inlined: the network
        transfer's three commands are yielded here instead of through a
        ``_timed_transfer`` generator per message, and the server-side
        page access runs in this frame with the plain read miss (no
        writebacks, no swap, no prefetcher) spelled out.  Counter
        updates and float accumulations are the exact sequence the
        delegated formulation performs.
        """
        client_cache = self.client_cache
        network = self.network
        message_bytes = self.config.message_bytes
        pgsize = self.config.pgsize
        memory_access = self.memory.access
        prefetched = self._prefetched_unused
        prefetching = self._prefetch_enabled
        io = self.io
        request_disk = io._request_disk
        release_disk = io._release_disk
        read_hold = io.read_hold
        request_medium = network._request_medium
        release_medium = network._release_medium
        holds = network._holds
        msg_hold = holds.get(message_bytes)
        if msg_hold is None:
            msg_hold = holds[message_bytes] = Hold(
                network.transfer_ticks(message_bytes)
            )
        msg_time = msg_hold.duration
        page_hold = holds.get(pgsize)
        if page_hold is None:
            page_hold = holds[pgsize] = Hold(network.transfer_ticks(pgsize))
        page_time = page_hold.duration
        medium = network.medium
        medium_inline = medium.try_acquire_inline
        medium_release = medium.release_inline
        disk = io.disk
        disk_inline = disk.try_acquire_inline
        disk_release = disk.release_inline
        while True:
            network.messages += 1
            network.bytes_sent += message_bytes
            network.busy_ticks += msg_time
            if not medium_inline():
                yield request_medium
            yield msg_hold
            if not medium_release():
                yield PARK
            outcome = memory_access(page, write)
            if outcome.hit:
                if page in prefetched:
                    prefetched.discard(page)
                    self.prefetch_hits += 1
            elif (
                not outcome.writeback_pages
                and not outcome.swap_out_pages
                and not outcome.swap_read
                and outcome.read_page is not None
                and not prefetching
            ):
                # Plain read miss (the common case), inlined.
                if not disk_inline():
                    yield request_disk
                yield read_hold(outcome.read_page)
                if not disk_release():
                    yield PARK
            else:
                yield from self._miss_io(outcome, page)
            network.messages += 1
            network.bytes_sent += pgsize
            network.busy_ticks += page_time
            if not medium_inline():
                yield request_medium
            yield page_hold
            if not medium_release():
                yield PARK
            for page in pages:
                if client_cache is not None:
                    if client_cache.access(page, False).hit:
                        self.client_hits += 1
                        continue
                    self.client_misses += 1
                break
            else:
                return

    def notify_reorganized(self) -> None:
        super().notify_reorganized()
        if self.client_cache is not None:
            self.client_cache.invalidate_all()


class ObjectServer(Architecture):
    """SYSCLASS = Object Server (ORION, ONTOS): objects ship to clients."""

    name = "object_server"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.client_cache: Optional[BufferManager] = self._object_client_cache()

    def access_object_nowait(self, oid: int, write: bool):
        if self.client_cache is not None:
            if self.client_cache.access(oid, False).hit:
                self.client_hits += 1
                return None
            self.client_misses += 1
        network = self.network
        if network.infinite:
            network.transfer_nowait(self.config.message_bytes)
            step = self._server_object_access_nowait(oid, write)
            if step is None:
                network.transfer_nowait(self.db.size(oid))
                return None
            return self._object_server_finish(step, oid)
        return self._object_server_tail(oid, write)

    def _object_server_finish(self, step, oid: int):
        yield from step
        self.network.transfer_nowait(self.db.size(oid))

    def _object_server_tail(self, oid: int, write: bool):
        network = self.network
        step = network.transfer_nowait(self.config.message_bytes)
        if step is not None:
            yield from step
        yield from self._server_object_access(oid, write)
        step = network.transfer_nowait(self.db.size(oid))
        if step is not None:
            yield from step

    def notify_reorganized(self) -> None:
        super().notify_reorganized()
        if self.client_cache is not None:
            self.client_cache.invalidate_all()


class DBServer(Architecture):
    """SYSCLASS = DB Server: transactions ship, data stays put."""

    name = "db_server"

    def begin_transaction_nowait(self):
        return self.network.transfer_nowait(self.config.message_bytes)

    def end_transaction_nowait(self):
        return self.network.transfer_nowait(self.config.message_bytes)

    def access_object_nowait(self, oid: int, write: bool):
        return self._server_object_access_nowait(oid, write)


class ClusterArchitecture(Architecture):
    """Shared plumbing of the sharded (multi-server) organizations.

    The server side is a :class:`~repro.core.cluster.Cluster`: every
    page access routes to its owning node through the shard router, and
    all disk work happens on that node's private disk.  Like the
    single-server classes, the nowait faces return ``None`` when the
    whole access resolved in place (client-cache hits, buffer hits over
    free networks) — the PR-2 fast-path contract, extended per node.
    """

    def __init__(self, *args, cluster=None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if cluster is None:
            raise ValueError(f"{type(self).__name__} needs a Cluster instance")
        self.cluster = cluster

    @property
    def _free_fabric(self) -> bool:
        """Both networks free: the fully synchronous hit path applies."""
        return self.network.infinite and self.cluster.interconnect.infinite


class ClusterPageServer(ClusterArchitecture):
    """Sharded page server: a smart driver routes each page directly.

    The client knows the placement (as cluster drivers do) and sends
    every page request straight to a serving replica — reads balance
    round-robin over the replica set, writes hit the primary and
    propagate to the other replicas across the interconnect.  The
    client network books the same per-page request/response round trip
    as the single-server :class:`PageServer`.
    """

    name = "cluster_page_server"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.client_cache: Optional[BufferManager] = self._page_client_cache()

    def access_object_nowait(self, oid: int, write: bool):
        client_cache = self.client_cache
        network = self.network
        cluster = self.cluster
        pages = iter(self.object_manager.pages_of(oid))
        if network.infinite and (
            not write
            or cluster.router.replication == 1
            or cluster.interconnect.infinite
            or cluster.async_mode
        ):
            # Free client network, and the access cannot owe interconnect
            # time synchronously (reads never do; replication-1 writes
            # never propagate; async writes ship through the appliers,
            # which pay the interconnect themselves): the whole loop
            # stays synchronous until a node's disk misses — any timed
            # remainder (quorum waits, crash downtime) rides the
            # returned step.
            round_trip_bytes = self.config.message_bytes + self.config.pgsize
            for page in pages:
                if client_cache is not None:
                    if client_cache.access(page, False).hit:
                        self.client_hits += 1
                        continue
                    self.client_misses += 1
                network.messages += 2
                network.bytes_sent += round_trip_bytes
                step = cluster.serve_page_nowait(page, write)
                if step is not None:
                    return self._free_fabric_tail(step, pages, write)
            return None
        if client_cache is not None:
            # Throttled fabric: client-cache hits still resolve in
            # place; hand off at the first page that must travel.
            for page in pages:
                if client_cache.access(page, False).hit:
                    self.client_hits += 1
                    continue
                self.client_misses += 1
                return self._timed_tail(page, pages, write)
            return None
        return self._timed_access(pages, write)

    def _free_fabric_tail(self, step, pages, write: bool):
        """Finish a free-fabric object access from its first disk miss."""
        client_cache = self.client_cache
        network = self.network
        cluster = self.cluster
        round_trip_bytes = self.config.message_bytes + self.config.pgsize
        yield from step
        for page in pages:
            if client_cache is not None:
                if client_cache.access(page, False).hit:
                    self.client_hits += 1
                    continue
                self.client_misses += 1
            network.messages += 2
            network.bytes_sent += round_trip_bytes
            step = cluster.serve_page_nowait(page, write)
            if step is not None:
                yield from step

    def _timed_page(self, page: int, write: bool):
        """One page's round trip over the throttled fabric."""
        network = self.network
        cluster = self.cluster
        step = network.transfer_nowait(self.config.message_bytes)
        if step is not None:
            yield from step
        if cluster.interconnect.infinite:
            step = cluster.serve_page_nowait(page, write)
            if step is not None:
                yield from step
        else:
            yield from cluster.serve_page(page, write)
        step = network.transfer_nowait(self.config.pgsize)
        if step is not None:
            yield from step

    def _timed_tail(self, page: int, pages, write: bool):
        """Finish a throttled access whose first page already missed the
        client cache (the caller booked that miss)."""
        yield from self._timed_page(page, write)
        yield from self._timed_access(pages, write)

    def _timed_access(self, pages, write: bool):
        """Per-page round trips with at least one throttled network."""
        client_cache = self.client_cache
        for page in pages:
            if client_cache is not None:
                if client_cache.access(page, False).hit:
                    self.client_hits += 1
                    continue
                self.client_misses += 1
            yield from self._timed_page(page, write)

    def notify_reorganized(self) -> None:
        super().notify_reorganized()
        if self.client_cache is not None:
            self.client_cache.invalidate_all()


class ClusterObjectServer(ClusterArchitecture):
    """Sharded object server: a balancer picks a coordinator per object.

    The client is placement-blind: a front-end balancer hands each
    object request to a coordinator node round-robin.  The coordinator
    assembles the object — pages it owns are served locally, remotely
    owned pages cross the interconnect (request out, page back) — then
    the object's bytes ship to the client, ORION-style.  Forwarding
    cost therefore scales with ``(servers - 1) / servers``, the classic
    thin-client cluster trade the scenario catalog measures.
    """

    name = "cluster_object_server"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.client_cache: Optional[BufferManager] = self._object_client_cache()

    def access_object_nowait(self, oid: int, write: bool):
        if self.client_cache is not None:
            if self.client_cache.access(oid, False).hit:
                self.client_hits += 1
                return None
            self.client_misses += 1
        cluster = self.cluster
        span = self.object_manager.pages_of(oid)
        home = cluster.next_coordinator()
        if self._free_fabric:
            network = self.network
            network.transfer_nowait(self.config.message_bytes)
            pages = iter(span)
            for page in pages:
                step = cluster.serve_page_nowait(page, write, home)
                if step is not None:
                    return self._free_fabric_tail(step, pages, write, home, oid)
            network.transfer_nowait(self.db.size(oid))
            return None
        return self._timed_access(oid, span, write, home)

    def _free_fabric_tail(self, step, pages, write: bool, home: int, oid: int):
        cluster = self.cluster
        yield from step
        for page in pages:
            step = cluster.serve_page_nowait(page, write, home)
            if step is not None:
                yield from step
        self.network.transfer_nowait(self.db.size(oid))

    def _timed_access(self, oid: int, span, write: bool, home: int):
        network = self.network
        cluster = self.cluster
        fast_interconnect = cluster.interconnect.infinite
        step = network.transfer_nowait(self.config.message_bytes)
        if step is not None:
            yield from step
        for page in span:
            if fast_interconnect:
                step = cluster.serve_page_nowait(page, write, home)
                if step is not None:
                    yield from step
            else:
                yield from cluster.serve_page(page, write, home)
        step = network.transfer_nowait(self.db.size(oid))
        if step is not None:
            yield from step

    def notify_reorganized(self) -> None:
        super().notify_reorganized()
        if self.client_cache is not None:
            self.client_cache.invalidate_all()


_ARCHITECTURES: Dict[SystemClass, type] = {
    SystemClass.CENTRALIZED: Centralized,
    SystemClass.PAGE_SERVER: PageServer,
    SystemClass.OBJECT_SERVER: ObjectServer,
    SystemClass.DB_SERVER: DBServer,
}

_CLUSTER_ARCHITECTURES: Dict[SystemClass, type] = {
    SystemClass.PAGE_SERVER: ClusterPageServer,
    SystemClass.OBJECT_SERVER: ClusterObjectServer,
}


def make_architecture(
    sim: "Simulation",
    config: VOODBConfig,
    db: Database,
    object_manager: ObjectManager,
    memory,
    io: "IOSubsystem",
    network: Network,
    prefetcher: PrefetchPolicy,
    cluster=None,
) -> Architecture:
    """Instantiate the strategy selected by ``config.sysclass``.

    With a :class:`~repro.core.cluster.Cluster` the sharded variant of
    the system class is built instead (page/object server only — the
    config layer rejects other classes in cluster mode).
    """
    if cluster is not None:
        cls = _CLUSTER_ARCHITECTURES.get(config.sysclass)
        if cls is None:
            raise ValueError(
                f"no cluster variant for system class {config.sysclass.value!r}"
            )
        return cls(
            sim,
            config,
            db,
            object_manager,
            memory,
            io,
            network,
            prefetcher,
            cluster=cluster,
        )
    cls = _ARCHITECTURES[config.sysclass]
    return cls(sim, config, db, object_manager, memory, io, network, prefetcher)
