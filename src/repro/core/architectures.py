"""System-class strategies (Table 3 SYSCLASS; paper §3.3).

"Our generic model allows simulating the behavior of different types of
OODBMSs.  It is [...] especially suitable to page server systems (like
ObjectStore or O2), but can also be used to model object server systems
(like ORION or ONTOS), or database server systems [...].  The
organization of the VOODB components is controlled by the 'System class'
parameter."

Each strategy implements the object-access path of Figure 4 for one
organization:

* :class:`Centralized` — client and server are the same machine (Texas):
  Object Manager → memory → disk, no network.
* :class:`PageServer` — O2's organization: the client asks the server
  for the *page* holding the object; the page ships back whole.  An
  optional client page cache (``client_buffsize``) absorbs repeats.
* :class:`ObjectServer` — ORION/ONTOS: the client asks for the *object*;
  only the object's bytes ship.  The optional client cache holds objects.
* :class:`DBServer` — the whole transaction ships to the server and only
  request/result messages cross the network.

The shared server-side path (memory access, dirty write-back, swap
traffic, the read itself, prefetching) lives in the base class so that
architectures differ *only* in where requests travel — which is the
point of the paper's genericity claim.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.buffering import BufferManager
from repro.core.network import Network
from repro.core.object_manager import ObjectManager
from repro.core.parameters import SystemClass, VOODBConfig
from repro.core.prefetch import PrefetchPolicy
from repro.ocb.database import Database

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.despy.engine import Simulation
    from repro.core.io_subsystem import IOSubsystem


class Architecture(ABC):
    """The object-access path of one system class."""

    name: str = "abstract"

    def __init__(
        self,
        sim: "Simulation",
        config: VOODBConfig,
        db: Database,
        object_manager: ObjectManager,
        memory,
        io: "IOSubsystem",
        network: Network,
        prefetcher: PrefetchPolicy,
    ) -> None:
        self.sim = sim
        self.config = config
        self.db = db
        self.object_manager = object_manager
        self.memory = memory
        self.io = io
        self.network = network
        self.prefetcher = prefetcher
        self._prefetched_unused: set[int] = set()
        # Counters
        self.prefetched_pages = 0
        self.prefetch_hits = 0
        self.client_hits = 0
        self.client_misses = 0

    # ------------------------------------------------------------------
    @abstractmethod
    def access_object(self, oid: int, write: bool):
        """Process-generator performing one object access end to end."""

    def begin_transaction(self):
        """Hook before a transaction's accesses (network for DB server)."""
        return
        yield  # pragma: no cover - makes this an (empty) generator

    def end_transaction(self):
        """Hook after a transaction's accesses."""
        return
        yield  # pragma: no cover - makes this an (empty) generator

    # ------------------------------------------------------------------
    # Shared server-side page path
    # ------------------------------------------------------------------
    def _server_page_access(self, page: int, write: bool):
        """Figure 4's Buffering Manager → I/O Subsystem chain for a page."""
        outcome = self.memory.access(page, write)
        if outcome.hit:
            if page in self._prefetched_unused:
                self._prefetched_unused.discard(page)
                self.prefetch_hits += 1
            return
        for victim in outcome.writeback_pages:
            yield from self.io.write_page(victim)
        for __ in getattr(outcome, "swap_out_pages", ()):
            yield from self.io.swap_write()
        if getattr(outcome, "swap_read", False):
            yield from self.io.swap_read()
        if outcome.read_page is not None:
            yield from self.io.read_page(outcome.read_page)
            yield from self._prefetch_after_miss(page)

    def _prefetch_after_miss(self, page: int):
        admit = getattr(self.memory, "admit_prefetched", None)
        if admit is None:
            return  # prefetching needs a buffer; the VM model has none
        for extra in self.prefetcher.pages_after_miss(
            page, self.object_manager.total_pages
        ):
            outcome = admit(extra)
            if outcome is None:
                continue
            for victim in outcome.writeback_pages:
                yield from self.io.write_page(victim)
            yield from self.io.read_page(extra)
            self._prefetched_unused.add(extra)
            self.prefetched_pages += 1

    def _server_object_access(self, oid: int, write: bool):
        """Fetch every page of the object, then run the swizzle hook."""
        for page in self.object_manager.pages_of(oid):
            yield from self._server_page_access(page, write)
        for __ in self.memory.note_object_access(oid):
            yield from self.io.swap_write()

    def notify_reorganized(self) -> None:
        """Clustering moved objects: client/prefetch state is stale."""
        self._prefetched_unused.clear()


class Centralized(Architecture):
    """SYSCLASS = Centralized (Texas): everything is local."""

    name = "centralized"

    def access_object(self, oid: int, write: bool):
        yield from self._server_object_access(oid, write)


class PageServer(Architecture):
    """SYSCLASS = Page Server (O2, ObjectStore): pages ship to clients."""

    name = "page_server"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.client_cache: Optional[BufferManager] = None
        if self.config.client_buffsize > 0:
            self.client_cache = BufferManager(
                self.config,
                self.sim.stream("client-cache"),
                capacity=self.config.client_buffsize,
            )

    def access_object(self, oid: int, write: bool):
        for page in self.object_manager.pages_of(oid):
            if self.client_cache is not None:
                if self.client_cache.access(page, False).hit:
                    self.client_hits += 1
                    continue
                self.client_misses += 1
            yield from self.network.transfer(self.config.message_bytes)
            yield from self._server_page_access(page, write)
            yield from self.network.transfer(self.config.pgsize)

    def notify_reorganized(self) -> None:
        super().notify_reorganized()
        if self.client_cache is not None:
            self.client_cache.invalidate_all()


class ObjectServer(Architecture):
    """SYSCLASS = Object Server (ORION, ONTOS): objects ship to clients."""

    name = "object_server"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.client_cache: Optional[BufferManager] = None
        if self.config.client_buffsize > 0:
            # The client cache is object-granular: translate its page
            # budget into object slots at mean object size.
            mean_size = max(1.0, self.db.config.mean_instance_size)
            slots = max(
                1,
                int(
                    self.config.client_buffsize
                    * self.config.usable_page_bytes
                    / mean_size
                ),
            )
            self.client_cache = BufferManager(
                self.config, self.sim.stream("client-cache"), capacity=slots
            )

    def access_object(self, oid: int, write: bool):
        if self.client_cache is not None:
            if self.client_cache.access(oid, False).hit:
                self.client_hits += 1
                return
            self.client_misses += 1
        yield from self.network.transfer(self.config.message_bytes)
        yield from self._server_object_access(oid, write)
        yield from self.network.transfer(self.db.size(oid))

    def notify_reorganized(self) -> None:
        super().notify_reorganized()
        if self.client_cache is not None:
            self.client_cache.invalidate_all()


class DBServer(Architecture):
    """SYSCLASS = DB Server: transactions ship, data stays put."""

    name = "db_server"

    def begin_transaction(self):
        yield from self.network.transfer(self.config.message_bytes)

    def end_transaction(self):
        yield from self.network.transfer(self.config.message_bytes)

    def access_object(self, oid: int, write: bool):
        yield from self._server_object_access(oid, write)


_ARCHITECTURES: Dict[SystemClass, type] = {
    SystemClass.CENTRALIZED: Centralized,
    SystemClass.PAGE_SERVER: PageServer,
    SystemClass.OBJECT_SERVER: ObjectServer,
    SystemClass.DB_SERVER: DBServer,
}


def make_architecture(
    sim: "Simulation",
    config: VOODBConfig,
    db: Database,
    object_manager: ObjectManager,
    memory,
    io: "IOSubsystem",
    network: Network,
    prefetcher: PrefetchPolicy,
) -> Architecture:
    """Instantiate the strategy selected by ``config.sysclass``."""
    cls = _ARCHITECTURES[config.sysclass]
    return cls(sim, config, db, object_manager, memory, io, network, prefetcher)
