"""Multi-server cluster topology: sharded placement over N server nodes.

VOODB §3.3 notes the generic model "can also be used to model [...]
multiserver hybrid systems (like GemStone)"; this module is that
extension.  A :class:`Cluster` instantiates the server side of Figure 4
once per node — each :class:`ClusterNode` owns its own Buffering
Manager, I/O Subsystem (a private capacity-1 disk) and object lock
table — and a deterministic :class:`ShardRouter` places every disk page
on its owning node(s).

Placement strategies (Table-3 style codes on
:class:`~repro.core.parameters.ClusterConfig`):

* ``hash`` — Fibonacci hashing over the page id scatters pages
  uniformly; contiguous pages land on different nodes, so per-node
  sequential I/O mostly disappears (the classic hash-sharding trade);
* ``range`` — contiguous page runs stay on one node, preserving the
  Figure 5 contiguity shortcut per node at the cost of skew exposure.

``replication`` stores every page on that many consecutive nodes:
reads balance round-robin across the replica set, writes apply at the
primary and propagate the page image to the other replicas across the
**inter-server network** — a dedicated :class:`~repro.core.network.Network`
medium whose throughput (``interconnect_mbps``) contends exactly like
the client network.  The object-server organization additionally
assembles multi-node objects at the object's *home* node, paying an
interconnect round trip per remotely owned page.

Locking shards with the data: :class:`ClusterLockManager` keeps one
MULTILVL admission scheduler for the whole cluster (transactions are
global) but routes each object lock to the lock table of the object's
home node, acquiring node partitions in node order — a total order over
``(home node, oid)``, so the conservative-2PL deadlock-freedom argument
of :mod:`repro.core.locks` carries over unchanged.

The **consistency spectrum**
(:class:`~repro.core.parameters.ReplicationConfig`) selects how replica
writes propagate: the default ``sync`` mode pays the fan-out inside the
transaction, while ``async`` mode commits at the primary and enqueues
the page image on every successor's FIFO apply queue, drained by a
per-node *applier* process (interconnect ship + optional replay delay)
— producing ``replica_lag_ms``/``stale_reads``/``apply_queue_peak``.
Quorum reads consult ``read_quorum`` live replicas and serve the
freshest; quorum writes wait for ``write_quorum − 1`` applier acks;
the ``read_your_writes``/``monotonic_reads`` session guarantees fall
back to the primary when the routed replica is behind the session
floor.  Failure injection composes per node (independent hazard
streams): reads fail over around crashed nodes in ring order, writes
queue behind the down primary's recovery.

The **fault-tolerance layer**
(:class:`~repro.core.failures.FaultConfig` /
:class:`~repro.core.failures.RetryConfig`) adds the degraded-mode
fault kinds and the recovery machinery on top:

* *network partitions* cut the interconnect links between node groups
  for a heal time (sampled by thinning on a dedicated ``partitions``
  stream);
* *gray failures* put a node into a degraded mode that multiplies its
  disk and interconnect service times (per-node ``gray-{i}`` streams);
* every remote operation — quorum-read consultations, replica ships,
  coordinator fetches — honours the **timeout/retry/backoff contract**
  and abandons unresponsive peers instead of blocking
  (``remote_timeouts``/``remote_retries``/``abandoned_reads``);
* when a page's primary crashes or is partitioned away from the
  majority of its replica set, the freshest reachable replica is
  **promoted** after an election delay and writes redirect to it
  (replacing the write-blocking recovery wait); the old primary
  catches up through the version-guarded apply path;
* a periodic **anti-entropy** process Merkle-style compares page
  versions with reachable peers and back-fills stale copies over the
  interconnect, and quorum reads **read-repair** divergent replicas
  they observe.
"""

from __future__ import annotations

import math
from collections import deque
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.despy.process import PARK, Hold, Release, Request, WaitFor
from repro.despy.resource import Gate, Resource
from repro.despy.timebase import MS_PER_TICK, ms_to_ticks
from repro.core.buffering import BufferManager
from repro.core.failures import FailureInjector, NoFailures, RetryPolicy
from repro.core.io_subsystem import IOSubsystem
from repro.core.locks import LockManager
from repro.core.network import Network
from repro.core.parameters import ALLOWED_PLACEMENTS, VOODBConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.despy.engine import Simulation
    from repro.core.object_manager import ObjectManager

#: 64-bit golden-ratio multiplier (Fibonacci hashing): consecutive page
#: ids spread maximally far apart, with no dependence on Python's
#: randomized ``hash()`` — placement must be identical across processes
#: and Python versions for the goldens to reproduce byte-for-byte.
_GOLDEN = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


class ShardRouter:
    """Deterministic page -> server placement (hash or range)."""

    def __init__(
        self,
        servers: int,
        placement: str = "hash",
        total_pages: int = 1,
        replication: int = 1,
        seed: int = 0,
    ) -> None:
        if servers < 1:
            raise ValueError(f"servers must be >= 1, got {servers}")
        if placement not in ALLOWED_PLACEMENTS:
            raise ValueError(f"unknown placement {placement!r}")
        if not 1 <= replication <= servers:
            raise ValueError(
                f"replication must be in [1, {servers}], got {replication}"
            )
        if total_pages < 1:
            raise ValueError(f"total_pages must be >= 1, got {total_pages}")
        self.servers = servers
        self.placement = placement
        self.total_pages = total_pages
        self.replication = replication
        self.seed = seed
        #: salt folded into the hash so distinct seeds permute placement
        #: while staying a pure function of the (frozen) config.
        self._salt = (seed * _GOLDEN + 1) & _MASK64
        #: replica sets repeat per page id; memoized (pages are dense).
        self._replica_cache: Dict[int, Tuple[int, ...]] = {}

    def primary(self, page: int) -> int:
        """The node owning the authoritative copy of ``page``."""
        if page < 0:
            raise ValueError(f"page ids are non-negative, got {page}")
        if self.placement == "hash":
            return (((page + 1) * _GOLDEN ^ self._salt) & _MASK64) % self.servers
        if page >= self.total_pages:
            # Pages appended past the initial extent (OCB inserts) land
            # on the last range shard — heap-append semantics.
            return self.servers - 1
        return min(page * self.servers // self.total_pages, self.servers - 1)

    def replicas(self, page: int) -> Tuple[int, ...]:
        """The replica set of ``page``: primary first, then successors."""
        cached = self._replica_cache.get(page)
        if cached is not None:
            return cached
        first = self.primary(page)
        replicas = tuple(
            (first + offset) % self.servers for offset in range(self.replication)
        )
        self._replica_cache[page] = replicas
        return replicas

    def for_servers(
        self, servers: int, total_pages: Optional[int] = None
    ) -> "ShardRouter":
        """A re-sharded router for a new cluster size (same strategy)."""
        return ShardRouter(
            servers,
            self.placement,
            self.total_pages if total_pages is None else total_pages,
            min(self.replication, servers),
            self.seed,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardRouter {self.placement} servers={self.servers} "
            f"replication={self.replication}>"
        )


class ClusterNode:
    """One server of the cluster: its own buffer, disk and lock table."""

    def __init__(self, sim: "Simulation", config: VOODBConfig, index: int) -> None:
        self.index = index
        self.memory = BufferManager(config, sim.stream(f"memory-{index}"))
        self.io = IOSubsystem(sim, config)
        #: this node's object-lock table; admission is cluster-global
        #: (the ClusterLockManager's scheduler), hence no per-node one.
        self.locks = LockManager(sim, config, with_admission=False)
        #: page/object service operations this node performed.
        self.accesses = 0
        # --- extended-mode state (async replication / per-node hazards);
        # inert unless the Cluster wires the corresponding feature on.
        #: this node's hazard injector (node-indexed stream when enabled).
        self.failures = NoFailures()
        #: tick until which this node is crash-recovering (0 = healthy).
        self.down_until = 0
        #: highest page version applied locally (async replication).
        self.applied: Dict[int, int] = {}
        #: shipped page images awaiting local apply:
        #: ``(page, version, enqueued_tick, ack)`` entries, FIFO.
        self.apply_queue: deque = deque()
        #: wakes this node's applier process when the queue refills.
        self.apply_gate: Optional[Gate] = None
        #: deepest the apply queue ever got (backlog indicator).
        self.queue_peak = 0
        # --- fault-layer state (FaultConfig); inert unless wired on.
        #: tick until which this node is gray (degraded mode; 0 = crisp).
        self.gray_until = 0
        #: thinning marker of this node's gray-hazard exposure.
        self.gray_last = 0
        #: this node's gray-hazard stream (``gray-{i}`` when enabled).
        self.gray_stream = None
        #: this node's retry-jitter stream (``retry-{i}`` when enabled).
        self.retry_stream = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClusterNode {self.index} accesses={self.accesses}>"


class _ClusterIOView:
    """Cluster-wide I/O counters, quacking like one ``IOSubsystem``."""

    def __init__(self, nodes: List[ClusterNode]) -> None:
        self._nodes = nodes

    @property
    def reads(self) -> int:
        return sum(node.io.reads for node in self._nodes)

    @property
    def writes(self) -> int:
        return sum(node.io.writes for node in self._nodes)

    @property
    def swap_reads(self) -> int:
        return sum(node.io.swap_reads for node in self._nodes)

    @property
    def swap_writes(self) -> int:
        return sum(node.io.swap_writes for node in self._nodes)

    @property
    def sequential_accesses(self) -> int:
        return sum(node.io.sequential_accesses for node in self._nodes)

    @property
    def busy_ticks(self) -> int:
        return sum(node.io.busy_ticks for node in self._nodes)

    @property
    def busy_time_ms(self) -> float:
        return sum(node.io.busy_time_ms for node in self._nodes)

    @property
    def total_ios(self) -> int:
        return (
            self.reads + self.writes + self.swap_reads + self.swap_writes
        )


class _ClusterMemoryView:
    """Cluster-wide buffer counters, quacking like one ``BufferManager``."""

    def __init__(self, nodes: List[ClusterNode]) -> None:
        self._nodes = nodes

    @property
    def hits(self) -> int:
        return sum(node.memory.hits for node in self._nodes)

    @property
    def misses(self) -> int:
        return sum(node.memory.misses for node in self._nodes)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _ClusterFailureView:
    """Cluster-wide hazard counters, quacking like one ``FailureInjector``.

    On a cluster, hazards live at the nodes: transient faults are drawn
    by each node's own injector at its disk, and crash probes happen per
    page service at the serving node (``Cluster._crash_probe``) rather
    than at the Transaction Manager's global boundary — a crash takes
    one node down, not the system.  The view therefore sums the per-node
    counters and answers the TM's probes with "nothing happened here".
    """

    def __init__(self, nodes: List[ClusterNode]) -> None:
        self._nodes = nodes

    @property
    def transient_faults(self) -> int:
        return sum(node.failures.transient_faults for node in self._nodes)

    @property
    def crashes(self) -> int:
        return sum(node.failures.crashes for node in self._nodes)

    @property
    def downtime_ticks(self) -> int:
        return sum(node.failures.downtime_ticks for node in self._nodes)

    @property
    def downtime_ms(self) -> float:
        return self.downtime_ticks * MS_PER_TICK

    @property
    def frames_lost(self) -> int:
        return sum(node.failures.frames_lost for node in self._nodes)

    @staticmethod
    def io_penalty() -> int:
        return 0

    @staticmethod
    def crash_check() -> int:
        return 0


class ClusterLockManager:
    """Global MULTILVL admission + per-node sharded object lock tables.

    Implements the Transaction Manager's locking interface
    (``admission_request``/``admission_release`` commands and the
    ``acquire_all_nowait``/``release_all_nowait`` pair) by partitioning
    the lock set by each object's home node and delegating to the
    node-local :class:`~repro.core.locks.LockManager` tables **strictly
    in node order** — the next partition is not touched until the
    previous one is fully granted, preserving the global acquisition
    order that makes conservative 2PL deadlock-free.
    """

    def __init__(
        self,
        sim: "Simulation",
        config: VOODBConfig,
        nodes: List[ClusterNode],
        home_of,
    ) -> None:
        self.sim = sim
        self.config = config
        self.admission = Resource(sim, "scheduler", capacity=config.multilvl)
        self.admission_request = Request(self.admission)
        self.admission_release = Release(self.admission)
        self._nodes = nodes
        self._home_of = home_of

    # ------------------------------------------------------------------
    # Transaction-side protocol
    # ------------------------------------------------------------------
    def admit(self):
        yield self.admission_request

    def leave(self):
        yield self.admission_release

    def _partition(
        self, oids: Iterable[int], presorted: bool = False
    ) -> List[Tuple[int, List[int]]]:
        """Split the lock set by home node, each part in ascending oid.

        A ``presorted`` input (sorted, distinct — the Transaction
        Manager's contract) partitions order-preservingly, so every
        per-node part is already canonical and the node tables can skip
        their re-sort; otherwise ids are deduplicated here and the node
        tables canonicalize.  Either way the acquisition order is the
        same total order over ``(home node, oid)``.
        """
        home_of = self._home_of
        parts: Dict[int, List[int]] = {}
        if presorted:
            for oid in oids:
                parts.setdefault(home_of(oid), []).append(oid)
        else:
            for oid in set(oids):
                parts.setdefault(home_of(oid), []).append(oid)
        return sorted(parts.items())

    def acquire_all(self, txn_id: int, oids: Iterable[int], writes: set):
        step = self.acquire_all_nowait(txn_id, oids, writes)
        if step is not None:
            yield from step

    def acquire_all_nowait(
        self,
        txn_id: int,
        oids: Iterable[int],
        writes: set,
        presorted: bool = False,
    ):
        parts = self._partition(oids, presorted)
        for position, (node, part) in enumerate(parts):
            step = self._nodes[node].locks.acquire_all_nowait(
                txn_id, part, writes, presorted
            )
            if step is not None:
                return self._acquire_tail(
                    step, txn_id, parts[position + 1 :], writes, presorted
                )
        return None

    def _acquire_tail(self, step, txn_id, rest, writes, presorted):
        yield from step
        for node, part in rest:
            step = self._nodes[node].locks.acquire_all_nowait(
                txn_id, part, writes, presorted
            )
            if step is not None:
                yield from step

    def release_all(self, txn_id: int, oids: Iterable[int]):
        step = self.release_all_nowait(txn_id, oids)
        if step is not None:
            yield from step

    def release_all_nowait(
        self, txn_id: int, oids: Iterable[int], presorted: bool = False
    ):
        steps = []
        for node, part in self._partition(oids, presorted):
            step = self._nodes[node].locks.release_all_nowait(
                txn_id, part, presorted
            )
            if step is not None:
                steps.append(step)
        if not steps:
            return None
        if len(steps) == 1:
            return steps[0]
        return _chain(steps)

    # ------------------------------------------------------------------
    # Aggregate counters (the model's snapshot reads these)
    # ------------------------------------------------------------------
    @property
    def acquisitions(self) -> int:
        return sum(node.locks.acquisitions for node in self._nodes)

    @property
    def releases(self) -> int:
        return sum(node.locks.releases for node in self._nodes)

    @property
    def waits(self) -> int:
        return sum(node.locks.waits for node in self._nodes)

    @property
    def wait_ticks(self) -> int:
        return sum(node.locks.wait_ticks for node in self._nodes)

    @property
    def wait_time_ms(self) -> float:
        return sum(node.locks.wait_time_ms for node in self._nodes)

    @property
    def locked_objects(self) -> int:
        return sum(node.locks.locked_objects for node in self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ClusterLockManager nodes={len(self._nodes)} "
            f"locked={self.locked_objects} mpl={self.config.multilvl}>"
        )


def _chain(steps):
    for step in steps:
        yield from step


class Cluster:
    """The sharded server side: nodes, router, interconnect, counters."""

    def __init__(
        self,
        sim: "Simulation",
        config: VOODBConfig,
        object_manager: "ObjectManager",
    ) -> None:
        topology = config.cluster
        if not topology.enabled:
            raise ValueError("ClusterConfig.servers must be >= 1 for a Cluster")
        self.sim = sim
        self.config = config
        self.object_manager = object_manager
        self.router = ShardRouter(
            topology.servers,
            topology.placement,
            max(1, object_manager.total_pages),
            topology.replication,
            topology.placement_seed,
        )
        self.nodes = [
            ClusterNode(sim, config, index) for index in range(topology.servers)
        ]
        #: the inter-server medium: same half-duplex contention model as
        #: the client network, throttled by ``interconnect_mbps``.
        self.interconnect = Network(
            sim, config.with_changes(netthru=topology.interconnect_mbps)
        )
        self.io = _ClusterIOView(self.nodes)
        self.memory = _ClusterMemoryView(self.nodes)
        self.locks = ClusterLockManager(sim, config, self.nodes, self.home_of)
        self._page_bytes = config.pgsize
        self._message_bytes = config.message_bytes
        self._rr = 0
        self._coordinator_rr = 0
        # Counters
        self.remote_fetches = 0
        self.replica_reads = 0
        self.replica_writes = 0
        # --- consistency spectrum (ReplicationConfig) -----------------
        self.replication_config = config.replication
        #: async mode ships page images through per-node apply queues
        #: instead of the synchronous fan-out.
        self.async_mode = self.replication_config.is_async
        self._apply_delay = ms_to_ticks(self.replication_config.apply_delay_ms)
        self._failures_enabled = config.failures.enabled
        #: public gate for the fault-tolerance layer (partitions, gray
        #: failures, retry contract, elections, anti-entropy).
        self.faults_on = config.faults.enabled
        #: extended page service: any feature that perturbs the plain
        #: sync path (async replication, per-node hazards and/or the
        #: fault layer).  The plain path stays byte-identical when this
        #: is False.
        self._extended = (
            self.async_mode or self._failures_enabled or self.faults_on
        )
        #: latest version enqueued per page (bumped at the primary write).
        self._version: Dict[int, int] = {}
        #: latest version with a full write-quorum of acks per page.
        self._committed: Dict[int, int] = {}
        #: highest version ever served per page (monotonic-reads floor).
        self._served: Dict[int, int] = {}
        # Extended counters
        self.stale_reads = 0
        self.replica_applies = 0
        self.replica_lag_ticks = 0
        self.read_failovers = 0
        self.write_recovery_waits = 0
        #: page reads the extended path served (stale-rate denominator).
        self.reads_served = 0
        # Fault-layer counters (all stay 0 when the layer is off)
        self.partitions = 0
        self.partition_ticks = 0
        self.gray_episodes = 0
        self.degraded_reads = 0
        self.remote_timeouts = 0
        self.remote_retries = 0
        self.abandoned_reads = 0
        self.elections = 0
        self.promotions = 0
        self.repair_pages = 0
        self.read_repairs = 0
        self.failures = NoFailures()
        if self.faults_on:
            fault = config.faults
            self.retry_policy = RetryPolicy(config.retry)
            self._partition_mtbf = ms_to_ticks(fault.partition_mtbf_ms)
            self._partition_heal = ms_to_ticks(fault.partition_heal_ms)
            self._gray_mtbf = ms_to_ticks(fault.gray_mtbf_ms)
            self._gray_heal = ms_to_ticks(fault.gray_heal_ms)
            self._gray_slowdown = fault.gray_slowdown
            self._election_delay = ms_to_ticks(fault.election_delay_ms)
            self._repair_interval = ms_to_ticks(fault.repair_interval_ms)
            self._partition_stream = sim.stream("partitions")
            self._partition_last = 0
            #: tick until which the current partition holds (0 = whole).
            self._partition_until = 0
            self._group_of = self._resolve_group_of(fault, topology.servers)
            #: per-page elected primary (absent = the placement primary).
            self._leader: Dict[int, int] = {}
            #: per-page election-in-progress completion tick.
            self._electing: Dict[int, int] = {}
            self._repair_last = 0
            # Gray interconnect drag: the extra ticks one page ship
            # to/from a gray node costs, and whether that slowed ship
            # blows the retry timeout (making gray peers abandonable).
            if math.isinf(topology.interconnect_mbps):
                base_ship = 0
            else:
                ship_ms = self._page_bytes * 1000.0 / (
                    topology.interconnect_mbps * (2**20)
                )
                base_ship = ms_to_ticks(ship_ms)
            self._gray_ship_extra = int(
                base_ship * (self._gray_slowdown - 1.0)
            )
            self._gray_timeout_prone = (
                base_ship > 0
                and int(base_ship * self._gray_slowdown)
                >= self.retry_policy.timeout
            )
            for node in self.nodes:
                node.gray_stream = sim.stream(f"gray-{node.index}")
                node.retry_stream = sim.stream(f"retry-{node.index}")
        if self._failures_enabled:
            for node in self.nodes:
                node.failures = FailureInjector(
                    sim,
                    config.failures,
                    node.memory,
                    stream_label=f"failures-{node.index}",
                )
                node.io.failures = node.failures
            self.failures = _ClusterFailureView(self.nodes)
        if self.async_mode:
            for node in self.nodes:
                node.apply_gate = Gate(sim, f"apply-{node.index}")
                sim.process(
                    self._applier(node), name=f"applier-{node.index}"
                )

    @property
    def replica_lag_ms(self) -> float:
        return self.replica_lag_ticks * MS_PER_TICK

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def home_of(self, oid: int) -> int:
        """The node owning an object's first page (its home shard)."""
        return self.router.primary(self.object_manager.page_of(oid))

    def next_coordinator(self) -> int:
        """Round-robin coordinator choice (front-end load balancer).

        The object-server organization hands each object request to a
        coordinator node this way; the counter makes the rotation a
        pure function of the access sequence, so replications replay
        exactly.
        """
        index = self._coordinator_rr % len(self.nodes)
        self._coordinator_rr += 1
        return index

    def _serving_node(self, page: int, write: bool, home: Optional[int]) -> int:
        """Pick the node serving one page access, deterministically.

        Writes always apply at the primary.  Reads prefer the home node
        when it holds a replica (object-server locality), otherwise
        balance round-robin across the replica set.
        """
        owners = self.router.replicas(page)
        if write or len(owners) == 1:
            return owners[0]
        if home is not None and home in owners:
            return home
        index = self._rr % len(owners)
        self._rr += 1
        return owners[index]

    # ------------------------------------------------------------------
    # Page service
    # ------------------------------------------------------------------
    def serve_page_nowait(self, page: int, write: bool, home: Optional[int] = None):
        """Serve one page access; ``None`` when no simulated time passes.

        Only valid when the interconnect is free (infinite throughput):
        all messages are booked synchronously and a generator is
        returned only for the disk work of buffer misses.  ``home`` is
        the assembling node (object-server forwarding); ``None`` means
        the client routed the request straight to the serving node
        (page-server smart driver).
        """
        if self._extended:
            return self._serve_page_ext(page, write, home)
        owners = self.router.replicas(page)
        target = self._serving_node(page, write, home)
        node = self.nodes[target]
        node.accesses += 1
        if home is not None and target != home:
            # The home node fetches the page from its owner: one
            # request/response round trip on the interconnect.
            self.remote_fetches += 1
            self.interconnect.transfer_nowait(self._message_bytes)
            self.interconnect.transfer_nowait(self._page_bytes)
        if not write and target != owners[0]:
            self.replica_reads += 1
        outcome = node.memory.access(page, write)
        step = None if outcome.hit else self._node_miss_io(node, outcome)
        if write and len(owners) > 1:
            extra = self._propagate_nowait(page, owners)
            if extra is not None:
                step = extra if step is None else _chain((step, extra))
        return step

    def serve_page(self, page: int, write: bool, home: Optional[int] = None):
        """Timed variant of :meth:`serve_page_nowait` (generator).

        Used when the interconnect has finite throughput, so replica
        and forwarding transfers must pass through the event loop.
        """
        if self._extended:
            step = self._serve_page_ext(page, write, home)
            if step is not None:
                yield from step
            return
        owners = self.router.replicas(page)
        target = self._serving_node(page, write, home)
        node = self.nodes[target]
        node.accesses += 1
        interconnect = self.interconnect
        if home is not None and target != home:
            self.remote_fetches += 1
            step = interconnect.transfer_nowait(self._message_bytes)
            if step is not None:
                yield from step
        if not write and target != owners[0]:
            self.replica_reads += 1
        outcome = node.memory.access(page, write)
        if not outcome.hit:
            yield from self._node_miss_io(node, outcome)
        if home is not None and target != home:
            step = interconnect.transfer_nowait(self._page_bytes)
            if step is not None:
                yield from step
        if write and len(owners) > 1:
            for replica in owners[1:]:
                self.replica_writes += 1
                step = interconnect.transfer_nowait(self._page_bytes)
                if step is not None:
                    yield from step
                yield from self._install_replica(self.nodes[replica], page)

    def _propagate_nowait(self, page: int, owners: Tuple[int, ...]):
        """Ship a written page to the non-primary replicas (free net).

        The replicas install the received image straight into their
        buffers — no disk read — so the only event-loop work is writing
        back the dirty victims the installations evicted.
        """
        steps = None
        for replica in owners[1:]:
            self.replica_writes += 1
            self.interconnect.transfer_nowait(self._page_bytes)
            node = self.nodes[replica]
            outcome = node.memory.access(page, True)
            if not outcome.hit and outcome.writeback_pages:
                if steps is None:
                    steps = []
                steps.append(self._node_writebacks(node, outcome.writeback_pages))
        if steps is None:
            return None
        if len(steps) == 1:
            return steps[0]
        return _chain(steps)

    def _install_replica(self, node: ClusterNode, page: int):
        """Install a replicated page image at ``node`` (timed path)."""
        outcome = node.memory.access(page, True)
        if not outcome.hit and outcome.writeback_pages:
            yield from self._node_writebacks(node, outcome.writeback_pages)

    # ------------------------------------------------------------------
    # Extended page service: async replication and/or per-node hazards
    # ------------------------------------------------------------------
    def _serve_page_ext(self, page: int, write: bool, home: Optional[int]):
        """Nowait-contract page service for the extended cluster modes.

        Backs both :meth:`serve_page_nowait` and :meth:`serve_page` when
        async replication or per-node failure injection is active:
        timed work (finite-interconnect transfers, crash downtime,
        quorum waits, disk misses) is returned as a generator, ``None``
        means the access completed without simulated time.
        """
        owners = self.router.replicas(page)
        if self.faults_on:
            self._fault_probe()
            if write:
                leader = self._leader.get(page, owners[0])
                if self._leader_impaired(leader, owners, self.sim.now):
                    # The primary crashed or lost its majority: elect
                    # the freshest reachable replica and write there
                    # (no write-blocking recovery wait).
                    return self._election_then_write(page, owners, home)
                return self._write_core(page, owners, home, leader)
            return self._read_core(page, owners, home)
        if write:
            delay = self.nodes[owners[0]].down_until - self.sim.now
            if delay > 0:
                # Writes queue behind the crashed primary's recovery.
                self.write_recovery_waits += 1
                return self._write_after_recovery(delay, page, home)
            return self._write_core(page, owners, home)
        return self._read_core(page, owners, home)

    # -- Fault-layer state machinery (partitions / gray / retry) -------
    @staticmethod
    def _resolve_group_of(fault, servers: int) -> Dict[int, int]:
        """Node -> partition-side map; () bisects the cluster."""
        groups = fault.partition_groups
        if not groups and fault.partition_mtbf_ms > 0:
            half = (servers + 1) // 2
            groups = (
                tuple(range(half)),
                tuple(range(half, servers)),
            )
        group_of: Dict[int, int] = {}
        for side, members in enumerate(groups):
            for member in members:
                group_of[member] = side
        return group_of

    def _reachable_at(self, src: int, dst: int, when: int) -> bool:
        """Is the src -> dst interconnect link up at tick ``when``?"""
        if src == dst or self._partition_until <= when:
            return True
        return self._group_of.get(src) == self._group_of.get(dst)

    def _responsive_at(self, src: int, dst: int, when: int) -> bool:
        """Would ``dst`` answer ``src`` within one timeout at ``when``?

        A peer is unresponsive while crashed, partitioned away, or (when
        its slowed ship time exceeds the timeout) gray.
        """
        node = self.nodes[dst]
        if node.down_until > when or self.nodes[src].down_until > when:
            return False
        if not self._reachable_at(src, dst, when):
            return False
        if self._gray_timeout_prone and node.gray_until > when:
            return False
        return True

    def _next_responsive(self, src: int, dst: int, when: int) -> int:
        """Earliest tick >= ``when`` at which ``dst`` answers ``src``."""
        node = self.nodes[dst]
        resume = when
        if node.down_until > resume:
            resume = node.down_until
        if self.nodes[src].down_until > resume:
            resume = self.nodes[src].down_until
        if self._partition_until > resume and not self._reachable_at(
            src, dst, resume
        ):
            resume = self._partition_until
        if self._gray_timeout_prone and node.gray_until > resume:
            resume = node.gray_until
        return resume

    def _fault_probe(self) -> None:
        """Advance the global fault state at one observation instant.

        Same thinning-on-observation discipline as the hazard injector:
        partitions are drawn from elapsed exposure on the dedicated
        ``partitions`` stream (outage time is not exposure — the marker
        jumps past the heal), and the anti-entropy cadence fires a
        repair sweep when its interval has elapsed.  No standing timer
        events, so workload phases still drain naturally.
        """
        now = self.sim.now
        if self._partition_mtbf and now > self._partition_until:
            last = self._partition_last
            if now > last:
                self._partition_last = now
            elapsed = now - last
            if elapsed > 0:
                probability = 1.0 - math.exp(-elapsed / self._partition_mtbf)
                if self._partition_stream.bernoulli(probability):
                    self.partitions += 1
                    self._partition_until = now + self._partition_heal
                    self.partition_ticks += self._partition_heal
                    self._partition_last = self._partition_until
        if (
            self._repair_interval
            and now - self._repair_last >= self._repair_interval
        ):
            self._repair_last = now
            self.sim.process(self._repair_sweep(), name="anti-entropy")

    def _gray_probe(self, node: ClusterNode) -> None:
        """Per-node gray-hazard probe (thinning on its own stream)."""
        if not self._gray_mtbf:
            return
        now = self.sim.now
        if now <= node.gray_until:
            return  # already degraded; exposure resumes at the heal
        last = node.gray_last
        if now > last:
            node.gray_last = now
        elapsed = now - last
        if elapsed <= 0:
            return
        probability = 1.0 - math.exp(-elapsed / self._gray_mtbf)
        if node.gray_stream.bernoulli(probability):
            self.gray_episodes += 1
            node.gray_until = now + self._gray_heal
            node.gray_last = node.gray_until

    def _retry_outcome(self, src: int, dst: int, rng, start: int):
        """Project the timeout/retry/backoff ladder for src -> dst.

        Returns ``(responded, penalty_ticks)``.  Attempts are projected
        against the known outage schedule (``down_until``, the
        partition heal, gray episodes), so a retry landing after a heal
        succeeds: the storm is exactly as long as the outage forces it
        to be, and the whole ladder is a pure function of the seed
        (jitter comes from the initiating node's retry stream).
        """
        if self._responsive_at(src, dst, start):
            return True, 0
        policy = self.retry_policy
        penalty = 0
        attempt = 0
        while True:
            penalty += policy.timeout
            self.remote_timeouts += 1
            if attempt >= policy.max_retries:
                return False, penalty
            penalty += policy.backoff_ticks(attempt, rng)
            self.remote_retries += 1
            attempt += 1
            if self._responsive_at(src, dst, start + penalty):
                return True, penalty

    # -- Primary re-election -------------------------------------------
    def _leader_impaired(
        self, leader: int, owners: Tuple[int, ...], now: int
    ) -> bool:
        """Is the current primary unfit to take this write?

        Unfit means crashed, or cut off from a strict majority of its
        replica set by an active partition (writes at a minority-side
        primary would silently diverge).
        """
        if self.nodes[leader].down_until > now:
            return True
        if self._partition_until <= now or len(owners) == 1:
            return False
        reachable = sum(
            1 for owner in owners if self._reachable_at(leader, owner, now)
        )
        return reachable < len(owners) // 2 + 1

    def _elect(self, page: int, owners: Tuple[int, ...], now: int):
        """Choose the replica to promote (``None`` = all replicas down).

        Eligible nodes are alive replicas that reach a strict majority
        of the replica set; when no side holds a majority, any alive
        replica qualifies (the minority keeps limping rather than
        blocking).  Among the eligible, the highest locally applied
        version of the page wins — re-election never promotes a stale
        replica over a fresher reachable one — with ties resolving in
        replica-set order.
        """
        nodes = self.nodes
        alive = [o for o in owners if nodes[o].down_until <= now]
        if not alive:
            return None
        majority = len(owners) // 2 + 1
        eligible = [
            o
            for o in alive
            if sum(
                1
                for peer in owners
                if nodes[peer].down_until <= now
                and self._reachable_at(o, peer, now)
            )
            >= majority
        ] or alive
        best = eligible[0]
        best_version = nodes[best].applied.get(page, 0)
        for candidate in eligible[1:]:
            version = nodes[candidate].applied.get(page, 0)
            if version > best_version:
                best, best_version = candidate, version
        return best

    def _election_then_write(self, page: int, owners: Tuple[int, ...], home):
        """Run (or join) an election for ``page``, then write there."""
        now = self.sim.now
        pending = self._electing.get(page, 0)
        if pending > now:
            # An election for this page is already under way: wait for
            # its verdict rather than holding a second one.
            yield Hold(pending - now)
        else:
            self._electing[page] = now + self._election_delay
            self.elections += 1
            if self._election_delay:
                yield Hold(self._election_delay)
            while True:
                chosen = self._elect(page, owners, self.sim.now)
                if chosen is not None:
                    break
                # Every replica is down: wait out the earliest recovery.
                resume = min(self.nodes[o].down_until for o in owners)
                yield Hold(resume - self.sim.now)
            if chosen != self._leader.get(page, owners[0]):
                self._leader[page] = chosen
                self.promotions += 1
        step = self._write_core(
            page, owners, home, self._leader.get(page, owners[0])
        )
        if step is not None:
            yield from step

    def _read_core(self, page: int, owners: Tuple[int, ...], home):
        now = self.sim.now
        nodes = self.nodes
        target = self._serving_node(page, False, home)
        if nodes[target].down_until > now:
            start = owners.index(target)
            for offset in range(1, len(owners)):
                candidate = owners[(start + offset) % len(owners)]
                if nodes[candidate].down_until <= now:
                    # Route the read around the crashed node.
                    self.read_failovers += 1
                    target = candidate
                    break
            else:
                # The whole replica set is down: wait out the earliest
                # recovery, then retry the access from scratch.
                self.read_failovers += 1
                resume = min(nodes[index].down_until for index in owners)
                return self._resume_read(resume, page, home)
        probes = 0
        penalty = 0
        repair = None
        if self.async_mode:
            if self.faults_on:
                target, probes, penalty, repair = (
                    self._consistent_read_target_fault(
                        page, owners, target, now
                    )
                )
            else:
                target, probes = self._consistent_read_target(
                    page, owners, target, now
                )
            if target is None:
                # A session guarantee needs the (down) primary.
                primary = (
                    self._leader.get(page, owners[0])
                    if self.faults_on
                    else owners[0]
                )
                return self._resume_read(
                    nodes[primary].down_until, page, home
                )
        node = nodes[target]
        node.accesses += 1
        self.reads_served += 1
        if target != owners[0]:
            self.replica_reads += 1
        if self.async_mode:
            applied = node.applied.get(page, 0)
            if applied < self._committed.get(page, 0):
                self.stale_reads += 1
            if applied > self._served.get(page, 0):
                self._served[page] = applied
        downtime = self._crash_probe(node)
        degraded = False
        if self.faults_on:
            self._gray_probe(node)
            degraded = node.gray_until > now
            if degraded:
                self.degraded_reads += 1
        forwarded = home is not None and target != home
        if forwarded:
            self.remote_fetches += 1
            if self.faults_on:
                # Coordinator fetch under the retry contract: the home
                # node keeps the request and completes it once the peer
                # answers — an abandoned ladder waits the outage out.
                ok, cost = self._retry_outcome(
                    home, target, nodes[home].retry_stream, now
                )
                if ok:
                    penalty += cost
                else:
                    self.abandoned_reads += 1
                    penalty += (
                        self._next_responsive(home, target, now + cost) - now
                    )
                if degraded:
                    penalty += self._gray_ship_extra
        if degraded:
            outcome = node.memory.access(page, False)
            miss = (
                None
                if outcome.hit
                else self._node_miss_io_degraded(node, outcome)
            )
        else:
            outcome = node.memory.access(page, False)
            miss = None if outcome.hit else self._node_miss_io(node, outcome)
        step = self._assemble(downtime + penalty, forwarded, probes, miss)
        if repair is not None:
            step = repair if step is None else _chain((step, repair))
        return step

    def _consistent_read_target(
        self, page: int, owners: Tuple[int, ...], target: int, now: int
    ):
        """Apply quorum consultation and session guarantees to a read.

        Returns ``(node, probe_messages)``; ``node`` is ``None`` when a
        session guarantee can only be met by the primary and the primary
        is down (the caller waits out its recovery).
        """
        rep = self.replication_config
        nodes = self.nodes
        probes = 0
        if rep.read_quorum > 1 and len(owners) > 1:
            # Consult R live replicas (ring order from the routed node)
            # and serve from the freshest — each extra consultation is a
            # version-probe round trip on the interconnect.
            consulted = [target]
            start = owners.index(target)
            for offset in range(1, len(owners)):
                if len(consulted) >= rep.read_quorum:
                    break
                candidate = owners[(start + offset) % len(owners)]
                if nodes[candidate].down_until <= now:
                    consulted.append(candidate)
            probes = 2 * (len(consulted) - 1)
            best = consulted[0]
            best_version = nodes[best].applied.get(page, 0)
            for candidate in consulted[1:]:
                version = nodes[candidate].applied.get(page, 0)
                if version > best_version:
                    best, best_version = candidate, version
            target = best
        required = 0
        if rep.read_your_writes:
            required = self._version.get(page, 0)
        if rep.monotonic_reads:
            floor = self._served.get(page, 0)
            if floor > required:
                required = floor
        if required and nodes[target].applied.get(page, 0) < required:
            # Too stale for the session guarantee: fall back to the
            # primary, which always holds the newest version when up.
            primary = owners[0]
            if nodes[primary].down_until > now:
                return None, probes
            target = primary
        return target, probes

    def _consistent_read_target_fault(
        self, page: int, owners: Tuple[int, ...], target: int, now: int
    ):
        """Quorum consultation under the retry contract, with read-repair.

        The fault-layer variant of :meth:`_consistent_read_target`:
        consulted peers that do not answer within the timeout/backoff
        ladder are **abandoned** (``abandoned_reads``) instead of
        silently skipped, their ladder cost lands on the read's
        response time, and replicas the consultation observes behind
        the freshest version are **read-repaired** over the
        interconnect.  Returns ``(target, probe_messages,
        penalty_ticks, repair_step)``; ``target`` ``None`` means a
        session guarantee needs the (down) primary.
        """
        rep = self.replication_config
        nodes = self.nodes
        probes = 0
        penalty = 0
        repair = None
        if rep.read_quorum > 1 and len(owners) > 1:
            rng = nodes[target].retry_stream
            consulted = [target]
            start = owners.index(target)
            for offset in range(1, len(owners)):
                if len(consulted) >= rep.read_quorum:
                    break
                candidate = owners[(start + offset) % len(owners)]
                self._gray_probe(nodes[candidate])
                ok, cost = self._retry_outcome(
                    target, candidate, rng, now + penalty
                )
                penalty += cost
                if ok:
                    consulted.append(candidate)
                else:
                    self.abandoned_reads += 1
            probes = 2 * (len(consulted) - 1)
            best = consulted[0]
            best_version = nodes[best].applied.get(page, 0)
            for candidate in consulted[1:]:
                version = nodes[candidate].applied.get(page, 0)
                if version > best_version:
                    best, best_version = candidate, version
            stale = [
                c
                for c in consulted
                if nodes[c].applied.get(page, 0) < best_version
            ]
            if stale:
                self.read_repairs += len(stale)
                repair = self._read_repair(page, best_version, stale)
            target = best
        required = 0
        if rep.read_your_writes:
            required = self._version.get(page, 0)
        if rep.monotonic_reads:
            floor = self._served.get(page, 0)
            if floor > required:
                required = floor
        if required and nodes[target].applied.get(page, 0) < required:
            # Too stale for the session guarantee: fall back to the
            # elected primary, which holds the newest version when up.
            primary = self._leader.get(page, owners[0])
            if nodes[primary].down_until > now:
                return None, probes, penalty, repair
            target = primary
        return target, probes, penalty, repair

    def _read_repair(self, page: int, version: int, stale: List[int]):
        """Back-fill the divergent replicas a quorum read observed."""
        interconnect = self.interconnect
        for index in stale:
            node = self.nodes[index]
            step = interconnect.transfer_nowait(self._page_bytes)
            if step is not None:
                yield from step
            if version > node.applied.get(page, 0):
                node.applied[page] = version
                outcome = node.memory.access(page, True)
                if not outcome.hit and outcome.writeback_pages:
                    yield from self._node_writebacks(
                        node, outcome.writeback_pages
                    )

    def _resume_read(self, resume: int, page: int, home):
        yield Hold(resume - self.sim.now)
        step = self._serve_page_ext(page, False, home)
        if step is not None:
            yield from step

    def _write_after_recovery(self, delay: int, page: int, home):
        yield Hold(delay)
        step = self._serve_page_ext(page, True, home)
        if step is not None:
            yield from step

    def _write_core(
        self,
        page: int,
        owners: Tuple[int, ...],
        home,
        leader: Optional[int] = None,
    ):
        now = self.sim.now
        primary = owners[0] if leader is None else leader
        node = self.nodes[primary]
        node.accesses += 1
        downtime = self._crash_probe(node)
        degraded = False
        if self.faults_on:
            self._gray_probe(node)
            degraded = node.gray_until > now
        forwarded = home is not None and primary != home
        if forwarded:
            self.remote_fetches += 1
        if not self.async_mode:
            return self._sync_write_with_hazards(
                page, owners, node, downtime, forwarded, degraded
            )
        version = self._version.get(page, 0) + 1
        self._version[page] = version
        node.applied[page] = version
        outcome = node.memory.access(page, True)
        if outcome.hit:
            miss = None
        elif degraded:
            miss = self._node_miss_io_degraded(node, outcome)
        else:
            miss = self._node_miss_io(node, outcome)
        ack = None
        if len(owners) > 1:
            quorum = self.replication_config.write_quorum
            if quorum > 1:
                # The ack cell: [outstanding count, gate the last
                # acking applier opens].
                ack = [quorum - 1, Gate(self.sim, "write-ack")]
            followers = (
                owners[1:]
                if leader is None
                else [o for o in owners if o != primary]
            )
            for position, replica in enumerate(followers):
                self.replica_writes += 1
                peer = self.nodes[replica]
                peer.apply_queue.append(
                    (
                        page,
                        version,
                        now,
                        ack if position < quorum - 1 else None,
                    )
                )
                depth = len(peer.apply_queue)
                if depth > peer.queue_peak:
                    peer.queue_peak = depth
                peer.apply_gate.open()
        step = self._assemble(downtime, forwarded, 0, miss)
        if ack is None:
            # W=1 (or no replicas): the primary apply is the commit.
            if version > self._committed.get(page, 0):
                self._committed[page] = version
            return step
        return self._await_write_quorum(step, ack, page, version)

    def _await_write_quorum(self, step, ack, page: int, version: int):
        if step is not None:
            yield from step
        gate = ack[1]
        while ack[0] > 0:
            gate.close()
            yield WaitFor(gate)
        if version > self._committed.get(page, 0):
            self._committed[page] = version

    def _sync_write_with_hazards(
        self,
        page: int,
        owners: Tuple[int, ...],
        node: ClusterNode,
        downtime: int,
        forwarded: bool,
        degraded: bool = False,
    ):
        outcome = node.memory.access(page, True)
        if outcome.hit:
            miss = None
        elif degraded:
            miss = self._node_miss_io_degraded(node, outcome)
        else:
            miss = self._node_miss_io(node, outcome)
        step = self._assemble(downtime, forwarded, 0, miss)
        if len(owners) == 1:
            return step
        return self._sync_propagate(step, page, owners)

    def _sync_propagate(self, step, page: int, owners: Tuple[int, ...]):
        """Synchronous fan-out, skipping replicas that are down.

        A crashed replica misses the propagation, but its crash already
        invalidated its buffer — on recovery the stale image cannot be
        served from memory, so the skip is consistency-safe.
        """
        if step is not None:
            yield from step
        interconnect = self.interconnect
        for replica in owners[1:]:
            peer = self.nodes[replica]
            if peer.down_until > self.sim.now:
                continue
            self.replica_writes += 1
            transfer = interconnect.transfer_nowait(self._page_bytes)
            if transfer is not None:
                yield from transfer
            outcome = peer.memory.access(page, True)
            if not outcome.hit and outcome.writeback_pages:
                yield from self._node_writebacks(
                    peer, outcome.writeback_pages
                )

    def _crash_probe(self, node: ClusterNode) -> int:
        """Per-service crash probe at the serving node (0 = healthy).

        On a crash the node's buffer is already cold (the injector
        invalidated it) and the in-flight request rides out the
        recovery; later requests route around the node via
        ``down_until`` until it resumes.
        """
        downtime = node.failures.crash_check()
        if downtime:
            node.down_until = self.sim.now + downtime
        return downtime

    def _assemble(self, downtime: int, forwarded: bool, probes: int, miss):
        """Fold the timed parts of one page service into a nowait step."""
        interconnect = self.interconnect
        if interconnect.infinite:
            if forwarded:
                interconnect.transfer_nowait(self._message_bytes)
                interconnect.transfer_nowait(self._page_bytes)
            for _ in range(probes):
                interconnect.transfer_nowait(self._message_bytes)
            if downtime == 0:
                return miss
            return self._hold_then(downtime, miss)
        return self._timed_tail(downtime, forwarded, probes, miss)

    @staticmethod
    def _hold_then(downtime: int, miss):
        yield Hold(downtime)
        if miss is not None:
            yield from miss

    def _timed_tail(self, downtime: int, forwarded: bool, probes: int, miss):
        if downtime:
            yield Hold(downtime)
        interconnect = self.interconnect
        if forwarded:
            step = interconnect.transfer_nowait(self._message_bytes)
            if step is not None:
                yield from step
        for _ in range(probes):
            step = interconnect.transfer_nowait(self._message_bytes)
            if step is not None:
                yield from step
        if miss is not None:
            yield from miss
        if forwarded:
            step = interconnect.transfer_nowait(self._page_bytes)
            if step is not None:
                yield from step

    def _applier(self, node: ClusterNode):
        """The per-node replication applier (async mode).

        One despy process per node: drains ``(page, version, enqueued,
        ack)`` entries FIFO, paying the interconnect ship, the
        configured apply delay and any crash downtime before installing
        the image and signalling the write-quorum ack.  Replication lag
        is measured enqueue-to-apply, so queueing, shipping, delay and
        downtime all count.
        """
        sim = self.sim
        queue = node.apply_queue
        gate = node.apply_gate
        interconnect = self.interconnect
        delay = self._apply_delay
        applied = node.applied
        while True:
            if not queue:
                gate.close()
                yield WaitFor(gate)
                continue
            page, version, enqueued, ack = queue.popleft()
            if self.faults_on:
                # The ship honours the retry contract against the
                # page's current primary: an abandoned ship negative-
                # acks (so writers never block on a dead link) and the
                # replica stays stale until anti-entropy or read-repair
                # back-fills it.
                source = self._leader.get(
                    page, self.router.replicas(page)[0]
                )
                self._gray_probe(node)
                ok, cost = self._retry_outcome(
                    source, node.index, node.retry_stream, sim.now
                )
                if cost:
                    yield Hold(cost)
                if not ok:
                    if ack is not None:
                        ack[0] -= 1
                        if ack[0] <= 0:
                            ack[1].open()
                    continue
                if node.gray_until > sim.now and self._gray_ship_extra:
                    yield Hold(self._gray_ship_extra)
            step = interconnect.transfer_nowait(self._page_bytes)
            if step is not None:
                yield from step
            if delay:
                yield Hold(delay)
            down = node.down_until - sim.now
            if down > 0:
                yield Hold(down)
            if version > applied.get(page, 0):
                applied[page] = version
                outcome = node.memory.access(page, True)
                if not outcome.hit and outcome.writeback_pages:
                    yield from self._node_writebacks(
                        node, outcome.writeback_pages
                    )
            self.replica_applies += 1
            self.replica_lag_ticks += sim.now - enqueued
            if ack is not None:
                ack[0] -= 1
                if ack[0] <= 0:
                    ack[1].open()

    # -- Anti-entropy repair -------------------------------------------
    def _repair_sweep(self):
        """One anti-entropy round over the whole cluster.

        Every live node exchanges a Merkle-style version summary (one
        control message per reachable peer) and back-fills each page it
        replicates whose freshest reachable copy is newer than its own,
        paying one page ship per back-fill.  Versions only move
        forward, so a sweep is idempotent and the old primary's
        catch-up after a partition or crash is version-guarded.
        """
        sim = self.sim
        nodes = self.nodes
        interconnect = self.interconnect
        router = self.router
        for node in nodes:
            if node.down_until > sim.now:
                continue
            peers = [
                other
                for other in nodes
                if other.index != node.index
                and other.down_until <= sim.now
                and self._reachable_at(node.index, other.index, sim.now)
            ]
            if not peers:
                continue
            for _ in peers:
                step = interconnect.transfer_nowait(self._message_bytes)
                if step is not None:
                    yield from step
            for page in sorted(self._version):
                owners = router.replicas(page)
                if node.index not in owners:
                    continue
                have = node.applied.get(page, 0)
                best = have
                source = None
                for owner in owners:
                    if owner == node.index:
                        continue
                    peer = nodes[owner]
                    if peer.down_until > sim.now:
                        continue
                    if not self._reachable_at(node.index, owner, sim.now):
                        continue
                    version = peer.applied.get(page, 0)
                    if version > best:
                        best = version
                        source = owner
                if source is None:
                    continue
                step = interconnect.transfer_nowait(self._page_bytes)
                if step is not None:
                    yield from step
                node.applied[page] = best
                outcome = node.memory.access(page, True)
                if not outcome.hit and outcome.writeback_pages:
                    yield from self._node_writebacks(
                        node, outcome.writeback_pages
                    )
                self.repair_pages += 1

    def drain_repairs(self) -> bool:
        """Schedule the final anti-entropy round of a drained phase.

        The model calls this after the workload drains: the round waits
        for active partitions to heal and crashed nodes to recover
        (convergence is only promised for *healed* faults), then runs
        one sweep, bringing every replica up to the commit point.
        Returns ``False`` when the fault layer or repair is off.
        """
        if not self.faults_on or not self._repair_interval:
            return False
        self.sim.process(self._final_repair(), name="anti-entropy-drain")
        return True

    def _final_repair(self):
        sim = self.sim
        resume = self._partition_until
        for node in self.nodes:
            if node.down_until > resume:
                resume = node.down_until
        if resume > sim.now:
            yield Hold(resume - sim.now)
        yield from self._repair_sweep()

    def _node_miss_io_degraded(self, node: ClusterNode, outcome):
        """Gray-mode variant of :meth:`_node_miss_io`: every disk
        operation at a degraded node is stretched by the configured
        slowdown; the stretch counts as busy time (the disk really is
        occupied that long)."""
        io = node.io
        disk = io.disk
        scale = self._gray_slowdown - 1.0
        for victim in outcome.writeback_pages:
            if not disk.try_acquire_inline():
                yield io._request_disk
            hold = io.write_hold(victim)
            extra = int(hold.duration * scale)
            yield hold
            if extra:
                io.busy_ticks += extra
                yield Hold(extra)
            if not disk.release_inline():
                yield PARK
        if outcome.read_page is not None:
            if not disk.try_acquire_inline():
                yield io._request_disk
            hold = io.read_hold(outcome.read_page)
            extra = int(hold.duration * scale)
            yield hold
            if extra:
                io.busy_ticks += extra
                yield Hold(extra)
            if not disk.release_inline():
                yield PARK

    @staticmethod
    def _node_miss_io(node: ClusterNode, outcome):
        """The disk traffic one buffer miss produced, on the owning node.

        Same inline request/release fast paths as the single-server
        architectures: an uncontended node disk costs one Hold event.
        """
        io = node.io
        disk = io.disk
        for victim in outcome.writeback_pages:
            if not disk.try_acquire_inline():
                yield io._request_disk
            yield io.write_hold(victim)
            if not disk.release_inline():
                yield PARK
        if outcome.read_page is not None:
            if not disk.try_acquire_inline():
                yield io._request_disk
            yield io.read_hold(outcome.read_page)
            if not disk.release_inline():
                yield PARK

    @staticmethod
    def _node_writebacks(node: ClusterNode, victims):
        io = node.io
        disk = io.disk
        for victim in victims:
            if not disk.try_acquire_inline():
                yield io._request_disk
            yield io.write_hold(victim)
            if not disk.release_inline():
                yield PARK

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Cluster servers={len(self.nodes)} "
            f"placement={self.router.placement!r} "
            f"replication={self.router.replication}>"
        )
