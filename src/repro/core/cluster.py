"""Multi-server cluster topology: sharded placement over N server nodes.

VOODB §3.3 notes the generic model "can also be used to model [...]
multiserver hybrid systems (like GemStone)"; this module is that
extension.  A :class:`Cluster` instantiates the server side of Figure 4
once per node — each :class:`ClusterNode` owns its own Buffering
Manager, I/O Subsystem (a private capacity-1 disk) and object lock
table — and a deterministic :class:`ShardRouter` places every disk page
on its owning node(s).

Placement strategies (Table-3 style codes on
:class:`~repro.core.parameters.ClusterConfig`):

* ``hash`` — Fibonacci hashing over the page id scatters pages
  uniformly; contiguous pages land on different nodes, so per-node
  sequential I/O mostly disappears (the classic hash-sharding trade);
* ``range`` — contiguous page runs stay on one node, preserving the
  Figure 5 contiguity shortcut per node at the cost of skew exposure.

``replication`` stores every page on that many consecutive nodes:
reads balance round-robin across the replica set, writes apply at the
primary and propagate the page image to the other replicas across the
**inter-server network** — a dedicated :class:`~repro.core.network.Network`
medium whose throughput (``interconnect_mbps``) contends exactly like
the client network.  The object-server organization additionally
assembles multi-node objects at the object's *home* node, paying an
interconnect round trip per remotely owned page.

Locking shards with the data: :class:`ClusterLockManager` keeps one
MULTILVL admission scheduler for the whole cluster (transactions are
global) but routes each object lock to the lock table of the object's
home node, acquiring node partitions in node order — a total order over
``(home node, oid)``, so the conservative-2PL deadlock-freedom argument
of :mod:`repro.core.locks` carries over unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.despy.process import PARK, Release, Request
from repro.despy.resource import Resource
from repro.core.buffering import BufferManager
from repro.core.io_subsystem import IOSubsystem
from repro.core.locks import LockManager
from repro.core.network import Network
from repro.core.parameters import ALLOWED_PLACEMENTS, VOODBConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.despy.engine import Simulation
    from repro.core.object_manager import ObjectManager

#: 64-bit golden-ratio multiplier (Fibonacci hashing): consecutive page
#: ids spread maximally far apart, with no dependence on Python's
#: randomized ``hash()`` — placement must be identical across processes
#: and Python versions for the goldens to reproduce byte-for-byte.
_GOLDEN = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


class ShardRouter:
    """Deterministic page -> server placement (hash or range)."""

    def __init__(
        self,
        servers: int,
        placement: str = "hash",
        total_pages: int = 1,
        replication: int = 1,
        seed: int = 0,
    ) -> None:
        if servers < 1:
            raise ValueError(f"servers must be >= 1, got {servers}")
        if placement not in ALLOWED_PLACEMENTS:
            raise ValueError(f"unknown placement {placement!r}")
        if not 1 <= replication <= servers:
            raise ValueError(
                f"replication must be in [1, {servers}], got {replication}"
            )
        if total_pages < 1:
            raise ValueError(f"total_pages must be >= 1, got {total_pages}")
        self.servers = servers
        self.placement = placement
        self.total_pages = total_pages
        self.replication = replication
        self.seed = seed
        #: salt folded into the hash so distinct seeds permute placement
        #: while staying a pure function of the (frozen) config.
        self._salt = (seed * _GOLDEN + 1) & _MASK64
        #: replica sets repeat per page id; memoized (pages are dense).
        self._replica_cache: Dict[int, Tuple[int, ...]] = {}

    def primary(self, page: int) -> int:
        """The node owning the authoritative copy of ``page``."""
        if page < 0:
            raise ValueError(f"page ids are non-negative, got {page}")
        if self.placement == "hash":
            return (((page + 1) * _GOLDEN ^ self._salt) & _MASK64) % self.servers
        if page >= self.total_pages:
            # Pages appended past the initial extent (OCB inserts) land
            # on the last range shard — heap-append semantics.
            return self.servers - 1
        return min(page * self.servers // self.total_pages, self.servers - 1)

    def replicas(self, page: int) -> Tuple[int, ...]:
        """The replica set of ``page``: primary first, then successors."""
        cached = self._replica_cache.get(page)
        if cached is not None:
            return cached
        first = self.primary(page)
        replicas = tuple(
            (first + offset) % self.servers for offset in range(self.replication)
        )
        self._replica_cache[page] = replicas
        return replicas

    def for_servers(
        self, servers: int, total_pages: Optional[int] = None
    ) -> "ShardRouter":
        """A re-sharded router for a new cluster size (same strategy)."""
        return ShardRouter(
            servers,
            self.placement,
            self.total_pages if total_pages is None else total_pages,
            min(self.replication, servers),
            self.seed,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardRouter {self.placement} servers={self.servers} "
            f"replication={self.replication}>"
        )


class ClusterNode:
    """One server of the cluster: its own buffer, disk and lock table."""

    def __init__(self, sim: "Simulation", config: VOODBConfig, index: int) -> None:
        self.index = index
        self.memory = BufferManager(config, sim.stream(f"memory-{index}"))
        self.io = IOSubsystem(sim, config)
        #: this node's object-lock table; admission is cluster-global
        #: (the ClusterLockManager's scheduler), hence no per-node one.
        self.locks = LockManager(sim, config, with_admission=False)
        #: page/object service operations this node performed.
        self.accesses = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClusterNode {self.index} accesses={self.accesses}>"


class _ClusterIOView:
    """Cluster-wide I/O counters, quacking like one ``IOSubsystem``."""

    def __init__(self, nodes: List[ClusterNode]) -> None:
        self._nodes = nodes

    @property
    def reads(self) -> int:
        return sum(node.io.reads for node in self._nodes)

    @property
    def writes(self) -> int:
        return sum(node.io.writes for node in self._nodes)

    @property
    def swap_reads(self) -> int:
        return sum(node.io.swap_reads for node in self._nodes)

    @property
    def swap_writes(self) -> int:
        return sum(node.io.swap_writes for node in self._nodes)

    @property
    def sequential_accesses(self) -> int:
        return sum(node.io.sequential_accesses for node in self._nodes)

    @property
    def busy_ticks(self) -> int:
        return sum(node.io.busy_ticks for node in self._nodes)

    @property
    def busy_time_ms(self) -> float:
        return sum(node.io.busy_time_ms for node in self._nodes)

    @property
    def total_ios(self) -> int:
        return (
            self.reads + self.writes + self.swap_reads + self.swap_writes
        )


class _ClusterMemoryView:
    """Cluster-wide buffer counters, quacking like one ``BufferManager``."""

    def __init__(self, nodes: List[ClusterNode]) -> None:
        self._nodes = nodes

    @property
    def hits(self) -> int:
        return sum(node.memory.hits for node in self._nodes)

    @property
    def misses(self) -> int:
        return sum(node.memory.misses for node in self._nodes)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ClusterLockManager:
    """Global MULTILVL admission + per-node sharded object lock tables.

    Implements the Transaction Manager's locking interface
    (``admission_request``/``admission_release`` commands and the
    ``acquire_all_nowait``/``release_all_nowait`` pair) by partitioning
    the lock set by each object's home node and delegating to the
    node-local :class:`~repro.core.locks.LockManager` tables **strictly
    in node order** — the next partition is not touched until the
    previous one is fully granted, preserving the global acquisition
    order that makes conservative 2PL deadlock-free.
    """

    def __init__(
        self,
        sim: "Simulation",
        config: VOODBConfig,
        nodes: List[ClusterNode],
        home_of,
    ) -> None:
        self.sim = sim
        self.config = config
        self.admission = Resource(sim, "scheduler", capacity=config.multilvl)
        self.admission_request = Request(self.admission)
        self.admission_release = Release(self.admission)
        self._nodes = nodes
        self._home_of = home_of

    # ------------------------------------------------------------------
    # Transaction-side protocol
    # ------------------------------------------------------------------
    def admit(self):
        yield self.admission_request

    def leave(self):
        yield self.admission_release

    def _partition(self, oids: Iterable[int]) -> List[Tuple[int, List[int]]]:
        home_of = self._home_of
        parts: Dict[int, List[int]] = {}
        for oid in set(oids):
            parts.setdefault(home_of(oid), []).append(oid)
        return sorted(parts.items())

    def acquire_all(self, txn_id: int, oids: Iterable[int], writes: set):
        step = self.acquire_all_nowait(txn_id, oids, writes)
        if step is not None:
            yield from step

    def acquire_all_nowait(
        self,
        txn_id: int,
        oids: Iterable[int],
        writes: set,
        presorted: bool = False,
    ):
        # ``presorted`` is accepted for interface parity with the
        # single-node manager; partitioning re-canonicalizes per node
        # either way.
        parts = self._partition(oids)
        for position, (node, part) in enumerate(parts):
            step = self._nodes[node].locks.acquire_all_nowait(
                txn_id, part, writes
            )
            if step is not None:
                return self._acquire_tail(
                    step, txn_id, parts[position + 1 :], writes
                )
        return None

    def _acquire_tail(self, step, txn_id, rest, writes):
        yield from step
        for node, part in rest:
            step = self._nodes[node].locks.acquire_all_nowait(
                txn_id, part, writes
            )
            if step is not None:
                yield from step

    def release_all(self, txn_id: int, oids: Iterable[int]):
        step = self.release_all_nowait(txn_id, oids)
        if step is not None:
            yield from step

    def release_all_nowait(
        self, txn_id: int, oids: Iterable[int], presorted: bool = False
    ):
        steps = []
        for node, part in self._partition(oids):
            step = self._nodes[node].locks.release_all_nowait(txn_id, part)
            if step is not None:
                steps.append(step)
        if not steps:
            return None
        if len(steps) == 1:
            return steps[0]
        return _chain(steps)

    # ------------------------------------------------------------------
    # Aggregate counters (the model's snapshot reads these)
    # ------------------------------------------------------------------
    @property
    def acquisitions(self) -> int:
        return sum(node.locks.acquisitions for node in self._nodes)

    @property
    def releases(self) -> int:
        return sum(node.locks.releases for node in self._nodes)

    @property
    def waits(self) -> int:
        return sum(node.locks.waits for node in self._nodes)

    @property
    def wait_ticks(self) -> int:
        return sum(node.locks.wait_ticks for node in self._nodes)

    @property
    def wait_time_ms(self) -> float:
        return sum(node.locks.wait_time_ms for node in self._nodes)

    @property
    def locked_objects(self) -> int:
        return sum(node.locks.locked_objects for node in self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ClusterLockManager nodes={len(self._nodes)} "
            f"locked={self.locked_objects} mpl={self.config.multilvl}>"
        )


def _chain(steps):
    for step in steps:
        yield from step


class Cluster:
    """The sharded server side: nodes, router, interconnect, counters."""

    def __init__(
        self,
        sim: "Simulation",
        config: VOODBConfig,
        object_manager: "ObjectManager",
    ) -> None:
        topology = config.cluster
        if not topology.enabled:
            raise ValueError("ClusterConfig.servers must be >= 1 for a Cluster")
        self.sim = sim
        self.config = config
        self.object_manager = object_manager
        self.router = ShardRouter(
            topology.servers,
            topology.placement,
            max(1, object_manager.total_pages),
            topology.replication,
            topology.placement_seed,
        )
        self.nodes = [
            ClusterNode(sim, config, index) for index in range(topology.servers)
        ]
        #: the inter-server medium: same half-duplex contention model as
        #: the client network, throttled by ``interconnect_mbps``.
        self.interconnect = Network(
            sim, config.with_changes(netthru=topology.interconnect_mbps)
        )
        self.io = _ClusterIOView(self.nodes)
        self.memory = _ClusterMemoryView(self.nodes)
        self.locks = ClusterLockManager(sim, config, self.nodes, self.home_of)
        self._page_bytes = config.pgsize
        self._message_bytes = config.message_bytes
        self._rr = 0
        self._coordinator_rr = 0
        # Counters
        self.remote_fetches = 0
        self.replica_reads = 0
        self.replica_writes = 0

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def home_of(self, oid: int) -> int:
        """The node owning an object's first page (its home shard)."""
        return self.router.primary(self.object_manager.page_of(oid))

    def next_coordinator(self) -> int:
        """Round-robin coordinator choice (front-end load balancer).

        The object-server organization hands each object request to a
        coordinator node this way; the counter makes the rotation a
        pure function of the access sequence, so replications replay
        exactly.
        """
        index = self._coordinator_rr % len(self.nodes)
        self._coordinator_rr += 1
        return index

    def _serving_node(self, page: int, write: bool, home: Optional[int]) -> int:
        """Pick the node serving one page access, deterministically.

        Writes always apply at the primary.  Reads prefer the home node
        when it holds a replica (object-server locality), otherwise
        balance round-robin across the replica set.
        """
        owners = self.router.replicas(page)
        if write or len(owners) == 1:
            return owners[0]
        if home is not None and home in owners:
            return home
        index = self._rr % len(owners)
        self._rr += 1
        return owners[index]

    # ------------------------------------------------------------------
    # Page service
    # ------------------------------------------------------------------
    def serve_page_nowait(self, page: int, write: bool, home: Optional[int] = None):
        """Serve one page access; ``None`` when no simulated time passes.

        Only valid when the interconnect is free (infinite throughput):
        all messages are booked synchronously and a generator is
        returned only for the disk work of buffer misses.  ``home`` is
        the assembling node (object-server forwarding); ``None`` means
        the client routed the request straight to the serving node
        (page-server smart driver).
        """
        owners = self.router.replicas(page)
        target = self._serving_node(page, write, home)
        node = self.nodes[target]
        node.accesses += 1
        if home is not None and target != home:
            # The home node fetches the page from its owner: one
            # request/response round trip on the interconnect.
            self.remote_fetches += 1
            self.interconnect.transfer_nowait(self._message_bytes)
            self.interconnect.transfer_nowait(self._page_bytes)
        if not write and target != owners[0]:
            self.replica_reads += 1
        outcome = node.memory.access(page, write)
        step = None if outcome.hit else self._node_miss_io(node, outcome)
        if write and len(owners) > 1:
            extra = self._propagate_nowait(page, owners)
            if extra is not None:
                step = extra if step is None else _chain((step, extra))
        return step

    def serve_page(self, page: int, write: bool, home: Optional[int] = None):
        """Timed variant of :meth:`serve_page_nowait` (generator).

        Used when the interconnect has finite throughput, so replica
        and forwarding transfers must pass through the event loop.
        """
        owners = self.router.replicas(page)
        target = self._serving_node(page, write, home)
        node = self.nodes[target]
        node.accesses += 1
        interconnect = self.interconnect
        if home is not None and target != home:
            self.remote_fetches += 1
            step = interconnect.transfer_nowait(self._message_bytes)
            if step is not None:
                yield from step
        if not write and target != owners[0]:
            self.replica_reads += 1
        outcome = node.memory.access(page, write)
        if not outcome.hit:
            yield from self._node_miss_io(node, outcome)
        if home is not None and target != home:
            step = interconnect.transfer_nowait(self._page_bytes)
            if step is not None:
                yield from step
        if write and len(owners) > 1:
            for replica in owners[1:]:
                self.replica_writes += 1
                step = interconnect.transfer_nowait(self._page_bytes)
                if step is not None:
                    yield from step
                yield from self._install_replica(self.nodes[replica], page)

    def _propagate_nowait(self, page: int, owners: Tuple[int, ...]):
        """Ship a written page to the non-primary replicas (free net).

        The replicas install the received image straight into their
        buffers — no disk read — so the only event-loop work is writing
        back the dirty victims the installations evicted.
        """
        steps = None
        for replica in owners[1:]:
            self.replica_writes += 1
            self.interconnect.transfer_nowait(self._page_bytes)
            node = self.nodes[replica]
            outcome = node.memory.access(page, True)
            if not outcome.hit and outcome.writeback_pages:
                if steps is None:
                    steps = []
                steps.append(self._node_writebacks(node, outcome.writeback_pages))
        if steps is None:
            return None
        if len(steps) == 1:
            return steps[0]
        return _chain(steps)

    def _install_replica(self, node: ClusterNode, page: int):
        """Install a replicated page image at ``node`` (timed path)."""
        outcome = node.memory.access(page, True)
        if not outcome.hit and outcome.writeback_pages:
            yield from self._node_writebacks(node, outcome.writeback_pages)

    @staticmethod
    def _node_miss_io(node: ClusterNode, outcome):
        """The disk traffic one buffer miss produced, on the owning node.

        Same inline request/release fast paths as the single-server
        architectures: an uncontended node disk costs one Hold event.
        """
        io = node.io
        disk = io.disk
        for victim in outcome.writeback_pages:
            if not disk.try_acquire_inline():
                yield io._request_disk
            yield io.write_hold(victim)
            if not disk.release_inline():
                yield PARK
        if outcome.read_page is not None:
            if not disk.try_acquire_inline():
                yield io._request_disk
            yield io.read_hold(outcome.read_page)
            if not disk.release_inline():
                yield PARK

    @staticmethod
    def _node_writebacks(node: ClusterNode, victims):
        io = node.io
        disk = io.disk
        for victim in victims:
            if not disk.try_acquire_inline():
                yield io._request_disk
            yield io.write_hold(victim)
            if not disk.release_inline():
                yield PARK

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Cluster servers={len(self.nodes)} "
            f"placement={self.router.placement!r} "
            f"replication={self.router.replication}>"
        )
