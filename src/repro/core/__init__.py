"""core — the VOODB generic discrete-event evaluation model.

The paper's primary contribution: a parameterized, modular simulation
model of an OODBMS (knowledge model of Figure 4, parameters of Table 3),
able to mimic different Client-Server organizations and to host
interchangeable clustering policies.

Modules map one-to-one onto the knowledge model's active resources:

==============================  =========================================
Figure 4 swimlane               module
==============================  =========================================
Users                           :mod:`repro.core.users`
Transaction Manager             :mod:`repro.core.transaction_manager`
Clustering Manager              :mod:`repro.core.clustering_manager`
Object Manager                  :mod:`repro.core.object_manager`
Buffering Manager               :mod:`repro.core.buffering` (+
                                :mod:`repro.core.virtual_memory`,
                                :mod:`repro.core.replacement`,
                                :mod:`repro.core.prefetch`)
I/O Subsystem                   :mod:`repro.core.io_subsystem`
==============================  =========================================

plus the passive resources of Table 1 (:mod:`repro.core.locks`,
:mod:`repro.core.network`) and the system-class strategies of §3.3
(:mod:`repro.core.architectures`).  :mod:`repro.core.model` assembles
them into :class:`VOODBSimulation`.
"""

from repro.core.architectures import (
    Architecture,
    Centralized,
    DBServer,
    ObjectServer,
    PageServer,
    make_architecture,
)
from repro.core.architectures import ClusterObjectServer, ClusterPageServer
from repro.core.buffering import AccessOutcome, BufferManager
from repro.core.cluster import Cluster, ClusterLockManager, ClusterNode, ShardRouter
from repro.core.clustering_manager import ClusteringManager
from repro.core.failures import FailureConfig, FailureInjector, NoFailures
from repro.core.io_subsystem import IOSubsystem
from repro.core.locks import LockManager
from repro.core.model import (
    VOODBSimulation,
    build_database,
    clear_database_cache,
    run_replication,
)
from repro.core.network import Network
from repro.core.object_manager import ObjectManager
from repro.core.parameters import (
    ALLOWED_PAGE_SIZES,
    ALLOWED_PLACEMENTS,
    ArrivalConfig,
    ArrivalMode,
    ClusterConfig,
    MemoryModel,
    SystemClass,
    VOODBConfig,
)
from repro.core.prefetch import (
    ClusterPrefetch,
    NoPrefetch,
    OneAheadPrefetch,
    PrefetchPolicy,
    make_prefetch_policy,
)
from repro.core.replacement import (
    EmptyPolicyError,
    ReplacementPolicy,
    available_policies,
    make_replacement_policy,
)
from repro.core.results import ClusteringReport, PhaseResults, SimulationResults
from repro.core.transaction_manager import TransactionManager
from repro.core.users import Users
from repro.core.virtual_memory import VirtualMemoryManager

__all__ = [
    "VOODBConfig",
    "SystemClass",
    "MemoryModel",
    "ArrivalConfig",
    "ArrivalMode",
    "ALLOWED_PAGE_SIZES",
    "ALLOWED_PLACEMENTS",
    "ClusterConfig",
    "Cluster",
    "ClusterNode",
    "ClusterLockManager",
    "ShardRouter",
    "ClusterPageServer",
    "ClusterObjectServer",
    "VOODBSimulation",
    "run_replication",
    "build_database",
    "clear_database_cache",
    "SimulationResults",
    "PhaseResults",
    "ClusteringReport",
    "Architecture",
    "Centralized",
    "PageServer",
    "ObjectServer",
    "DBServer",
    "make_architecture",
    "BufferManager",
    "AccessOutcome",
    "VirtualMemoryManager",
    "EmptyPolicyError",
    "ReplacementPolicy",
    "make_replacement_policy",
    "available_policies",
    "PrefetchPolicy",
    "NoPrefetch",
    "OneAheadPrefetch",
    "ClusterPrefetch",
    "make_prefetch_policy",
    "IOSubsystem",
    "Network",
    "LockManager",
    "FailureConfig",
    "FailureInjector",
    "NoFailures",
    "ObjectManager",
    "ClusteringManager",
    "TransactionManager",
    "Users",
]
