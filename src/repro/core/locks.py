"""The transaction scheduler: multiprogramming admission + object locks.

Table 1's last passive resource: "Database.  Its concurrent access is
managed by a scheduler that applies a transaction scheduling policy that
depends on the multiprogramming level."  Table 3 contributes MULTILVL
(max concurrent transactions) and the per-lock GETLOCK/RELLOCK times.

Admission is a despy Resource of capacity MULTILVL.  Object locks are
shared/exclusive; because OCB transactions know their full access trace
up front, locks are acquired in sorted-OID order (conservative two-phase
locking), which makes deadlock impossible — a scheduling policy choice,
not a cheat: it is what a validation model wants, since the paper's
experiments never exercise deadlock handling (NUSERS=1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Tuple

from repro.despy.errors import ResourceError
from repro.despy.process import Hold, Release, Request, WaitFor
from repro.despy.resource import Gate, Resource
from repro.despy.timebase import MS_PER_TICK
from repro.core.parameters import VOODBConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.despy.engine import Simulation


class _LockEntry:
    """State of one object's lock: holders + waiters.

    The table stores a full entry only for the *interesting* states —
    multiple shared holders, or queued waiters.  The dominant state (a
    single holder, nobody queued) is encoded as a bare int in the table:
    ``txn_id`` for a shared hold, ``~txn_id`` for an exclusive one.  The
    conservative-2PL sweep then costs one dict store per lock instead of
    an object, a set and a list.
    """

    __slots__ = ("exclusive", "holders", "waiters")

    def __init__(self) -> None:
        self.exclusive = False
        self.holders: set[int] = set()  # transaction ids
        self.waiters: List[Tuple[int, bool, Gate]] = []  # (txn, write, gate)


class LockManager:
    """MULTILVL admission plus shared/exclusive object locking."""

    def __init__(
        self,
        sim: "Simulation",
        config: VOODBConfig,
        with_admission: bool = True,
    ) -> None:
        self.sim = sim
        self.config = config
        if with_admission:
            self.admission = Resource(sim, "scheduler", capacity=config.multilvl)
            #: shared immutable commands for the admission resource, so the
            #: per-transaction enter/leave pair allocates nothing.
            self.admission_request = Request(self.admission)
            self.admission_release = Release(self.admission)
        else:
            # Cluster nodes shard only the object-lock table; admission
            # stays a cluster-global scheduler (ClusterLockManager's),
            # so per-node instances skip the resource entirely.
            self.admission = None
            self.admission_request = None
            self.admission_release = None
        self._table: Dict[int, _LockEntry] = {}
        #: free list of lock entries — a transaction's conservative-2PL
        #: sweep creates and drops one entry (plus its holders set and
        #: waiters list) per distinct object, so recycling them saves
        #: three allocations per lock on the sole-holder fast path.
        self._entry_pool: List[_LockEntry] = []
        # GETLOCK/RELLOCK converted to ticks once (the config is frozen).
        self._getlock_ticks = config.getlock_ticks
        self._rellock_ticks = config.rellock_ticks
        # Counters
        self.acquisitions = 0
        self.releases = 0
        self.waits = 0
        self.wait_ticks = 0

    @property
    def wait_time_ms(self) -> float:
        """Accumulated lock-wait time, reported in milliseconds."""
        return self.wait_ticks * MS_PER_TICK

    # ------------------------------------------------------------------
    # Transaction-side protocol (yield from within processes)
    # ------------------------------------------------------------------
    def admit(self):
        """Enter the multiprogramming mix (may queue)."""
        if self.admission is None:
            raise ResourceError(
                "this lock table has no admission scheduler (cluster nodes "
                "use the cluster-global one)"
            )
        yield self.admission_request

    def leave(self):
        if self.admission is None:
            raise ResourceError(
                "this lock table has no admission scheduler (cluster nodes "
                "use the cluster-global one)"
            )
        yield self.admission_release

    def acquire_all(self, txn_id: int, oids: Iterable[int], writes: set):
        """Acquire locks on every distinct object, sorted (deadlock-free).

        Pays GETLOCK per lock; blocks while any lock conflicts.
        """
        step = self.acquire_all_nowait(txn_id, oids, writes)
        if step is not None:
            yield from step

    def acquire_all_nowait(
        self,
        txn_id: int,
        oids: Iterable[int],
        writes: set,
        presorted: bool = False,
    ):
        """Like :meth:`acquire_all`, but synchronous when possible.

        Returns ``None`` when every lock was granted without paying time
        (GETLOCK = 0) or waiting; otherwise a generator to ``yield from``.

        ``presorted`` promises ``oids`` is already a sorted sequence of
        distinct ids (the Transaction Manager sorts once per transaction
        and shares the list with the release sweep).
        """
        distinct = oids if presorted else sorted(set(oids))
        lock_cost = self._getlock_ticks * len(distinct)
        if lock_cost > 0:
            return self._acquire_timed(txn_id, distinct, writes, lock_cost)
        return self._acquire_sync(txn_id, distinct, writes)

    def _acquire_timed(self, txn_id, distinct, writes, lock_cost):
        yield Hold(lock_cost)
        step = self._acquire_sync(txn_id, distinct, writes)
        if step is not None:
            yield from step

    def _acquire_sync(self, txn_id, distinct, writes):
        """Grant conflict-free locks in place; on the first conflict,
        return a generator finishing the rest (waits included)."""
        table = self._table
        shared = txn_id
        exclusive = ~txn_id
        for index, oid in enumerate(distinct):
            want_write = oid in writes
            entry = table.get(oid)
            if entry is None:
                # Unlocked object (the common case): grant inline with
                # the int-encoded single-holder state.
                table[oid] = exclusive if want_write else shared
                self.acquisitions += 1
                continue
            if self._grant(txn_id, oid, want_write):
                self.acquisitions += 1
                continue
            # A failed _grant mutates nothing, so the tail may simply
            # retry this oid before its first wait.
            return self._acquire_tail(txn_id, distinct, writes, index)
        return None

    def _acquire_tail(self, txn_id, distinct, writes, start):
        table = self._table
        for oid in distinct[start:]:
            want_write = oid in writes
            while not self._grant(txn_id, oid, want_write):
                gate = Gate(self.sim, f"lock-{oid}")
                # Re-fetch: the entry can be dropped and recreated while
                # this transaction waits.  A contender arriving promotes
                # an int-encoded single-holder state to a full entry.
                entry = table[oid]
                if entry.__class__ is int:
                    entry = self._promote(oid, entry)
                entry.waiters.append((txn_id, want_write, gate))
                self.waits += 1
                started = self.sim.now
                yield WaitFor(gate)
                self.wait_ticks += self.sim.now - started
            self.acquisitions += 1

    def release_all(self, txn_id: int, oids: Iterable[int]):
        """Release every lock, paying RELLOCK per lock, waking waiters."""
        step = self.release_all_nowait(txn_id, oids)
        if step is not None:
            yield from step

    def release_all_nowait(
        self, txn_id: int, oids: Iterable[int], presorted: bool = False
    ):
        """Like :meth:`release_all`; ``None`` when RELLOCK costs nothing
        (releasing never blocks, so only the Hold needs the event loop)."""
        distinct = oids if presorted else sorted(set(oids))
        release_cost = self._rellock_ticks * len(distinct)
        if release_cost > 0:
            return self._release_timed(txn_id, distinct, release_cost)
        self._release_sync(txn_id, distinct)
        return None

    def _release_timed(self, txn_id, distinct, release_cost):
        yield Hold(release_cost)
        self._release_sync(txn_id, distinct)

    def _release_sync(self, txn_id, distinct):
        table = self._table
        shared = txn_id
        exclusive = ~txn_id
        for oid in distinct:
            entry = table.get(oid)
            if entry is None:
                continue
            if entry.__class__ is int:
                # Int-encoded single holder (the common case).
                if entry == shared or entry == exclusive:
                    self.releases += 1
                    del table[oid]
                continue
            if txn_id not in entry.holders:
                continue
            if len(entry.holders) == 1 and not entry.waiters:
                # Sole holder, nobody queued: drop the whole entry
                # inline and recycle it.
                self.releases += 1
                del table[oid]
                entry.holders.clear()
                entry.exclusive = False
                self._entry_pool.append(entry)
                continue
            self._release(txn_id, oid)

    # ------------------------------------------------------------------
    # Lock table mechanics
    # ------------------------------------------------------------------
    def _promote(self, oid: int, value: int) -> _LockEntry:
        """Expand an int-encoded single-holder state to a full entry."""
        pool = self._entry_pool
        entry = pool.pop() if pool else _LockEntry()
        if value >= 0:
            entry.holders.add(value)
        else:
            entry.holders.add(~value)
            entry.exclusive = True
        self._table[oid] = entry
        return entry

    def _grant(self, txn_id: int, oid: int, write: bool) -> bool:
        entry = self._table.get(oid)
        if entry is None:
            self._table[oid] = ~txn_id if write else txn_id
            return True
        if entry.__class__ is int:
            holder = entry if entry >= 0 else ~entry
            if holder == txn_id:
                if write and entry >= 0:
                    # Upgrade: sole holder by construction.
                    self._table[oid] = ~txn_id
                return True
            if entry < 0 or write:
                return False
            # A second shared holder: promote to a full entry.
            promoted = self._promote(oid, entry)
            promoted.holders.add(txn_id)
            return True
        if txn_id in entry.holders:
            # Lock upgrade: allowed only if sole holder.
            if write and not entry.exclusive:
                if entry.holders == {txn_id}:
                    entry.exclusive = True
                    return True
                return False
            return True
        if not entry.holders:
            entry.holders.add(txn_id)
            entry.exclusive = write
            return True
        if entry.exclusive or write:
            return False
        entry.holders.add(txn_id)
        return True

    def _release(self, txn_id: int, oid: int) -> None:
        entry = self._table.get(oid)
        if entry is None:
            return
        if entry.__class__ is int:
            if entry == txn_id or entry == ~txn_id:
                self.releases += 1
                del self._table[oid]
            return
        if txn_id not in entry.holders:
            return
        entry.holders.discard(txn_id)
        self.releases += 1
        if entry.holders:
            return
        entry.exclusive = False
        # Wake every waiter; each re-checks its grant on resume.  Waking
        # all (rather than the head) keeps the policy simple and live.
        waiters, entry.waiters = entry.waiters, []
        if not waiters:
            del self._table[oid]
            self._entry_pool.append(entry)
            return
        for __, __, gate in waiters:
            gate.open()

    # ------------------------------------------------------------------
    @property
    def locked_objects(self) -> int:
        return len(self._table)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LockManager locked={self.locked_objects} "
            f"waits={self.waits} mpl={self.config.multilvl}>"
        )
