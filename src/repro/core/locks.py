"""The transaction scheduler: multiprogramming admission + object locks.

Table 1's last passive resource: "Database.  Its concurrent access is
managed by a scheduler that applies a transaction scheduling policy that
depends on the multiprogramming level."  Table 3 contributes MULTILVL
(max concurrent transactions) and the per-lock GETLOCK/RELLOCK times.

Admission is a despy Resource of capacity MULTILVL.  Object locks are
shared/exclusive; because OCB transactions know their full access trace
up front, locks are acquired in sorted-OID order (conservative two-phase
locking), which makes deadlock impossible — a scheduling policy choice,
not a cheat: it is what a validation model wants, since the paper's
experiments never exercise deadlock handling (NUSERS=1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Tuple

from repro.despy.process import Hold, Release, Request, WaitFor
from repro.despy.resource import Gate, Resource
from repro.core.parameters import VOODBConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.despy.engine import Simulation


class _LockEntry:
    """State of one object's lock: holders + waiters."""

    __slots__ = ("exclusive", "holders", "waiters")

    def __init__(self) -> None:
        self.exclusive = False
        self.holders: set[int] = set()  # transaction ids
        self.waiters: List[Tuple[int, bool, Gate]] = []  # (txn, write, gate)


class LockManager:
    """MULTILVL admission plus shared/exclusive object locking."""

    def __init__(self, sim: "Simulation", config: VOODBConfig) -> None:
        self.sim = sim
        self.config = config
        self.admission = Resource(sim, "scheduler", capacity=config.multilvl)
        self._table: Dict[int, _LockEntry] = {}
        # Counters
        self.acquisitions = 0
        self.releases = 0
        self.waits = 0
        self.wait_time_ms = 0.0

    # ------------------------------------------------------------------
    # Transaction-side protocol (yield from within processes)
    # ------------------------------------------------------------------
    def admit(self):
        """Enter the multiprogramming mix (may queue)."""
        yield Request(self.admission)

    def leave(self):
        yield Release(self.admission)

    def acquire_all(self, txn_id: int, oids: Iterable[int], writes: set):
        """Acquire locks on every distinct object, sorted (deadlock-free).

        Pays GETLOCK per lock; blocks while any lock conflicts.
        """
        distinct = sorted(set(oids))
        lock_cost = self.config.getlock * len(distinct)
        if lock_cost > 0:
            yield Hold(lock_cost)
        for oid in distinct:
            want_write = oid in writes
            while not self._grant(txn_id, oid, want_write):
                gate = Gate(self.sim, f"lock-{oid}")
                self._table[oid].waiters.append((txn_id, want_write, gate))
                self.waits += 1
                started = self.sim.now
                yield WaitFor(gate)
                self.wait_time_ms += self.sim.now - started
            self.acquisitions += 1

    def release_all(self, txn_id: int, oids: Iterable[int]):
        """Release every lock, paying RELLOCK per lock, waking waiters."""
        distinct = sorted(set(oids))
        release_cost = self.config.rellock * len(distinct)
        if release_cost > 0:
            yield Hold(release_cost)
        for oid in distinct:
            self._release(txn_id, oid)

    # ------------------------------------------------------------------
    # Lock table mechanics
    # ------------------------------------------------------------------
    def _grant(self, txn_id: int, oid: int, write: bool) -> bool:
        entry = self._table.get(oid)
        if entry is None:
            entry = self._table[oid] = _LockEntry()
        if txn_id in entry.holders:
            # Lock upgrade: allowed only if sole holder.
            if write and not entry.exclusive:
                if entry.holders == {txn_id}:
                    entry.exclusive = True
                    return True
                return False
            return True
        if not entry.holders:
            entry.holders.add(txn_id)
            entry.exclusive = write
            return True
        if entry.exclusive or write:
            return False
        entry.holders.add(txn_id)
        return True

    def _release(self, txn_id: int, oid: int) -> None:
        entry = self._table.get(oid)
        if entry is None or txn_id not in entry.holders:
            return
        entry.holders.discard(txn_id)
        self.releases += 1
        if entry.holders:
            return
        entry.exclusive = False
        # Wake every waiter; each re-checks its grant on resume.  Waking
        # all (rather than the head) keeps the policy simple and live.
        waiters, entry.waiters = entry.waiters, []
        if not waiters:
            del self._table[oid]
            return
        for __, __, gate in waiters:
            gate.open()

    # ------------------------------------------------------------------
    @property
    def locked_objects(self) -> int:
        return len(self._table)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LockManager locked={self.locked_objects} "
            f"waits={self.waits} mpl={self.config.multilvl}>"
        )
