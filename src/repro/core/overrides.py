"""Eager validation of configuration override keys.

Every config object in the model is a frozen dataclass derived with
``with_changes(**overrides)``.  ``dataclasses.replace`` already rejects
unknown field names, but with a bare ``TypeError`` deep in the stdlib
that names neither the config class nor a likely correction.  A
misspelled override in a scenario file or an experiment script should
fail *eagerly* with a message that says which key is wrong, on which
config, and what was probably meant.

:func:`checked_replace` is that front door: every ``with_changes`` and
the scenario-file loader route their overrides through it.
"""

from __future__ import annotations

import difflib
from dataclasses import fields, replace
from typing import Any, Mapping, Optional, Tuple


def valid_override_keys(obj: Any) -> Tuple[str, ...]:
    """The field names ``obj`` (a dataclass instance) accepts, sorted."""
    return tuple(sorted(f.name for f in fields(obj) if f.init))


def suggest_key(key: str, valid: Tuple[str, ...]) -> Optional[str]:
    """Closest valid field name to a misspelled ``key`` (None = no idea)."""
    matches = difflib.get_close_matches(key, valid, n=1, cutoff=0.6)
    return matches[0] if matches else None


def unknown_key_error(
    obj: Any, key: str, label: Optional[str] = None
) -> ValueError:
    """The error a misspelled override raises — names the key, the
    config it missed, the closest valid field and the full menu."""
    valid = valid_override_keys(obj)
    target = label or type(obj).__name__
    hint = suggest_key(key, valid)
    did_you_mean = f" (did you mean {hint!r}?)" if hint else ""
    return ValueError(
        f"unknown {target} field {key!r}{did_you_mean}; "
        f"valid fields: {', '.join(valid)}"
    )


def checked_replace(obj: Any, changes: Mapping[str, Any], label: Optional[str] = None):
    """``dataclasses.replace`` with eager, named unknown-key errors.

    ``label`` overrides the config class name in the message (the
    scenario loader passes the file-relative key path instead).
    """
    valid = set(valid_override_keys(obj))
    for key in changes:
        if key not in valid:
            raise unknown_key_error(obj, key, label=label)
    return replace(obj, **changes)
