"""Random hazards: benign and serious system failures (paper §5).

"VOODB could also take into account random hazards, like benign or
serious system failures, in order to observe how the studied OODB
behaves and recovers in critical conditions.  Such features could be
included in VOODB as new modules."  This is that module.

Two hazard classes, both Poisson processes in simulated time:

* **benign failures** — transient I/O faults (a bad sector, a
  controller hiccup): the affected disk operation is retried, paying
  ``transient_penalty_ms`` extra;
* **serious failures** — system crashes: every buffer frame is lost
  and the system is down for ``recovery_time_ms`` (log-replay style
  recovery) before the interrupted I/O completes; the workload resumes
  against a cold cache.

Hazards are sampled by *thinning on observation instants* rather than
by standing timer events (so workload phases still drain naturally):
transient faults are probed per disk operation
(:meth:`FailureInjector.io_penalty`), crashes per transaction boundary
(:meth:`FailureInjector.crash_check` — a warm-cache system that never
touches the disk still crashes).  Faults falling in an unobserved
window are folded into the next probe, which is when they would first
be noticed anyway.

Both hazards are disabled by default — the paper's validation
experiments ran on healthy systems; the failure ablation bench and
`examples` turn them on.

PR 10 grows this module into the full fault-model subsystem: beyond
the fail-stop hazards above, :class:`FaultConfig` describes *network
partitions* (interconnect link cuts between node groups, with heal
times) and *gray failures* (a degraded mode multiplying a node's
disk/interconnect service times instead of killing it), plus the
election delay and anti-entropy repair cadence of the recovery
machinery, and :class:`RetryConfig` the timeout/retry/backoff contract
every remote operation honours.  The cluster samples these on the same
thinning-on-observation-instants discipline, from per-node /
per-link seeded streams (``partitions``, ``gray-{i}``, ``retry-{i}``),
so every fault history is a pure function of the master seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

from repro.despy.randomstream import RandomStream
from repro.despy.timebase import MS_PER_TICK, ms_to_ticks

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.despy.engine import Simulation


@dataclass(frozen=True)
class FailureConfig:
    """Hazard parameters (all disabled at their defaults)."""

    #: Mean simulated ms between transient I/O faults (0 = never).
    transient_mtbf_ms: float = 0.0
    #: Extra service time one transient fault costs (retry + repositioning).
    transient_penalty_ms: float = 25.0
    #: Mean simulated ms between system crashes (0 = never).
    crash_mtbf_ms: float = 0.0
    #: Downtime per crash (recovery: log replay, cache rebuild...).
    recovery_time_ms: float = 5_000.0

    def __post_init__(self) -> None:
        _check_rate("transient_mtbf_ms", self.transient_mtbf_ms)
        _check_rate("crash_mtbf_ms", self.crash_mtbf_ms)
        _check_duration("transient_penalty_ms", self.transient_penalty_ms)
        _check_duration("recovery_time_ms", self.recovery_time_ms)

    @property
    def enabled(self) -> bool:
        return self.transient_mtbf_ms > 0 or self.crash_mtbf_ms > 0


def _check_rate(name: str, value: float) -> None:
    """An MTBF/interval knob: 0 disables, otherwise finite and > 0."""
    if not isinstance(value, (int, float)) or not math.isfinite(value):
        raise ValueError(
            f"{name} must be a finite number, got {value!r} "
            f"(0 disables, a positive mean enables)"
        )
    if value < 0:
        raise ValueError(f"{name} must be >= 0 (0 disables), got {value!r}")


def _check_duration(
    name: str, value: float, minimum: float = 0.0
) -> None:
    """A duration knob: finite and >= ``minimum``."""
    if not isinstance(value, (int, float)) or not math.isfinite(value):
        raise ValueError(f"{name} must be a finite number, got {value!r}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum:g}, got {value!r}")


@dataclass(frozen=True)
class RetryConfig:
    """The timeout/retry/backoff contract on remote operations.

    Every remote operation between cluster nodes — quorum-read
    consultations, replica ships, coordinator fetches — honours this
    contract when the fault layer is active: wait ``timeout_ms`` for
    the peer, back off exponentially (with deterministic jitter drawn
    from the *initiating* node's retry stream), and abandon the peer
    after ``max_retries`` retries instead of blocking forever.
    """

    #: How long one attempt waits before declaring the peer unresponsive.
    timeout_ms: float = 50.0
    #: Retries after the first attempt (total attempts = max_retries + 1).
    max_retries: int = 2
    #: Backoff before the first retry.
    backoff_base_ms: float = 5.0
    #: Multiplier applied to the backoff per further retry.
    backoff_multiplier: float = 2.0
    #: Jitter fraction: each backoff is scaled by 1 + jitter * U[0, 1).
    jitter: float = 0.25

    def __post_init__(self) -> None:
        _check_duration("timeout_ms", self.timeout_ms)
        if self.timeout_ms <= 0:
            raise ValueError(
                f"timeout_ms must be > 0, got {self.timeout_ms!r} "
                f"(a zero timeout would declare every peer dead)"
            )
        if not isinstance(self.max_retries, int) or self.max_retries < 0:
            raise ValueError(
                f"max_retries must be an int >= 0, got {self.max_retries!r}"
            )
        _check_duration("backoff_base_ms", self.backoff_base_ms)
        if self.backoff_base_ms <= 0:
            raise ValueError(
                f"backoff_base_ms must be > 0, got {self.backoff_base_ms!r}"
            )
        _check_duration("backoff_multiplier", self.backoff_multiplier, 1.0)
        if (
            not isinstance(self.jitter, (int, float))
            or not math.isfinite(self.jitter)
            or not 0 <= self.jitter < 1
        ):
            raise ValueError(
                f"jitter must be in [0, 1), got {self.jitter!r}"
            )


@dataclass(frozen=True)
class FaultConfig:
    """The degraded-mode fault kinds and recovery machinery (PR 10).

    All disabled at the defaults; any of ``partition_mtbf_ms``,
    ``gray_mtbf_ms`` or ``repair_interval_ms`` > 0 switches the
    cluster onto the fault-tolerant serve path (elections, retry
    contract, anti-entropy) — see :attr:`enabled`.
    """

    #: Mean simulated ms between interconnect partitions (0 = never).
    partition_mtbf_ms: float = 0.0
    #: How long one partition lasts before the links heal.
    partition_heal_ms: float = 500.0
    #: Node groups a partition separates; () = bisect the cluster.
    partition_groups: Tuple[Tuple[int, ...], ...] = ()
    #: Mean simulated ms between gray episodes per node (0 = never).
    gray_mtbf_ms: float = 0.0
    #: How long one gray episode degrades a node.
    gray_heal_ms: float = 1_000.0
    #: Service-time multiplier a gray node suffers (disk + interconnect).
    gray_slowdown: float = 4.0
    #: Time a primary re-election takes before writes redirect.
    election_delay_ms: float = 50.0
    #: Anti-entropy repair cadence per node (0 = never).
    repair_interval_ms: float = 0.0

    def __post_init__(self) -> None:
        # YAML hands nested sequences as lists; normalise to tuples so
        # configs stay hashable and comparable.
        groups = tuple(tuple(group) for group in self.partition_groups)
        object.__setattr__(self, "partition_groups", groups)
        _check_rate("partition_mtbf_ms", self.partition_mtbf_ms)
        _check_rate("gray_mtbf_ms", self.gray_mtbf_ms)
        _check_rate("repair_interval_ms", self.repair_interval_ms)
        _check_duration("partition_heal_ms", self.partition_heal_ms)
        if self.partition_heal_ms <= 0:
            raise ValueError(
                f"partition_heal_ms must be > 0, "
                f"got {self.partition_heal_ms!r}"
            )
        _check_duration("gray_heal_ms", self.gray_heal_ms)
        if self.gray_heal_ms <= 0:
            raise ValueError(
                f"gray_heal_ms must be > 0, got {self.gray_heal_ms!r}"
            )
        _check_duration("gray_slowdown", self.gray_slowdown, 1.0)
        _check_duration("election_delay_ms", self.election_delay_ms)
        if groups:
            if self.partition_mtbf_ms <= 0:
                raise ValueError(
                    "partition_groups without partitions is inert "
                    "(did you mean to set partition_mtbf_ms > 0?)"
                )
            if len(groups) < 2:
                raise ValueError(
                    f"partition_groups needs >= 2 groups to cut links "
                    f"between, got {len(groups)}"
                )
            seen = set()
            for group in groups:
                if not group:
                    raise ValueError(
                        "partition_groups must not contain empty groups"
                    )
                for member in group:
                    if not isinstance(member, int) or member < 0:
                        raise ValueError(
                            f"partition group members must be node "
                            f"indices >= 0, got {member!r}"
                        )
                    if member in seen:
                        raise ValueError(
                            f"partition groups must be disjoint node "
                            f"subsets: node {member} appears twice"
                        )
                    seen.add(member)

    @property
    def enabled(self) -> bool:
        return (
            self.partition_mtbf_ms > 0
            or self.gray_mtbf_ms > 0
            or self.repair_interval_ms > 0
        )


class RetryPolicy:
    """:class:`RetryConfig` converted to ticks once, with the backoff
    ladder drawn deterministically from a caller-supplied stream."""

    __slots__ = ("config", "timeout", "max_retries", "_base", "_mult", "_jitter")

    def __init__(self, config: RetryConfig) -> None:
        self.config = config
        self.timeout = ms_to_ticks(config.timeout_ms)
        self.max_retries = config.max_retries
        self._base = ms_to_ticks(config.backoff_base_ms)
        self._mult = config.backoff_multiplier
        self._jitter = config.jitter

    def backoff_ticks(self, attempt: int, rng: RandomStream) -> int:
        """Backoff before retry ``attempt`` (0-based), >= 1 tick.

        The jitter draw comes from ``rng`` — the initiating node's
        retry stream — so backoff ladders are independent per node but
        a pure function of the master seed.
        """
        raw = self._base * (self._mult ** attempt)
        if self._jitter:
            raw *= 1.0 + self._jitter * rng.random()
        return max(1, int(raw))


class FailureInjector:
    """Draws hazards and charges them to the I/O subsystem.

    ``stream_label`` names the hazard random stream — the single-server
    assembly uses the default ``"failures"``; cluster nodes pass
    node-indexed labels so every node draws an independent (but still
    seed-deterministic) hazard history.
    """

    def __init__(
        self,
        sim: "Simulation",
        config: FailureConfig,
        memory,
        stream_label: str = "failures",
    ) -> None:
        self.sim = sim
        self.config = config
        self.memory = memory
        self._rng: RandomStream = sim.stream(stream_label)
        # Hazard parameters converted to ticks once; the per-operation
        # probes then stay in pure integer arithmetic.
        self._transient_mtbf = ms_to_ticks(config.transient_mtbf_ms)
        self._transient_penalty = ms_to_ticks(config.transient_penalty_ms)
        self._crash_mtbf = ms_to_ticks(config.crash_mtbf_ms)
        self._recovery_time = ms_to_ticks(config.recovery_time_ms)
        self._last_transient_check = 0
        self._last_crash_check = 0
        # Counters
        self.transient_faults = 0
        self.crashes = 0
        self.downtime_ticks = 0
        self.frames_lost = 0

    @property
    def downtime_ms(self) -> float:
        return self.downtime_ticks * MS_PER_TICK

    def io_penalty(self) -> int:
        """Extra service ticks the next disk operation owes to transient
        faults (benign hazards live at the I/O level)."""
        if self._transient_mtbf <= 0:
            return 0
        if self._draws_fault(
            self.sim.now, "_last_transient_check", self._transient_mtbf
        ):
            self.transient_faults += 1
            return self._transient_penalty
        return 0

    def crash_check(self) -> int:
        """Crash probe at a transaction boundary.

        Serious hazards are checked per transaction (they strike whether
        or not the workload happens to be touching the disk — a
        warm-cache system still crashes).  If a crash landed since the
        last check, the buffer is emptied here and the returned recovery
        downtime (ticks) must be held by the caller.
        """
        if self._crash_mtbf <= 0:
            return 0
        if self._draws_fault(
            self.sim.now, "_last_crash_check", self._crash_mtbf
        ):
            self.crashes += 1
            self.frames_lost += self.memory.invalidate_all()
            self.downtime_ticks += self._recovery_time
            # Recovery downtime is not hazard exposure: push both hazard
            # clocks past the window, so the next probe measures elapsed
            # *up* time only and a second crash cannot be drawn from time
            # the system spent recovering.
            resume = self.sim.now + self._recovery_time
            self._last_crash_check = resume
            if self._last_transient_check < resume:
                self._last_transient_check = resume
            return self._recovery_time
        return 0

    def _draws_fault(self, now: int, marker: str, mtbf: int) -> bool:
        """Poisson thinning: did >= 1 fault land since the last check?

        Multiple faults in one window fold into one (a controller retries
        once; a second crash during recovery is absorbed by it).  The
        marker never moves backwards: probes landing inside a recovery
        window (concurrent transactions run while one holds the
        recovery) see non-positive exposure and draw nothing.
        """
        last = getattr(self, marker)
        if now > last:
            setattr(self, marker, now)
        elapsed = now - last
        if elapsed <= 0:
            return False
        probability = 1.0 - math.exp(-elapsed / mtbf)
        return self._rng.bernoulli(probability)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FailureInjector transients={self.transient_faults} "
            f"crashes={self.crashes}>"
        )


class NoFailures:
    """Null injector used when hazards are disabled (zero overhead)."""

    transient_faults = 0
    crashes = 0
    downtime_ticks = 0
    downtime_ms = 0.0
    frames_lost = 0

    @staticmethod
    def io_penalty() -> int:
        return 0

    @staticmethod
    def crash_check() -> int:
        return 0
