"""Random hazards: benign and serious system failures (paper §5).

"VOODB could also take into account random hazards, like benign or
serious system failures, in order to observe how the studied OODB
behaves and recovers in critical conditions.  Such features could be
included in VOODB as new modules."  This is that module.

Two hazard classes, both Poisson processes in simulated time:

* **benign failures** — transient I/O faults (a bad sector, a
  controller hiccup): the affected disk operation is retried, paying
  ``transient_penalty_ms`` extra;
* **serious failures** — system crashes: every buffer frame is lost
  and the system is down for ``recovery_time_ms`` (log-replay style
  recovery) before the interrupted I/O completes; the workload resumes
  against a cold cache.

Hazards are sampled by *thinning on observation instants* rather than
by standing timer events (so workload phases still drain naturally):
transient faults are probed per disk operation
(:meth:`FailureInjector.io_penalty`), crashes per transaction boundary
(:meth:`FailureInjector.crash_check` — a warm-cache system that never
touches the disk still crashes).  Faults falling in an unobserved
window are folded into the next probe, which is when they would first
be noticed anyway.

Both hazards are disabled by default — the paper's validation
experiments ran on healthy systems; the failure ablation bench and
`examples` turn them on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.despy.randomstream import RandomStream
from repro.despy.timebase import MS_PER_TICK, ms_to_ticks

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.despy.engine import Simulation


@dataclass(frozen=True)
class FailureConfig:
    """Hazard parameters (all disabled at their defaults)."""

    #: Mean simulated ms between transient I/O faults (0 = never).
    transient_mtbf_ms: float = 0.0
    #: Extra service time one transient fault costs (retry + repositioning).
    transient_penalty_ms: float = 25.0
    #: Mean simulated ms between system crashes (0 = never).
    crash_mtbf_ms: float = 0.0
    #: Downtime per crash (recovery: log replay, cache rebuild...).
    recovery_time_ms: float = 5_000.0

    def __post_init__(self) -> None:
        if self.transient_mtbf_ms < 0 or self.crash_mtbf_ms < 0:
            raise ValueError("MTBF values must be >= 0 (0 disables)")
        if self.transient_penalty_ms < 0 or self.recovery_time_ms < 0:
            raise ValueError("penalty/recovery times must be >= 0")

    @property
    def enabled(self) -> bool:
        return self.transient_mtbf_ms > 0 or self.crash_mtbf_ms > 0


class FailureInjector:
    """Draws hazards and charges them to the I/O subsystem.

    ``stream_label`` names the hazard random stream — the single-server
    assembly uses the default ``"failures"``; cluster nodes pass
    node-indexed labels so every node draws an independent (but still
    seed-deterministic) hazard history.
    """

    def __init__(
        self,
        sim: "Simulation",
        config: FailureConfig,
        memory,
        stream_label: str = "failures",
    ) -> None:
        self.sim = sim
        self.config = config
        self.memory = memory
        self._rng: RandomStream = sim.stream(stream_label)
        # Hazard parameters converted to ticks once; the per-operation
        # probes then stay in pure integer arithmetic.
        self._transient_mtbf = ms_to_ticks(config.transient_mtbf_ms)
        self._transient_penalty = ms_to_ticks(config.transient_penalty_ms)
        self._crash_mtbf = ms_to_ticks(config.crash_mtbf_ms)
        self._recovery_time = ms_to_ticks(config.recovery_time_ms)
        self._last_transient_check = 0
        self._last_crash_check = 0
        # Counters
        self.transient_faults = 0
        self.crashes = 0
        self.downtime_ticks = 0
        self.frames_lost = 0

    @property
    def downtime_ms(self) -> float:
        return self.downtime_ticks * MS_PER_TICK

    def io_penalty(self) -> int:
        """Extra service ticks the next disk operation owes to transient
        faults (benign hazards live at the I/O level)."""
        if self._transient_mtbf <= 0:
            return 0
        if self._draws_fault(
            self.sim.now, "_last_transient_check", self._transient_mtbf
        ):
            self.transient_faults += 1
            return self._transient_penalty
        return 0

    def crash_check(self) -> int:
        """Crash probe at a transaction boundary.

        Serious hazards are checked per transaction (they strike whether
        or not the workload happens to be touching the disk — a
        warm-cache system still crashes).  If a crash landed since the
        last check, the buffer is emptied here and the returned recovery
        downtime (ticks) must be held by the caller.
        """
        if self._crash_mtbf <= 0:
            return 0
        if self._draws_fault(
            self.sim.now, "_last_crash_check", self._crash_mtbf
        ):
            self.crashes += 1
            self.frames_lost += self.memory.invalidate_all()
            self.downtime_ticks += self._recovery_time
            # Recovery downtime is not hazard exposure: push both hazard
            # clocks past the window, so the next probe measures elapsed
            # *up* time only and a second crash cannot be drawn from time
            # the system spent recovering.
            resume = self.sim.now + self._recovery_time
            self._last_crash_check = resume
            if self._last_transient_check < resume:
                self._last_transient_check = resume
            return self._recovery_time
        return 0

    def _draws_fault(self, now: int, marker: str, mtbf: int) -> bool:
        """Poisson thinning: did >= 1 fault land since the last check?

        Multiple faults in one window fold into one (a controller retries
        once; a second crash during recovery is absorbed by it).  The
        marker never moves backwards: probes landing inside a recovery
        window (concurrent transactions run while one holds the
        recovery) see non-positive exposure and draw nothing.
        """
        last = getattr(self, marker)
        if now > last:
            setattr(self, marker, now)
        elapsed = now - last
        if elapsed <= 0:
            return False
        probability = 1.0 - math.exp(-elapsed / mtbf)
        return self._rng.bernoulli(probability)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FailureInjector transients={self.transient_faults} "
            f"crashes={self.crashes}>"
        )


class NoFailures:
    """Null injector used when hazards are disabled (zero overhead)."""

    transient_faults = 0
    crashes = 0
    downtime_ticks = 0
    downtime_ms = 0.0
    frames_lost = 0

    @staticmethod
    def io_penalty() -> int:
        return 0

    @staticmethod
    def crash_check() -> int:
        return 0
