"""The OS virtual-memory model behind Texas (paper §4.3.2).

Texas is a *persistent store*: it maps the database into the process
address space and relies on the operating system's paging.  When a page
is faulted in, Texas swizzles the pointers it contains — which **reserves
memory for the referenced pages before they are actually loaded**.  The
paper attributes Figure 11's exponential degradation to exactly this:

    "This degradation is due to Texas' object loading policy, which
    provokes the reservation in memory of numerous pages even before
    they are actually loaded.  This process is clearly exponential and
    generates a costly swap..."

This module models that mechanism:

* every frame is either **resident** (holds loaded, swizzled data) or
  **reserved** (address space claimed by swizzling, no data yet);
* accessing an unseen page costs a **database read** and reserves frames
  for the pages its objects reference (the cascade);
* swizzled pages are dirty anonymous memory, so evicting a resident page
  costs a **swap write**, and touching it again later costs a **swap
  read** — this is the thrash that dwarfs regular I/O once available
  memory drops below the footprint;
* reserved frames are demand-allocated anonymous memory too (Linux
  2.0-era): evicting one also swaps it out, and touching it later costs
  a swap-in *plus* the database read it never performed — the paper's
  "costly swap [...] as important a hindrance as the main memory is
  small".

When memory exceeds the database-plus-reservations footprint none of
this fires and the model behaves like a plain buffer — which is why
Texas is *faster* than O2 at equal memory in Figures 9/10 but collapses
harder in Figure 11.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence

from repro.despy.randomstream import RandomStream
from repro.core.buffering import AccessOutcome
from repro.core.parameters import VOODBConfig
from repro.core.replacement import make_replacement_policy

#: Frame states.
_RESIDENT = 0
_RESERVED = 1

#: Shared "no pages swapped" result — returned whenever an operation
#: freed or reserved nothing, which under ample memory is every
#: operation.  A tuple, so accidental mutation fails loudly.
_NO_SWAPS: Sequence[int] = ()


class VMAccessOutcome(AccessOutcome):
    """Adds swap traffic to the buffer outcome contract."""

    def __init__(
        self,
        hit: bool,
        read_page=None,
        writeback_pages=None,
        swap_read: bool = False,
        swap_out_pages: Sequence[int] | None = None,
    ) -> None:
        # Direct assignment instead of chaining the dataclass __init__:
        # outcomes are allocated once per page fault, which under swap
        # thrash (Figure 11) is the model's hottest allocation site.
        self.hit = hit
        self.read_page = read_page
        self.writeback_pages = writeback_pages if writeback_pages is not None else ()
        self.swap_read = swap_read
        self.swap_out_pages = swap_out_pages if swap_out_pages is not None else ()


#: Shared "page was resident and swizzled" outcome, mirroring the plain
#: buffer's hit singleton — hits dominate once memory fits the footprint.
_VM_HIT = VMAccessOutcome(hit=True)


class VirtualMemoryManager:
    """Texas-style memory: frames + reservations + swap.

    Parameters
    ----------
    pages_referenced_by_page:
        Callback mapping a page to the pages referenced by the objects it
        holds — the swizzling cascade.  Texas swizzles at **page-fault
        time**: the moment a page comes in, every pointer on it is
        translated, reserving address space for every referenced page.
        Supplied by the Object Manager so this module stays
        placement-agnostic.
    """

    __slots__ = (
        "config",
        "capacity",
        "policy",
        "_on_hit",
        "_on_admit",
        "_choose_victim",
        "_pages_referenced_by_page",
        "_frames",
        "_swapped_resident",
        "_swapped_reserved",
        "hits",
        "misses",
        "swap_ins",
        "swap_outs",
        "reservations",
        "discarded_reservations",
    )

    def __init__(
        self,
        config: VOODBConfig,
        rng: RandomStream,
        pages_referenced_by_page: Callable[[int], Iterable[int]],
        capacity: int | None = None,
    ) -> None:
        self.config = config
        self.capacity = capacity if capacity is not None else config.buffsize
        if self.capacity < 1:
            raise ValueError(f"memory capacity must be >= 1, got {self.capacity}")
        self.policy = make_replacement_policy(config.pgrep, rng)
        # Bound once, like BufferManager: the hooks run per page fault.
        self._on_hit = self.policy.on_hit
        self._on_admit = self.policy.on_admit
        self._choose_victim = self.policy.choose_victim
        self._pages_referenced_by_page = pages_referenced_by_page
        #: in-memory frames: page -> _RESIDENT | _RESERVED
        self._frames: Dict[int, int] = {}
        #: evicted resident pages whose data image lives in swap
        self._swapped_resident: set[int] = set()
        #: evicted reserved pages (swapped out before ever holding data)
        self._swapped_reserved: set[int] = set()
        # Counters
        self.hits = 0
        self.misses = 0
        self.swap_ins = 0
        self.swap_outs = 0
        self.reservations = 0

    # ------------------------------------------------------------------
    # Core protocol (same shape as BufferManager.access)
    # ------------------------------------------------------------------
    def access(self, page: int, write: bool = False) -> VMAccessOutcome:
        frames = self._frames
        state = frames.get(page)
        if state == _RESIDENT:
            self.hits += 1
            self._on_hit(page)
            return _VM_HIT
        self.misses += 1
        if state == _RESERVED:
            # Reserved by a swizzle: the frame exists, the data does not.
            # Loading the data swizzles *this* page's pointers in turn.
            frames[page] = _RESIDENT
            self._on_hit(page)
            swap_outs = self._swizzle(page)
            return VMAccessOutcome(
                hit=False, read_page=page, swap_out_pages=swap_outs
            )
        if page in self._swapped_resident:
            # Was resident once; its dirty image must come back from swap.
            self._swapped_resident.discard(page)
            self.swap_ins += 1
            swap_outs = self._make_room()
            frames[page] = _RESIDENT
            self._on_admit(page)
            return VMAccessOutcome(
                hit=False, swap_read=True, swap_out_pages=swap_outs
            )
        if page in self._swapped_reserved:
            # A reservation that was swapped out before ever being filled:
            # swap it back in *and* perform the database read it owed.
            self._swapped_reserved.discard(page)
            self.swap_ins += 1
            swap_outs = self._make_room()
            frames[page] = _RESIDENT
            self._on_admit(page)
            swizzled = self._swizzle(page)
            if swizzled:
                swap_outs = swap_outs + swizzled if swap_outs else swizzled
            return VMAccessOutcome(
                hit=False,
                read_page=page,
                swap_read=True,
                swap_out_pages=swap_outs,
            )
        # First touch ever: claim a frame, read from the database, and
        # swizzle the fresh page's pointers (the §4.3.2 cascade).
        swap_outs = self._make_room()
        frames[page] = _RESIDENT
        self._on_admit(page)
        swizzled = self._swizzle(page)
        if swizzled:
            swap_outs = swap_outs + swizzled if swap_outs else swizzled
        return VMAccessOutcome(
            hit=False, read_page=page, swap_out_pages=swap_outs
        )

    def note_object_access(self, oid: int) -> Sequence[int]:
        """Object-level hook of the memory interface: nothing to do here —
        Texas swizzles per faulted *page*, inside :meth:`access`."""
        return ()

    def _swizzle(self, page: int) -> Sequence[int]:
        """Pointer-swizzle a freshly loaded page: reserve frames for every
        page its objects reference.  Returns pages swapped out to make
        room (the caller owes one swap write each)."""
        swap_outs: List[int] | None = None
        frames = self._frames
        for target in self._pages_referenced_by_page(page):
            if (
                target in frames
                or target in self._swapped_resident
                or target in self._swapped_reserved
            ):
                continue
            room = self._make_room(protect=page)
            if room is None:
                # No frame can be freed without evicting the page being
                # swizzled itself; the OS would simply fail the eager
                # reservation and fault the target later.
                break
            if room:
                # room is a fresh list (the shared empty is falsy), so
                # the first one can be adopted outright.
                if swap_outs is None:
                    swap_outs = room
                else:
                    swap_outs.extend(room)
            frames[target] = _RESERVED
            self._on_admit(target)
            self.reservations += 1
        return swap_outs if swap_outs is not None else _NO_SWAPS

    def _make_room(self, protect: int | None = None) -> Sequence[int] | None:
        """Free one frame if full; victims go to swap (dirty anon memory).

        Returns the swapped-out pages (the shared empty tuple when
        memory had room), or ``None`` when the only remaining victim is
        the ``protect`` page (the frame being swizzled must stay
        resident).
        """
        frames = self._frames
        if len(frames) < self.capacity:
            return _NO_SWAPS
        swap_outs: List[int] = []
        choose_victim = self._choose_victim
        while len(frames) >= self.capacity:
            victim = choose_victim()
            if victim == protect:
                # Give the frame back (at MRU position) and report no room.
                self.policy.on_admit(victim)
                return None
            state = frames.pop(victim)
            if state == _RESIDENT:
                self._swapped_resident.add(victim)
            else:
                self._swapped_reserved.add(victim)
            swap_outs.append(victim)
            self.swap_outs += 1
        return swap_outs

    # ------------------------------------------------------------------
    # BufferManager-compatible surface
    # ------------------------------------------------------------------
    def contains(self, page: int) -> bool:
        return self._frames.get(page) == _RESIDENT

    def invalidate(self, page: int) -> bool:
        present = page in self._frames
        if present:
            del self._frames[page]
            self.policy.forget(page)
        self._swapped_resident.discard(page)
        self._swapped_reserved.discard(page)
        return present

    def invalidate_all(self) -> int:
        count = len(self._frames)
        for page in list(self._frames):
            del self._frames[page]
            self.policy.forget(page)
        self._swapped_resident.clear()
        self._swapped_reserved.clear()
        return count

    def flush(self) -> List[int]:
        """No write-back concept: the store is the memory image."""
        return []

    @property
    def resident_pages(self) -> int:
        return sum(1 for s in self._frames.values() if s == _RESIDENT)

    @property
    def reserved_pages(self) -> int:
        return sum(1 for s in self._frames.values() if s == _RESERVED)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.swap_ins = 0
        self.swap_outs = 0
        self.reservations = 0
        self.discarded_reservations = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<VirtualMemoryManager {len(self._frames)}/{self.capacity} "
            f"resident={self.resident_pages} reserved={self.reserved_pages} "
            f"swapped={len(self._swapped_resident) + len(self._swapped_reserved)}>"
        )
