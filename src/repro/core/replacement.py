"""Buffer page replacement strategies (Table 3: PGREP).

Table 3 lists RANDOM | FIFO | LFU | LRU-K | CLOCK | GCLOCK with LRU-1 as
the default; §5 notes these "basic buffering strategies" as the ones
VOODB currently provides.  This module implements them all (plus MRU,
a classic foil for sequential-flooding discussions) behind one small
interface used by the Buffering Manager:

* ``on_admit(page)`` — a page entered the buffer;
* ``on_hit(page)``   — a resident page was referenced;
* ``choose_victim()`` — pick and forget the page to evict;
* ``forget(page)``   — the page left the buffer for another reason
  (invalidation after clustering reorganization).

Policies keep their own bookkeeping; the Buffering Manager owns the
actual frame table.  The recency family (LRU/MRU/FIFO) runs on an
intrusive circular linked ring, LFU on O(1) frequency buckets — every
operation constant-time; LRU-K keeps its lazy heap (O(log n) victim),
and the CLOCK/GCLOCK hand sweeps are amortized O(1) per admission.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from typing import Callable, Dict, List

from repro.despy.randomstream import RandomStream


class EmptyPolicyError(LookupError):
    """Raised when a victim is requested from a policy tracking no pages.

    Without this the strategies would leak their internals — LRU/MRU/FIFO
    a ``StopIteration`` from ``next(iter(...))`` (which a generator-based
    process turns into a baffling ``RuntimeError``), LFU/LRU-K a bare
    ``IndexError`` from ``heappop``, CLOCK an ``IndexError`` mid-sweep.
    """


class ReplacementPolicy(ABC):
    """Interface between the Buffering Manager and a strategy."""

    name: str = "abstract"

    @abstractmethod
    def on_admit(self, page: int) -> None: ...

    @abstractmethod
    def on_hit(self, page: int) -> None: ...

    @abstractmethod
    def choose_victim(self) -> int:
        """Return the page to evict, removing it from the bookkeeping.

        Raises :class:`EmptyPolicyError` when no page is tracked.
        """

    @abstractmethod
    def forget(self, page: int) -> None: ...

    def _no_victim(self) -> "int":
        raise EmptyPolicyError(
            f"{self.name} replacement policy has no pages to evict"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


# Intrusive linked-list nodes are plain 3-slot lists [prev, next, page];
# index constants keep the hot unlink/relink sequences readable.
_PREV, _NEXT, _PAGE = 0, 1, 2


class _LinkedOrderPolicy(ReplacementPolicy):
    """Recency order as an intrusive circular doubly-linked list.

    A sentinel node closes the ring: ``sentinel[_NEXT]`` is the coldest
    (least recently ordered) page, ``sentinel[_PREV]`` the hottest.
    Admissions append at the hot end; every operation is O(1) with no
    rehashing-the-order churn — the dict only maps page -> node.
    """

    def __init__(self) -> None:
        sentinel: List = []
        sentinel += [sentinel, sentinel, None]
        self._sentinel = sentinel
        self._node: Dict[int, List] = {}

    def on_admit(self, page: int) -> None:
        sentinel = self._sentinel
        hot = sentinel[_PREV]
        node = [hot, sentinel, page]
        hot[_NEXT] = node
        sentinel[_PREV] = node
        self._node[page] = node

    def _touch(self, page: int) -> None:
        """Move a resident page to the hot end of the ring."""
        node = self._node[page]
        prev = node[_PREV]
        nxt = node[_NEXT]
        prev[_NEXT] = nxt
        nxt[_PREV] = prev
        sentinel = self._sentinel
        hot = sentinel[_PREV]
        node[_PREV] = hot
        node[_NEXT] = sentinel
        hot[_NEXT] = node
        sentinel[_PREV] = node

    def _evict(self, node: List) -> int:
        prev = node[_PREV]
        nxt = node[_NEXT]
        prev[_NEXT] = nxt
        nxt[_PREV] = prev
        page = node[_PAGE]
        del self._node[page]
        return page

    def forget(self, page: int) -> None:
        node = self._node.pop(page, None)
        if node is not None:
            prev = node[_PREV]
            nxt = node[_NEXT]
            prev[_NEXT] = nxt
            nxt[_PREV] = prev


class LRUPolicy(_LinkedOrderPolicy):
    """Least Recently Used (Table 3's LRU-1 default)."""

    name = "LRU"

    def on_hit(self, page: int) -> None:
        # _touch, inlined: this runs once per buffer hit.
        node = self._node[page]
        prev = node[_PREV]
        nxt = node[_NEXT]
        prev[_NEXT] = nxt
        nxt[_PREV] = prev
        sentinel = self._sentinel
        hot = sentinel[_PREV]
        node[_PREV] = hot
        node[_NEXT] = sentinel
        hot[_NEXT] = node
        sentinel[_PREV] = node

    def choose_victim(self) -> int:
        node = self._sentinel[_NEXT]
        if node is self._sentinel:
            self._no_victim()
        return self._evict(node)


class MRUPolicy(_LinkedOrderPolicy):
    """Most Recently Used — evicts the hottest page (anti-LRU foil)."""

    name = "MRU"

    def on_hit(self, page: int) -> None:
        # _touch, inlined (see LRUPolicy.on_hit).
        node = self._node[page]
        prev = node[_PREV]
        nxt = node[_NEXT]
        prev[_NEXT] = nxt
        nxt[_PREV] = prev
        sentinel = self._sentinel
        hot = sentinel[_PREV]
        node[_PREV] = hot
        node[_NEXT] = sentinel
        hot[_NEXT] = node
        sentinel[_PREV] = node

    def choose_victim(self) -> int:
        node = self._sentinel[_PREV]
        if node is self._sentinel:
            self._no_victim()
        return self._evict(node)


class FIFOPolicy(_LinkedOrderPolicy):
    """First In First Out — references do not refresh residency."""

    name = "FIFO"

    def on_hit(self, page: int) -> None:
        pass

    def choose_victim(self) -> int:
        node = self._sentinel[_NEXT]
        if node is self._sentinel:
            self._no_victim()
        return self._evict(node)


class RandomPolicy(ReplacementPolicy):
    """Uniformly random victim (Table 3's RANDOM)."""

    name = "RANDOM"

    def __init__(self, rng: RandomStream) -> None:
        self._rng = rng
        self._pages: List[int] = []
        self._slot: Dict[int, int] = {}

    def on_admit(self, page: int) -> None:
        self._slot[page] = len(self._pages)
        self._pages.append(page)

    def on_hit(self, page: int) -> None:
        pass

    def choose_victim(self) -> int:
        if not self._pages:
            self._no_victim()
        index = self._rng.randint(0, len(self._pages) - 1)
        page = self._pages[index]
        self._remove_at(index)
        return page

    def forget(self, page: int) -> None:
        index = self._slot.get(page)
        if index is not None:
            self._remove_at(index)

    def _remove_at(self, index: int) -> None:
        page = self._pages[index]
        last = self._pages[-1]
        self._pages[index] = last
        self._slot[last] = index
        self._pages.pop()
        del self._slot[page]


class LFUPolicy(ReplacementPolicy):
    """Least Frequently Used, least-recently-bumped among ties.

    O(1) frequency buckets instead of a lazy heap: ``_buckets[c]`` holds
    the pages currently at count ``c`` in the order they *reached* that
    count, so the first page of the lowest non-empty bucket is exactly
    the heap formulation's ``(count, seq)`` minimum — the coldest page,
    ties broken by the earliest last-touch.  No per-hit heap push, no
    stale entries to skim at eviction time.
    """

    name = "LFU"

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self._buckets: Dict[int, Dict[int, None]] = {}
        self._min_count = 1

    def on_admit(self, page: int) -> None:
        self._counts[page] = 1
        bucket = self._buckets.get(1)
        if bucket is None:
            bucket = self._buckets[1] = {}
        bucket[page] = None
        self._min_count = 1

    def on_hit(self, page: int) -> None:
        counts = self._counts
        count = counts[page]
        counts[page] = count + 1
        buckets = self._buckets
        bucket = buckets[count]
        del bucket[page]
        if not bucket:
            del buckets[count]
        bucket = buckets.get(count + 1)
        if bucket is None:
            bucket = buckets[count + 1] = {}
        bucket[page] = None

    def choose_victim(self) -> int:
        if not self._counts:
            self._no_victim()
        buckets = self._buckets
        count = self._min_count
        bucket = buckets.get(count)
        while bucket is None:
            # The minimum only drifts up between admissions; scan
            # resumes where it left off (amortized O(1) per eviction).
            count += 1
            bucket = buckets.get(count)
        self._min_count = count
        page = next(iter(bucket))
        del bucket[page]
        if not bucket:
            del buckets[count]
        del self._counts[page]
        return page

    def forget(self, page: int) -> None:
        count = self._counts.pop(page, None)
        if count is not None:
            bucket = self._buckets[count]
            del bucket[page]
            if not bucket:
                del self._buckets[count]


class LRUKPolicy(ReplacementPolicy):
    """LRU-K: evict the page whose K-th most recent reference is oldest.

    Pages with fewer than K references rank as minus infinity (classic
    O'Neil backward-K-distance), falling back to the oldest first
    reference among themselves.
    """

    name = "LRU-K"

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"LRU-K needs k >= 1, got {k}")
        self.k = k
        self._clock = 0
        self._history: Dict[int, List[int]] = {}
        self._heap: List[tuple[float, int, int]] = []
        self._seq = 0

    def _kth_key(self, page: int) -> float:
        history = self._history[page]
        if len(history) < self.k:
            # Effectively -inf rank; the tiny offset tie-breaks by the
            # earliest reference so the coldest under-referenced page
            # goes first.
            return -1e18 + history[0]
        return float(history[-self.k])

    def _touch(self, page: int) -> None:
        self._clock += 1
        history = self._history.setdefault(page, [])
        history.append(self._clock)
        if len(history) > self.k:
            del history[0]
        heapq.heappush(self._heap, (self._kth_key(page), self._seq, page))
        self._seq += 1

    def on_admit(self, page: int) -> None:
        self._history.pop(page, None)
        self._touch(page)

    def on_hit(self, page: int) -> None:
        self._touch(page)

    def choose_victim(self) -> int:
        if not self._history:
            self._no_victim()
        while True:
            key, __, page = heapq.heappop(self._heap)
            if page in self._history and self._kth_key(page) == key:
                del self._history[page]
                return page

    def forget(self, page: int) -> None:
        self._history.pop(page, None)


class ClockPolicy(ReplacementPolicy):
    """Second-chance CLOCK: a hand sweeps reference bits."""

    name = "CLOCK"

    def __init__(self) -> None:
        self._pages: List[int] = []
        self._refbit: Dict[int, bool] = {}
        self._hand = 0

    def on_admit(self, page: int) -> None:
        self._pages.append(page)
        self._refbit[page] = False

    def on_hit(self, page: int) -> None:
        self._refbit[page] = True

    def choose_victim(self) -> int:
        if not self._refbit:
            self._no_victim()
        while True:
            if self._hand >= len(self._pages):
                self._hand = 0
            page = self._pages[self._hand]
            if page not in self._refbit:
                self._pages.pop(self._hand)
                continue
            if self._refbit[page]:
                self._refbit[page] = False
                self._hand += 1
            else:
                self._pages.pop(self._hand)
                del self._refbit[page]
                return page

    def forget(self, page: int) -> None:
        # Lazy removal: drop the bit now, compact when the hand passes.
        self._refbit.pop(page, None)


class GClockPolicy(ReplacementPolicy):
    """Generalized CLOCK: counters decremented by the sweeping hand."""

    name = "GCLOCK"

    def __init__(self, initial_weight: int = 2) -> None:
        if initial_weight < 1:
            raise ValueError("initial_weight must be >= 1")
        self.initial_weight = initial_weight
        self._pages: List[int] = []
        self._count: Dict[int, int] = {}
        self._hand = 0

    def on_admit(self, page: int) -> None:
        self._pages.append(page)
        self._count[page] = self.initial_weight

    def on_hit(self, page: int) -> None:
        self._count[page] += 1

    def choose_victim(self) -> int:
        if not self._count:
            self._no_victim()
        while True:
            if self._hand >= len(self._pages):
                self._hand = 0
            page = self._pages[self._hand]
            if page not in self._count:
                self._pages.pop(self._hand)
                continue
            if self._count[page] > 0:
                self._count[page] -= 1
                self._hand += 1
            else:
                self._pages.pop(self._hand)
                del self._count[page]
                return page

    def forget(self, page: int) -> None:
        self._count.pop(page, None)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
#: Factories for Table 3's PGREP values.  ``rng`` is only consumed by
#: RANDOM but passed uniformly for interface simplicity.
_FACTORIES: Dict[str, Callable[[RandomStream], ReplacementPolicy]] = {
    "LRU": lambda rng: LRUPolicy(),
    "MRU": lambda rng: MRUPolicy(),
    "FIFO": lambda rng: FIFOPolicy(),
    "RANDOM": lambda rng: RandomPolicy(rng),
    "LFU": lambda rng: LFUPolicy(),
    "CLOCK": lambda rng: ClockPolicy(),
    "GCLOCK": lambda rng: GClockPolicy(),
}


def available_policies() -> List[str]:
    """Registry keys plus the parameterized LRU-K form."""
    return sorted(_FACTORIES) + ["LRU-<k>"]


def make_replacement_policy(name: str, rng: RandomStream) -> ReplacementPolicy:
    """Build a policy from its Table 3 PGREP code.

    ``LRU-<k>`` (e.g. ``LRU-2``) builds :class:`LRUKPolicy`; ``LRU`` and
    ``LRU-1`` are the plain LRU default.
    """
    key = name.strip().upper()
    if key in ("LRU", "LRU-1"):
        return LRUPolicy()
    if key.startswith("LRU-"):
        try:
            k = int(key[4:])
        except ValueError as exc:
            raise ValueError(f"bad LRU-K policy name {name!r}") from exc
        return LRUKPolicy(k)
    if key in _FACTORIES:
        return _FACTORIES[key](rng)
    raise ValueError(
        f"unknown replacement policy {name!r}; known: {available_policies()}"
    )
