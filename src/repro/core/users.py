"""The Users (knowledge model, Figure 4): transaction sources.

NUSERS user processes each draw transactions from their own OCB
generator (common random numbers: user *u* of phase *p* always sees the
same stream for a given replication seed) and submit them to the
Transaction Manager, thinking ``thinktime`` between transactions.

Users are also where Figure 4's *external clustering demand* comes from;
the model surfaces that as
:meth:`repro.core.model.VOODBSimulation.demand_clustering`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.despy.process import Hold, Process
from repro.despy.randomstream import RandomStream
from repro.core.parameters import VOODBConfig
from repro.core.transaction_manager import TransactionManager
from repro.ocb.database import Database
from repro.ocb.transactions import TransactionGenerator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.despy.engine import Simulation


class Users:
    """Spawns NUSERS transaction-submitting processes per phase."""

    def __init__(
        self,
        sim: "Simulation",
        config: VOODBConfig,
        db: Database,
        tm: TransactionManager,
    ) -> None:
        self.sim = sim
        self.config = config
        self.db = db
        self.tm = tm
        self.transactions_submitted = 0

    def launch(
        self,
        total_transactions: int,
        workload: str = "mix",
        stream_label: str = "workload",
        hierarchy_type: int = 0,
        hierarchy_depth: Optional[int] = None,
        ocb_override=None,
    ) -> List[Process]:
        """Start the user processes for one phase.

        ``workload`` is ``"mix"`` (the Table 5 transaction mix) or
        ``"hierarchy"`` (§4.4's pure depth-``hierarchy_depth`` hierarchy
        traversals over reference type ``hierarchy_type``).

        ``stream_label`` names the workload random stream: two phases
        launched with the same label replay the identical transaction
        sequence — how §4.4 measures the same usage before and after
        clustering.

        ``ocb_override`` substitutes a different OCB workload definition
        for this phase only (e.g. a churn phase of pure inserts/deletes
        between two measured phases).
        """
        if total_transactions < 0:
            raise ValueError("total_transactions must be >= 0")
        if workload not in ("mix", "hierarchy"):
            raise ValueError(f"unknown workload {workload!r}")
        ocb = ocb_override if ocb_override is not None else self.config.ocb
        nusers = self.config.nusers
        share = total_transactions // nusers
        remainder = total_transactions % nusers
        processes: List[Process] = []
        for user in range(nusers):
            count = share + (1 if user < remainder else 0)
            if count == 0:
                continue
            rng = RandomStream(self.sim.seed, f"{stream_label}/user-{user}")
            generator = TransactionGenerator(self.db, ocb, rng)
            processes.append(
                self.sim.process(
                    self._user_process(
                        generator, count, workload, hierarchy_type, hierarchy_depth
                    ),
                    name=f"user-{user}/{stream_label}",
                )
            )
        return processes

    def _user_process(
        self,
        generator: TransactionGenerator,
        count: int,
        workload: str,
        hierarchy_type: int,
        hierarchy_depth: Optional[int],
    ):
        think = generator.config.thinktime
        if workload == "hierarchy":
            depth = hierarchy_depth
            if depth is None:
                depth = self.config.ocb.hiedepth
            transactions = generator.hierarchy_only(count, hierarchy_type, depth)
        else:
            transactions = generator.transactions(count)
        think_hold = Hold(think) if think > 0 else None
        execute = self.tm.execute_with_envelope
        for txn in transactions:
            self.transactions_submitted += 1
            yield from execute(txn)
            if think_hold is not None:
                yield think_hold
