"""The Users (knowledge model, Figure 4): transaction sources.

Closed system (the paper's Table 3 population model): NUSERS user
processes each draw transactions from their own OCB generator (common
random numbers: user *u* of phase *p* always sees the same stream for a
given replication seed) and submit them to the Transaction Manager,
thinking ``thinktime`` between transactions.

Open system (:meth:`Users.launch_open`): one arrival source draws
interarrival gaps from a named random stream
(:mod:`repro.despy.arrivals`) and spawns an independent submission
process per arrival — transactions enter at the configured rate whether
or not earlier ones have finished, with MULTILVL still bounding how
many execute concurrently.

Aggregated hybrid (:meth:`Users.launch_aggregated`): a large closed
population collapsed into one calibrated Poisson aggregate source plus
a small *probe cohort* of real closed-loop user processes — the
aggregate stream carries the population's load, the probes observe the
per-user latency the stream cannot.  Probe and aggregate draws live on
disjoint named streams, so resizing the cohort never perturbs the
aggregate arrival sequence.

Users are also where Figure 4's *external clustering demand* comes from;
the model surfaces that as
:meth:`repro.core.model.VOODBSimulation.demand_clustering`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.despy.arrivals import aggregated_interarrivals, probe_rescaled_rate
from repro.despy.process import Hold, Process
from repro.despy.randomstream import RandomStream
from repro.despy.timebase import ms_to_ticks
from repro.core.parameters import AggregationConfig, ArrivalConfig, VOODBConfig
from repro.core.transaction_manager import TransactionManager
from repro.ocb.database import Database
from repro.ocb.transactions import Transaction, TransactionGenerator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.despy.engine import Simulation


class Users:
    """Spawns NUSERS transaction-submitting processes per phase."""

    def __init__(
        self,
        sim: "Simulation",
        config: VOODBConfig,
        db: Database,
        tm: TransactionManager,
    ) -> None:
        self.sim = sim
        self.config = config
        self.db = db
        self.tm = tm
        self.transactions_submitted = 0
        # Per-phase aggregated-tier trackers (reset by launch_aggregated).
        #: Response times (ticks) of probe-cohort transactions, in
        #: completion order — the per-user latency series of a hybrid
        #: phase.
        self.probe_response_ticks: List[int] = []
        #: Transactions completed by the aggregate source this phase.
        self.aggregate_completions = 0

    def launch(
        self,
        total_transactions: int,
        workload: str = "mix",
        stream_label: str = "workload",
        hierarchy_type: int = 0,
        hierarchy_depth: Optional[int] = None,
        ocb_override=None,
        thinktime: Optional[float] = None,
        nusers: Optional[int] = None,
    ) -> List[Process]:
        """Start the user processes for one phase (closed system).

        ``workload`` is ``"mix"`` (the Table 5 transaction mix) or
        ``"hierarchy"`` (§4.4's pure depth-``hierarchy_depth`` hierarchy
        traversals over reference type ``hierarchy_type``).

        ``stream_label`` names the workload random stream: two phases
        launched with the same label replay the identical transaction
        sequence — how §4.4 measures the same usage before and after
        clustering.

        ``ocb_override`` substitutes a different OCB workload definition
        for this phase only (e.g. a churn phase of pure inserts/deletes
        between two measured phases); ``thinktime`` overrides the OCB
        think time for this phase only, and ``nusers`` the configured
        user population (multiprogramming-ramp phases).
        """
        if total_transactions < 0:
            raise ValueError("total_transactions must be >= 0")
        if workload not in ("mix", "hierarchy"):
            raise ValueError(f"unknown workload {workload!r}")
        ocb = ocb_override if ocb_override is not None else self.config.ocb
        nusers = self.config.nusers if nusers is None else nusers
        if nusers < 1:
            raise ValueError(
                f"nusers must be >= 1, got {nusers}: a closed system needs at "
                "least one user process to submit transactions"
            )
        if thinktime is not None and thinktime < 0:
            raise ValueError(f"thinktime must be >= 0, got {thinktime}")
        share = total_transactions // nusers
        remainder = total_transactions % nusers
        processes: List[Process] = []
        for user in range(nusers):
            count = share + (1 if user < remainder else 0)
            if count == 0:
                continue
            rng = RandomStream(self.sim.seed, f"{stream_label}/user-{user}")
            generator = TransactionGenerator(self.db, ocb, rng)
            processes.append(
                self.sim.process(
                    self._user_process(
                        generator,
                        count,
                        workload,
                        hierarchy_type,
                        hierarchy_depth,
                        thinktime,
                    ),
                    name=f"user-{user}/{stream_label}",
                )
            )
        return processes

    def _materialize(
        self,
        generator: TransactionGenerator,
        count: int,
        workload: str,
        hierarchy_type: int,
        hierarchy_depth: Optional[int],
    ):
        """The phase's transaction stream (shared by closed and open
        launches, so the workload dispatch can never diverge)."""
        if workload == "hierarchy":
            depth = hierarchy_depth
            if depth is None:
                depth = self.config.ocb.hiedepth
            return generator.hierarchy_only(count, hierarchy_type, depth)
        return generator.transactions(count)

    def _user_process(
        self,
        generator: TransactionGenerator,
        count: int,
        workload: str,
        hierarchy_type: int,
        hierarchy_depth: Optional[int],
        thinktime: Optional[float] = None,
    ):
        think = generator.config.thinktime if thinktime is None else thinktime
        transactions = self._materialize(
            generator, count, workload, hierarchy_type, hierarchy_depth
        )
        # THINKTIME is quoted in ms (Table 3); the closed loop holds the
        # tick-rounded duration.
        think_hold = Hold(ms_to_ticks(think)) if think > 0 else None
        # The architecture envelope is spliced inline rather than
        # delegated to ``execute_with_envelope``: every yielded command
        # bubbles through each ``yield from`` frame on the way to the
        # kernel, so one less frame on the hottest chain is measurable.
        tm = self.tm
        execute = tm.execute
        arch = tm.architecture
        begin = arch.begin_transaction_nowait
        end = arch.end_transaction_nowait
        for txn in transactions:
            self.transactions_submitted += 1
            step = begin()
            if step is not None:
                yield from step
            yield from execute(txn)
            step = end()
            if step is not None:
                yield from step
            if think_hold is not None:
                yield think_hold

    # ------------------------------------------------------------------
    # Open-system arrivals
    # ------------------------------------------------------------------
    def launch_open(
        self,
        total_transactions: int,
        arrivals: ArrivalConfig,
        workload: str = "mix",
        stream_label: str = "open",
        hierarchy_type: int = 0,
        hierarchy_depth: Optional[int] = None,
        ocb_override=None,
    ) -> List[Process]:
        """Start one arrival source feeding ``total_transactions`` in.

        The source draws interarrival gaps from the
        ``{stream_label}/arrivals`` stream and the transactions
        themselves from ``{stream_label}/source`` — both pure functions
        of the replication seed, and independent of each other, so two
        configs compared under common random numbers see the same
        arrival instants *and* the same transaction sequence.

        Each arrival is submitted by its own process; the think time
        does not apply (there is no closed submit/think loop), and
        MULTILVL admission still bounds how many transactions execute
        concurrently once submitted.
        """
        if total_transactions < 0:
            raise ValueError("total_transactions must be >= 0")
        if workload not in ("mix", "hierarchy"):
            raise ValueError(f"unknown workload {workload!r}")
        if not arrivals.open:
            raise ValueError(
                "launch_open needs an open arrival mode (poisson or mmpp); "
                "use launch() for the closed NUSERS loop"
            )
        ocb = ocb_override if ocb_override is not None else self.config.ocb
        rng = RandomStream(self.sim.seed, f"{stream_label}/source")
        generator = TransactionGenerator(self.db, ocb, rng)
        transactions = self._materialize(
            generator, total_transactions, workload, hierarchy_type, hierarchy_depth
        )
        gaps = arrivals.interarrivals(
            RandomStream(self.sim.seed, f"{stream_label}/arrivals")
        )
        return [
            self.sim.process(
                self._arrival_source(transactions, gaps, stream_label),
                name=f"arrivals/{stream_label}",
            )
        ]

    def _arrival_source(
        self,
        transactions,
        gaps: Iterator[int],
        stream_label: str,
    ):
        for index, txn in enumerate(transactions):
            yield Hold(next(gaps))
            self.transactions_submitted += 1
            self.sim.process(
                self._submission(txn), name=f"txn-{index}/{stream_label}"
            )

    def _submission(self, txn: Transaction):
        yield from self.tm.execute_with_envelope(txn)

    # ------------------------------------------------------------------
    # Aggregated hybrid: calibrated open stream + probe cohort
    # ------------------------------------------------------------------
    def launch_aggregated(
        self,
        total_transactions: int,
        rate_tps: float,
        aggregation: AggregationConfig,
        workload: str = "mix",
        stream_label: str = "aggregated",
        hierarchy_type: int = 0,
        hierarchy_depth: Optional[int] = None,
        ocb_override=None,
    ) -> List[Process]:
        """Start the hybrid tier: aggregate source + probe cohort.

        ``rate_tps`` is the calibrated population rate (the fixed point
        of λ = N/(Z+R), see :mod:`repro.core.aggregation`); the
        aggregate source emits Poisson arrivals at the probe-rescaled
        share of it so the cohort's own closed-loop load keeps the total
        offered rate at λ.

        The phase's transactions are split so every probe user gets at
        least one (at 10⁶ users a proportional share would starve the
        cohort and leave no latency observations), the remainder riding
        the aggregate stream.  Streams: the aggregate source draws from
        ``{stream_label}/aggregate-arrivals`` and
        ``{stream_label}/aggregate-source``; probe user *u* draws from
        ``{stream_label}/probe-{u}`` — all disjoint, so the aggregate
        arrival sequence is invariant under probe-cohort resizing.

        Probe users stagger their starts uniformly over one think time
        (capped at the expected aggregate window) instead of the closed
        launch's all-at-zero herd, think Z only *between* their own
        transactions, and never hold a trailing think — so a hybrid
        phase's elapsed time tracks the aggregate window, not Z.
        """
        if total_transactions < 0:
            raise ValueError("total_transactions must be >= 0")
        if workload not in ("mix", "hierarchy"):
            raise ValueError(f"unknown workload {workload!r}")
        if not aggregation.enabled:
            raise ValueError(
                "launch_aggregated needs an enabled AggregationConfig "
                "(population > 0); use launch() for the closed NUSERS loop"
            )
        self.probe_response_ticks = []
        self.aggregate_completions = 0
        ocb = ocb_override if ocb_override is not None else self.config.ocb
        population = aggregation.population
        probe_users = min(aggregation.probe_cohort, total_transactions)
        if probe_users > 0:
            probe_total = min(
                total_transactions,
                max(
                    probe_users,
                    total_transactions * aggregation.probe_cohort // population,
                ),
            )
        else:
            probe_total = 0
        aggregate_total = total_transactions - probe_total
        aggregate_rate = probe_rescaled_rate(
            rate_tps, population, aggregation.probe_cohort
        )
        processes: List[Process] = []
        if aggregate_total > 0:
            rng = RandomStream(
                self.sim.seed, f"{stream_label}/aggregate-source"
            )
            generator = TransactionGenerator(self.db, ocb, rng)
            transactions = self._materialize(
                generator,
                aggregate_total,
                workload,
                hierarchy_type,
                hierarchy_depth,
            )
            gaps = aggregated_interarrivals(
                RandomStream(
                    self.sim.seed, f"{stream_label}/aggregate-arrivals"
                ),
                aggregate_rate,
            )
            processes.append(
                self.sim.process(
                    self._aggregate_source(transactions, gaps, stream_label),
                    name=f"aggregate/{stream_label}",
                )
            )
        # Stagger probe starts over one closed-loop think time — in
        # steady state the population's cycle phases are uniform — but
        # never past the aggregate window (at 10⁶ users Z dwarfs it).
        window_ticks = (
            ms_to_ticks(aggregate_total * 1000.0 / aggregate_rate)
            if aggregate_total > 0
            else 0
        )
        think_ticks = ms_to_ticks(ocb.thinktime)
        spread_ticks = min(think_ticks, window_ticks)
        share = probe_total // probe_users if probe_users else 0
        remainder = probe_total % probe_users if probe_users else 0
        for user in range(probe_users):
            count = share + (1 if user < remainder else 0)
            if count == 0:
                continue
            rng = RandomStream(self.sim.seed, f"{stream_label}/probe-{user}")
            generator = TransactionGenerator(self.db, ocb, rng)
            processes.append(
                self.sim.process(
                    self._probe_process(
                        generator,
                        count,
                        workload,
                        hierarchy_type,
                        hierarchy_depth,
                        think_ticks,
                        spread_ticks * user // probe_users,
                    ),
                    name=f"probe-{user}/{stream_label}",
                )
            )
        return processes

    def _aggregate_source(
        self,
        transactions,
        gaps: Iterator[int],
        stream_label: str,
    ):
        for index, txn in enumerate(transactions):
            yield Hold(next(gaps))
            self.transactions_submitted += 1
            self.sim.process(
                self._aggregate_submission(txn),
                name=f"agg-txn-{index}/{stream_label}",
            )

    def _aggregate_submission(self, txn: Transaction):
        yield from self.tm.execute_with_envelope(txn)
        self.aggregate_completions += 1

    def _probe_process(
        self,
        generator: TransactionGenerator,
        count: int,
        workload: str,
        hierarchy_type: int,
        hierarchy_depth: Optional[int],
        think_ticks: int,
        offset_ticks: int,
    ):
        transactions = self._materialize(
            generator, count, workload, hierarchy_type, hierarchy_depth
        )
        if offset_ticks > 0:
            yield Hold(offset_ticks)
        think_hold = Hold(think_ticks) if think_ticks > 0 else None
        sim = self.sim
        first = True
        for txn in transactions:
            if not first and think_hold is not None:
                yield think_hold
            first = False
            self.transactions_submitted += 1
            started = sim.now
            yield from self.tm.execute_with_envelope(txn)
            self.probe_response_ticks.append(sim.now - started)
