"""Flow aggregation: calibrating a closed population to an open rate.

The closed-loop model spawns one despy process per user, which caps
realistic studies at a few hundred users.  Queueing theory's interactive
response time law says a closed population of N users with think time Z
and response time R submits, in steady state, at

    λ = N / (Z + R(λ))

— a fixed point, because R itself depends on the offered load.  This
module solves that fixed point for a :class:`~repro.core.parameters
.VOODBConfig` whose :class:`~repro.core.parameters.AggregationConfig`
is enabled:

* :func:`fixed_point_rate` — the pure solver: a safeguarded fixed-point
  iteration of λ -> N/(Z + R(λ)) over any response function.  Because
  the map is strictly decreasing in λ, each iterate brackets the root
  from the other side; the solver keeps that bracket and falls back to
  its midpoint whenever a plain iterate would leave it, so the bracket
  width never grows and convergence is guaranteed even when the plain
  iteration would oscillate (heavily loaded closed systems).
* :func:`pilot_response_time_ms` — R(λ) measured by a short **pilot
  run**: the same config with a plain open Poisson source at rate λ,
  run for ``pilot_transactions`` transactions on the pinned
  ``pilot_seed``, summarized by the MSER-5 truncated batch-means
  steady-state estimator (falling back to the raw mean only below the
  observation floor).
* :func:`calibrate_aggregate_rate` — the cached front door: solve the
  fixed point for a config, memoized per config.  Calibration is a
  pure function of the (hashable, frozen) config — the pilot seed is
  pinned in :class:`AggregationConfig`, independent of replication
  seeds — so serial, parallel and cache-replay executions of the same
  scenario all see the identical calibrated rate.

The validation walls for all of this live in the tests: aggregated runs
must match full per-user runs at overlapping scales within batch-means
CI half-widths, and the solver must agree with the exact M/M/1 oracle
on analytically solvable response functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.core.parameters import (
    ArrivalConfig,
    VOODBConfig,
    check_aggregation_think_time,
)
from repro.despy.arrivals import closed_equivalent_rate_tps

#: Stream label of the calibration pilot phases (kept distinct from any
#: scenario phase label so pilot draws never collide with measured ones).
PILOT_STREAM_LABEL = "aggregation-pilot"


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of one fixed-point rate calibration.

    ``trace`` records every iteration as ``(rate_tps, response_ms)`` —
    the rate the pilot ran at and the steady-state response it measured
    — so reports can show *how* the rate was reached, not just the
    survivor.  ``converged`` is False when the iteration cap ran out
    first; the last bracket midpoint is still returned as the best
    available rate.
    """

    rate_tps: float
    iterations: int
    converged: bool
    trace: Tuple[Tuple[float, float], ...]
    population: int
    think_time_ms: float

    @property
    def response_time_ms(self) -> float:
        """The last measured pilot response time (ms)."""
        return self.trace[-1][1] if self.trace else 0.0


def fixed_point_rate(
    population: int,
    think_time_ms: float,
    response_time_ms_at: Callable[[float], float],
    tolerance: float = 0.05,
    max_iterations: int = 8,
) -> CalibrationResult:
    """Solve λ = N/(Z + R(λ)) by safeguarded fixed-point iteration.

    ``response_time_ms_at(rate_tps)`` is R in milliseconds — a pilot
    simulation in production, an analytic oracle in the validation
    tests.  The iteration starts from the zero-response seed λ0 = N/Z
    (the largest rate the law admits, since R >= 0) and stops when two
    successive rates agree within ``tolerance`` relatively.

    Convergence is monotone in the bracket sense: g(λ) = N/(Z + R(λ))
    is strictly decreasing for any nondecreasing R, so λ* always lies
    between an iterate and its image, and the maintained [lo, hi]
    bracket never widens.  A plain iterate outside the bracket (the
    oscillating-divergence regime of near-saturated systems) is
    replaced by the bracket midpoint — bisection progress at worst.
    """
    if population < 1:
        raise ValueError(f"population must be >= 1, got {population}")
    check_aggregation_think_time(think_time_ms)
    if not (0.0 < tolerance < 1.0):
        raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
    if max_iterations < 1:
        raise ValueError(
            f"max_iterations must be >= 1, got {max_iterations}"
        )
    lo = 0.0
    hi = closed_equivalent_rate_tps(population, think_time_ms, 0.0)
    rate = hi
    trace = []
    converged = False
    for _ in range(max_iterations):
        response = response_time_ms_at(rate)
        if not (response >= 0):
            raise ValueError(
                f"response_time_ms_at({rate}) returned {response!r}; "
                "the pilot response must be finite and >= 0"
            )
        trace.append((rate, response))
        image = closed_equivalent_rate_tps(
            population, think_time_ms, response
        )
        # g is decreasing, so λ* sits between rate and its image:
        # tighten the bracket from whichever side this iterate was on.
        if image >= rate:
            lo, hi = max(lo, rate), min(hi, image)
        else:
            lo, hi = max(lo, image), min(hi, rate)
        if abs(image - rate) <= tolerance * rate:
            rate = image
            converged = True
            break
        rate = image if lo <= image <= hi else (lo + hi) / 2.0
    return CalibrationResult(
        rate_tps=rate,
        iterations=len(trace),
        converged=converged,
        trace=tuple(trace),
        population=population,
        think_time_ms=think_time_ms,
    )


def _pilot_config(config: VOODBConfig, rate_tps: float) -> VOODBConfig:
    """The pilot twin of ``config``: same model, plain Poisson source.

    Aggregation is disabled in the twin (the pilot measures R, it does
    not recurse), and the cold warm-up is dropped — MSER-5 deletes the
    pilot's own transient, which is exactly the regime the calibration
    wants to see.
    """
    return config.with_changes(
        arrivals=ArrivalConfig(mode="poisson", rate_tps=rate_tps),
        aggregation=type(config.aggregation)(),
        ocb=config.ocb.with_changes(coldn=0),
    )


def pilot_response_time_ms(config: VOODBConfig, rate_tps: float) -> float:
    """R(λ): steady-state response time of one short pilot run (ms).

    Runs ``config``'s pilot twin at ``rate_tps`` for
    ``aggregation.pilot_transactions`` transactions on the pinned
    ``aggregation.pilot_seed`` and summarizes the response series with
    the MSER-5 truncated batch-means estimator
    (:meth:`~repro.core.results.PhaseResults.steady_state`) — the raw
    mean would drag the empty-system transient into the calibrated
    rate.
    """
    from repro.core.model import VOODBSimulation

    aggregation = config.aggregation
    pilot = VOODBSimulation(
        _pilot_config(config, rate_tps), seed=aggregation.pilot_seed
    )
    phase = pilot.run_phase(
        aggregation.pilot_transactions, stream_label=PILOT_STREAM_LABEL
    )
    if phase.has_steady_state:
        return phase.steady_state().point
    return phase.mean_response_time_ms


#: Per-config calibration memo.  Calibration is a pure function of the
#: config (pinned pilot seed), so every replication of a sweep point —
#: serial, parallel worker, or cache replay — shares one solve.
_CALIBRATION_CACHE: Dict[VOODBConfig, CalibrationResult] = {}


def calibrate_aggregate_rate(config: VOODBConfig) -> CalibrationResult:
    """The calibrated open rate for an aggregation-enabled config."""
    aggregation = config.aggregation
    if not aggregation.enabled:
        raise ValueError(
            "calibrate_aggregate_rate needs an aggregation-enabled config "
            "(population > 0)"
        )
    cached = _CALIBRATION_CACHE.get(config)
    if cached is None:
        cached = _CALIBRATION_CACHE[config] = fixed_point_rate(
            aggregation.population,
            config.ocb.thinktime,
            lambda rate: pilot_response_time_ms(config, rate),
            tolerance=aggregation.tolerance,
            max_iterations=aggregation.max_iterations,
        )
    return cached


def clear_calibration_cache() -> None:
    """Drop memoized calibrations (tests)."""
    _CALIBRATION_CACHE.clear()
