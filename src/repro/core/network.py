"""The network between clients and server (Table 3 NETTHRU).

Client-Server system classes exchange messages: object/page requests
upstream, objects/pages/results downstream.  The model is a single
shared medium of NETTHRU MB/s — a despy Resource of capacity 1, so
concurrent transfers serialize (half-duplex LAN, 1999-appropriate).

Table 4 sets NETTHRU = +∞ for the O2 experiments (server and bench
client on one workstation), which this model honors by skipping the
resource entirely: zero time, but messages and bytes still counted, so
I/O-oriented results are unaffected while the ablation benches can dial
real throughputs.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.despy.process import PARK, Hold, Release, Request
from repro.despy.resource import Resource
from repro.despy.timebase import MS_PER_TICK, ms_to_ticks
from repro.core.parameters import VOODBConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.despy.engine import Simulation


class Network:
    """Throughput-limited message transport with counters."""

    __slots__ = (
        "sim",
        "config",
        "infinite",
        "medium",
        "_ms_per_byte",
        "_request_medium",
        "_release_medium",
        "_holds",
        "messages",
        "bytes_sent",
        "busy_ticks",
    )

    def __init__(self, sim: "Simulation", config: VOODBConfig) -> None:
        self.sim = sim
        self.config = config
        self.infinite = math.isinf(config.netthru)
        self.medium = None if self.infinite else Resource(sim, "network", 1)
        self._ms_per_byte = config.network_ms_per_byte
        if not self.infinite:
            self._request_medium = Request(self.medium)
            self._release_medium = Release(self.medium)
            #: message sizes repeat (MESSAGE_BYTES, PGSIZE, object sizes),
            #: so the Hold for each distinct size is built once.
            self._holds: dict = {}
        # Counters
        self.messages = 0
        self.bytes_sent = 0
        self.busy_ticks = 0

    @property
    def busy_time_ms(self) -> float:
        """Accumulated medium occupancy, reported in milliseconds."""
        return self.busy_ticks * MS_PER_TICK

    def transfer_time(self, nbytes: int) -> float:
        """Unquantized transfer time in ms (reporting/estimation only)."""
        return nbytes * self._ms_per_byte

    def transfer_ticks(self, nbytes: int) -> int:
        """Tick cost of one message — the quantity the hot path holds."""
        return ms_to_ticks(nbytes * self._ms_per_byte)

    def transfer(self, nbytes: int):
        """Ship one message of ``nbytes`` (yield from inside a process).

        Prefer :meth:`transfer_nowait` on hot paths: with infinite
        NETTHRU it skips the generator round-trip entirely.
        """
        step = self.transfer_nowait(nbytes)
        if step is not None:
            yield from step

    def transfer_nowait(self, nbytes: int):
        """Count one message; return the timed-transfer generator to
        ``yield from``, or ``None`` when the medium is free (infinite
        NETTHRU) and no simulated time passes."""
        self.messages += 1
        self.bytes_sent += nbytes
        if self.infinite:
            return None
        return self._timed_transfer(nbytes)

    def _timed_transfer(self, nbytes: int):
        # One Hold per distinct size, carrying the tick-rounded cost;
        # the busy counter accrues the identical quantized ticks.
        hold = self._holds.get(nbytes)
        if hold is None:
            ticks = ms_to_ticks(nbytes * self._ms_per_byte)
            hold = self._holds[nbytes] = Hold(ticks)
        self.busy_ticks += hold.duration
        medium = self.medium
        if not medium.try_acquire_inline():
            yield self._request_medium
        yield hold
        if not medium.release_inline():
            yield PARK

    def request_response(self, request_bytes: int, response_bytes: int):
        """A request/response round trip as two transfers."""
        yield from self.transfer(request_bytes)
        yield from self.transfer(response_bytes)

    def reset_counters(self) -> None:
        self.messages = 0
        self.bytes_sent = 0
        self.busy_ticks = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        throughput = "inf" if self.infinite else f"{self.config.netthru}MB/s"
        return f"<Network {throughput} messages={self.messages}>"
