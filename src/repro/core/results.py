"""Result containers for VOODB runs.

The paper's headline metric is the **mean number of I/Os necessary to
perform the transactions** (Figures 6-11); the DSTC experiments add
clustering overhead I/Os and cluster statistics (Tables 6-8).  This
module also reports the standard simulation outputs (response times,
throughput, hit rates, utilizations) that VOODB's genericity claims
cover.

:class:`PhaseResults` holds the metrics of one workload phase of one
replication; :class:`SimulationResults` extends it with clustering info
for a complete replication.  Both flatten to ``dict`` for the
:class:`~repro.despy.stats.ReplicationAnalyzer`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.despy.stats import MIN_STEADY_OBSERVATIONS, steady_state_estimate


@dataclass
class PhaseResults:
    """Metrics of one workload phase (a batch of transactions)."""

    transactions: int = 0
    object_accesses: int = 0
    #: Pages read from disk for transaction processing (usage reads).
    reads: int = 0
    #: Pages written to disk for transaction processing (dirty evictions).
    writes: int = 0
    #: Swap I/Os (virtual-memory model only; included in reads+writes? no:
    #: counted separately and *added* into total_ios).
    swap_reads: int = 0
    swap_writes: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    prefetched_pages: int = 0
    prefetch_hits: int = 0
    sequential_reads: int = 0
    network_messages: int = 0
    network_bytes: int = 0
    network_time_ms: float = 0.0
    lock_acquisitions: int = 0
    lock_waits: int = 0
    lock_wait_time_ms: float = 0.0
    response_time_sum_ms: float = 0.0
    response_time_max_ms: float = 0.0
    #: Per-transaction response times (ms) in completion order — the
    #: observation series behind the steady-state estimates.  Kept out
    #: of :meth:`to_metrics` itself (analyzers aggregate scalars); the
    #: MSER-5/batch-means summary derived from it goes in as the
    #: ``steady_*`` metrics.
    response_times_ms: Tuple[float, ...] = ()
    elapsed_ms: float = 0.0
    transactions_by_kind: Dict[str, int] = field(default_factory=dict)
    #: Hazards charged during the phase (§5 failures module).
    transient_faults: int = 0
    crashes: int = 0
    downtime_ms: float = 0.0
    # -- Flow aggregation (0 population = plain closed/open phase) -------
    #: Simulated population the aggregated source tier stood in for.
    aggregation_population: int = 0
    #: Transactions completed via the aggregate arrival stream.
    aggregate_transactions: int = 0
    #: Transactions completed by the probe-cohort user processes.
    probe_transactions: int = 0
    #: Probe-cohort response times (ms) in completion order — the
    #: per-user latency series the aggregate stream cannot observe.
    probe_response_times_ms: Tuple[float, ...] = ()
    #: Fixed-point arrival rate the calibration settled on (tps).
    calibrated_rate_tps: float = 0.0
    #: Pilot iterations the calibration took, and whether it converged
    #: within tolerance before the iteration cap.
    calibration_iterations: int = 0
    calibration_converged: bool = False
    #: Per-iteration ``(rate_tps, pilot_response_ms)`` calibration trace.
    calibration_trace: Tuple[Tuple[float, float], ...] = ()
    # -- Cluster topology (empty tuples = single-server run) -------------
    #: Usage I/Os performed by each server node.
    server_ios: Tuple[int, ...] = ()
    #: Page/object service operations each server node performed.
    server_accesses: Tuple[int, ...] = ()
    #: Disk busy time of each server node (ms).
    server_busy_ms: Tuple[float, ...] = ()
    #: Inter-server network traffic (replica propagation + forwarding).
    interconnect_messages: int = 0
    interconnect_bytes: int = 0
    #: Pages a home node fetched from a remote owner (object server).
    remote_fetches: int = 0
    #: Reads served by a non-primary replica (round-robin balancing).
    replica_reads: int = 0
    #: Page images propagated to non-primary replicas on writes.
    replica_writes: int = 0
    # -- Consistency spectrum (async replication + failover) --------------
    #: Reads that served a page version older than the last acknowledged
    #: write of that page (async replication lag made visible).
    stale_reads: int = 0
    #: Shipped page images the per-node appliers installed.
    replica_applies: int = 0
    #: Total enqueue-to-apply latency over all applies (ms).
    replica_lag_sum_ms: float = 0.0
    #: Reads rerouted away from a crashed replica.
    read_failovers: int = 0
    #: Writes that queued behind a crashed primary's recovery.
    write_recovery_waits: int = 0
    #: Peak apply-queue depth per server node (async mode only).
    apply_queue_peak: Tuple[int, ...] = ()
    # -- Fault-tolerance layer (FaultConfig / RetryConfig) -----------------
    #: Page reads the extended cluster path served (stale-rate base).
    cluster_reads: int = 0
    #: Whether the fault layer was active this phase (gates metrics).
    fault_layer: bool = False
    #: Interconnect partitions drawn this phase.
    partitions: int = 0
    #: Total simulated time some partition was active (ms).
    partition_ms: float = 0.0
    #: Gray (degraded-mode) episodes drawn across the nodes.
    gray_episodes: int = 0
    #: Reads served by a node while it was gray.
    degraded_reads: int = 0
    #: Remote-operation attempts that hit the timeout.
    remote_timeouts: int = 0
    #: Backoff-and-retry rounds taken after a timeout.
    remote_retries: int = 0
    #: Peers abandoned after exhausting the retry budget.
    abandoned_reads: int = 0
    #: Primary elections held (crashed or partitioned-away leaders).
    elections: int = 0
    #: Elections that promoted a different replica to primary.
    promotions: int = 0
    #: Stale page copies anti-entropy back-filled.
    repair_pages: int = 0
    #: Divergent replicas quorum reads repaired in place.
    read_repairs: int = 0

    # ------------------------------------------------------------------
    @property
    def total_ios(self) -> int:
        """Usage I/Os of the phase: reads + writes + swap traffic.

        This is the figure the paper plots ("mean number of I/Os" over
        the HOTN transactions, averaged across replications).
        """
        return self.reads + self.writes + self.swap_reads + self.swap_writes

    @property
    def hit_rate(self) -> float:
        total = self.buffer_hits + self.buffer_misses
        return self.buffer_hits / total if total else 0.0

    @property
    def mean_response_time_ms(self) -> float:
        if self.transactions == 0:
            return 0.0
        return self.response_time_sum_ms / self.transactions

    @property
    def throughput_tps(self) -> float:
        """Transactions per (simulated) second."""
        if self.elapsed_ms <= 0:
            return 0.0
        return self.transactions / (self.elapsed_ms / 1000.0)

    # ------------------------------------------------------------------
    # Cluster roll-ups
    # ------------------------------------------------------------------
    @property
    def cluster_imbalance(self) -> float:
        """Max-over-mean per-server I/Os (1.0 = perfectly balanced)."""
        if not self.server_ios:
            return 1.0
        mean = sum(self.server_ios) / len(self.server_ios)
        if mean <= 0:
            return 1.0
        return max(self.server_ios) / mean

    @property
    def cluster_max_utilization(self) -> float:
        """Busiest server's disk utilization over the phase."""
        if not self.server_busy_ms or self.elapsed_ms <= 0:
            return 0.0
        return max(self.server_busy_ms) / self.elapsed_ms

    def server_utilization(self, index: int) -> float:
        """One server's disk utilization over the phase."""
        if self.elapsed_ms <= 0:
            return 0.0
        return self.server_busy_ms[index] / self.elapsed_ms

    @property
    def replica_lag_ms(self) -> float:
        """Mean enqueue-to-apply latency of shipped page images (ms)."""
        if self.replica_applies <= 0:
            return 0.0
        return self.replica_lag_sum_ms / self.replica_applies

    @property
    def stale_reads_per_1000_reads(self) -> float:
        """Stale-read *rate*: stale reads per 1000 served page reads.

        The raw counter scales with the workload; the rate is the
        comparable figure across scenarios (0.0 when no reads ran
        through the extended path).
        """
        if self.cluster_reads <= 0:
            return 0.0
        return self.stale_reads * 1000.0 / self.cluster_reads

    # ------------------------------------------------------------------
    # Aggregated-tier roll-ups
    # ------------------------------------------------------------------
    @property
    def aggregated(self) -> bool:
        """Whether this phase ran the flow-aggregated source tier."""
        return self.aggregation_population > 0

    @property
    def probe_mean_response_time_ms(self) -> float:
        """Mean response time over the probe cohort's transactions."""
        if not self.probe_response_times_ms:
            return 0.0
        return sum(self.probe_response_times_ms) / len(
            self.probe_response_times_ms
        )

    def probe_response_percentile(self, quantile: float) -> float:
        """Probe-cohort latency percentile (nearest-rank, ms).

        The point of the probe cohort: percentiles need per-transaction
        observations, which the aggregate stream's counters alone cannot
        provide.  ``quantile`` is in [0, 1].
        """
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile}")
        if not self.probe_response_times_ms:
            return 0.0
        ordered = sorted(self.probe_response_times_ms)
        # Nearest-rank: the smallest observation with at least a
        # ``quantile`` fraction of the sample at or below it, i.e. order
        # statistic ceil(q*n) (1-based).  ``int(q*n)`` overshoots by one
        # whenever q*n is integral (n=100, q=0.95 must read the 95th
        # order statistic, not the 96th).
        rank = math.ceil(quantile * len(ordered)) - 1
        return ordered[max(0, min(len(ordered) - 1, rank))]

    # ------------------------------------------------------------------
    # Steady-state estimates (honest open-system statistics)
    # ------------------------------------------------------------------
    @property
    def has_steady_state(self) -> bool:
        """Whether the phase recorded enough observations to estimate."""
        return len(self.response_times_ms) >= MIN_STEADY_OBSERVATIONS

    def steady_state(self, confidence: float = 0.95):
        """MSER-5 truncated batch-means estimate of the response time.

        The raw :attr:`mean_response_time_ms` averages the initial
        transient in; this deletes it first (see
        :func:`repro.despy.stats.steady_state_estimate`) and reports a
        batch-means CI over what remains.  Raises :class:`ValueError`
        when the phase is too short to estimate (see
        :attr:`has_steady_state`).
        """
        return steady_state_estimate(self.response_times_ms, confidence=confidence)

    def to_metrics(self, prefix: str = "") -> Dict[str, float]:
        """Flatten to a metric dict for the ReplicationAnalyzer."""
        metrics = {
            f"{prefix}transactions": float(self.transactions),
            f"{prefix}object_accesses": float(self.object_accesses),
            f"{prefix}total_ios": float(self.total_ios),
            f"{prefix}reads": float(self.reads),
            f"{prefix}writes": float(self.writes),
            f"{prefix}swap_ios": float(self.swap_reads + self.swap_writes),
            f"{prefix}hit_rate": self.hit_rate,
            f"{prefix}sequential_reads": float(self.sequential_reads),
            f"{prefix}network_messages": float(self.network_messages),
            f"{prefix}network_bytes": float(self.network_bytes),
            f"{prefix}network_time_ms": self.network_time_ms,
            f"{prefix}lock_waits": float(self.lock_waits),
            f"{prefix}mean_response_time_ms": self.mean_response_time_ms,
            f"{prefix}throughput_tps": self.throughput_tps,
            f"{prefix}elapsed_ms": self.elapsed_ms,
            f"{prefix}transient_faults": float(self.transient_faults),
            f"{prefix}crashes": float(self.crashes),
            f"{prefix}downtime_ms": self.downtime_ms,
        }
        if self.aggregated:
            metrics[f"{prefix}aggregation_population"] = float(
                self.aggregation_population
            )
            metrics[f"{prefix}aggregate_transactions"] = float(
                self.aggregate_transactions
            )
            metrics[f"{prefix}probe_transactions"] = float(
                self.probe_transactions
            )
            metrics[f"{prefix}calibrated_rate_tps"] = self.calibrated_rate_tps
            metrics[f"{prefix}calibration_iterations"] = float(
                self.calibration_iterations
            )
            metrics[f"{prefix}calibration_converged"] = float(
                self.calibration_converged
            )
            if self.probe_response_times_ms:
                metrics[f"{prefix}probe_mean_response_time_ms"] = (
                    self.probe_mean_response_time_ms
                )
                metrics[f"{prefix}probe_p95_response_time_ms"] = (
                    self.probe_response_percentile(0.95)
                )
        if self.has_steady_state:
            steady = self.steady_state()
            metrics[f"{prefix}steady_response_time_ms"] = steady.point
            metrics[f"{prefix}steady_response_ci_ms"] = steady.half_width
            metrics[f"{prefix}steady_truncated"] = float(steady.truncated)
            metrics[f"{prefix}steady_batches"] = float(steady.batches)
        if self.server_ios:
            metrics[f"{prefix}cluster_servers"] = float(len(self.server_ios))
            metrics[f"{prefix}cluster_imbalance"] = self.cluster_imbalance
            metrics[f"{prefix}cluster_max_utilization"] = (
                self.cluster_max_utilization
            )
            metrics[f"{prefix}interconnect_messages"] = float(
                self.interconnect_messages
            )
            metrics[f"{prefix}interconnect_bytes"] = float(
                self.interconnect_bytes
            )
            metrics[f"{prefix}remote_fetches"] = float(self.remote_fetches)
            metrics[f"{prefix}replica_reads"] = float(self.replica_reads)
            metrics[f"{prefix}replica_writes"] = float(self.replica_writes)
            metrics[f"{prefix}stale_reads"] = float(self.stale_reads)
            metrics[f"{prefix}replica_applies"] = float(self.replica_applies)
            metrics[f"{prefix}replica_lag_ms"] = self.replica_lag_ms
            metrics[f"{prefix}read_failovers"] = float(self.read_failovers)
            metrics[f"{prefix}write_recovery_waits"] = float(
                self.write_recovery_waits
            )
            if self.cluster_reads:
                metrics[f"{prefix}cluster_reads"] = float(self.cluster_reads)
                metrics[f"{prefix}stale_reads_per_1000_reads"] = (
                    self.stale_reads_per_1000_reads
                )
            if self.fault_layer:
                metrics[f"{prefix}partitions"] = float(self.partitions)
                metrics[f"{prefix}partition_ms"] = self.partition_ms
                metrics[f"{prefix}gray_episodes"] = float(self.gray_episodes)
                metrics[f"{prefix}degraded_reads"] = float(
                    self.degraded_reads
                )
                metrics[f"{prefix}remote_timeouts"] = float(
                    self.remote_timeouts
                )
                metrics[f"{prefix}remote_retries"] = float(
                    self.remote_retries
                )
                metrics[f"{prefix}abandoned_reads"] = float(
                    self.abandoned_reads
                )
                metrics[f"{prefix}elections"] = float(self.elections)
                metrics[f"{prefix}promotions"] = float(self.promotions)
                metrics[f"{prefix}repair_pages"] = float(self.repair_pages)
                metrics[f"{prefix}read_repairs"] = float(self.read_repairs)
            for index, peak in enumerate(self.apply_queue_peak):
                metrics[f"{prefix}server{index}_apply_queue_peak"] = float(
                    peak
                )
            for index, ios in enumerate(self.server_ios):
                metrics[f"{prefix}server{index}_total_ios"] = float(ios)
                metrics[f"{prefix}server{index}_accesses"] = float(
                    self.server_accesses[index]
                )
                metrics[f"{prefix}server{index}_utilization"] = (
                    self.server_utilization(index)
                )
        return metrics


@dataclass
class ClusteringReport:
    """Outcome of the Clustering Manager over one replication."""

    policy: str = "none"
    reorganizations: int = 0
    #: I/Os spent reorganizing the base (paper Table 6 "clustering
    #: overhead") — reads of old pages plus writes of new pages.
    overhead_reads: int = 0
    overhead_writes: int = 0
    clusters: int = 0
    clustered_objects: int = 0
    moved_objects: int = 0

    @property
    def overhead_ios(self) -> int:
        return self.overhead_reads + self.overhead_writes

    @property
    def mean_objects_per_cluster(self) -> float:
        """Paper Table 7 "mean number of obj./clust."."""
        if self.clusters == 0:
            return 0.0
        return self.clustered_objects / self.clusters

    def to_metrics(self, prefix: str = "clustering_") -> Dict[str, float]:
        return {
            f"{prefix}reorganizations": float(self.reorganizations),
            f"{prefix}overhead_ios": float(self.overhead_ios),
            f"{prefix}clusters": float(self.clusters),
            f"{prefix}objects_per_cluster": self.mean_objects_per_cluster,
            f"{prefix}moved_objects": float(self.moved_objects),
        }


@dataclass
class SimulationResults:
    """Complete results of one VOODB replication."""

    phase: PhaseResults
    clustering: ClusteringReport
    seed: int = 0
    #: Results of extra phases keyed by the name given to ``run_phase``.
    extra_phases: Dict[str, PhaseResults] = field(default_factory=dict)
    #: Kernel perf counters of the whole replication (event-list fast
    #: paths; see :mod:`repro.despy.events`).  Flattened as ``kernel_*``
    #: metrics so the ``voodb scenario run --json`` output can report
    #: where the events of a scenario went.
    kernel: Dict[str, float] = field(default_factory=dict)

    # Convenience pass-throughs for the headline metrics -----------------
    @property
    def total_ios(self) -> int:
        return self.phase.total_ios

    @property
    def mean_response_time_ms(self) -> float:
        return self.phase.mean_response_time_ms

    @property
    def hit_rate(self) -> float:
        return self.phase.hit_rate

    def to_metrics(self) -> Dict[str, float]:
        metrics = self.phase.to_metrics()
        metrics.update(self.clustering.to_metrics())
        for name, phase in self.extra_phases.items():
            metrics.update(phase.to_metrics(prefix=f"{name}_"))
        for name, value in self.kernel.items():
            metrics[f"kernel_{name}"] = float(value)
        return metrics
