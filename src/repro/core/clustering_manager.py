"""The Clustering Manager (knowledge model, Figure 4).

"After an operation on a given object is over, the Clustering Manager
may update some usage statistics for the database.  An analysis of these
statistics can trigger a reclustering, which is then performed by the
Clustering Manager.  Such a database reorganization can also be demanded
externally by the Users."

The algorithm-specific pieces live in the plugged
:class:`~repro.clustering.base.ClusteringPolicy`; this manager owns the
mechanism every policy shares:

* routing the per-access statistics hook,
* the automatic trigger (policy says "reorganize" at a transaction
  boundary) and the external demand (§4.4's experiment protocol),
* the physical reorganization: read the pages currently holding the
  clustered objects, rewrite them at their new locations, rebuild the
  Object Manager's directory, and invalidate stale buffer frames —
  its I/Os are the paper's "clustering overhead" (Table 6), accounted
  separately from usage I/Os.

Because OIDs are logical, no reference-update pass is needed — the paper
calls its absence out when comparing simulated overhead (354 I/Os) with
Texas' measured overhead (12 799 I/Os, physical OIDs): "this flagrant
inconsistency is not due to a bug in the simulation model, but to a
particularity in Texas."
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.clustering.base import ClusteringPolicy
from repro.clustering.placement import relocation_placement
from repro.core.object_manager import ObjectManager
from repro.core.parameters import VOODBConfig
from repro.core.results import ClusteringReport
from repro.ocb.database import Database

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.io_subsystem import IOSubsystem


class ClusteringManager:
    """Mechanism shared by every clustering policy."""

    def __init__(
        self,
        config: VOODBConfig,
        db: Database,
        object_manager: ObjectManager,
        memory,
        io: "IOSubsystem",
        policy: ClusteringPolicy,
    ) -> None:
        self.config = config
        self.db = db
        self.object_manager = object_manager
        self.memory = memory
        self.io = io
        self.policy = policy
        policy.attach(db)
        self.report = ClusteringReport(policy=policy.name)
        self._installed_clusters: List[List[int]] = []
        self._rebind_access_hook()

    # ------------------------------------------------------------------
    # Figure 4 hooks (called by the Transaction Manager)
    # ------------------------------------------------------------------
    def on_object_access(self, oid: int, previous_oid: Optional[int]) -> None:
        self.policy.on_object_access(oid, previous_oid)

    def _rebind_access_hook(self) -> None:
        # The hook runs once per object access; aliasing the policy's
        # bound method on the instance removes the pure-delegation frame
        # from the hot path while keeping ``on_object_access`` the API.
        self.on_object_access = self.policy.on_object_access

    def after_transaction(self):
        """Automatic trigger check; reorganizes inline when requested."""
        step = self.after_transaction_nowait()
        if step is not None:
            yield from step

    def after_transaction_nowait(self):
        """Trigger check without the generator round-trip.

        Returns the reorganization generator to ``yield from`` when the
        policy fires, ``None`` (almost always) otherwise.
        """
        if self.policy.on_transaction_end():
            return self.reorganize()
        return None

    def demand_clustering(self):
        """External trigger (Figure 4 "Clustering Demand" from Users)."""
        flush = getattr(self.policy, "flush_observations", None)
        if flush is not None:
            flush()
        yield from self.reorganize()

    # ------------------------------------------------------------------
    # The reorganization itself
    # ------------------------------------------------------------------
    def reorganize(self):
        """Physically rewrite the base around the policy's clusters."""
        clusters = self.policy.build_clusters()
        if not clusters:
            return
        moved = [oid for cluster in clusters for oid in cluster]

        # 1. Read the pages currently holding the objects to move.
        # Reorganization goes through the memory manager: pages still
        # resident from the observation run cost no I/O (this is why the
        # paper's simulated overhead is 354 I/Os while Texas pays 12 799).
        old_pages = self.object_manager.pages_holding(moved)
        pages_to_read = [p for p in old_pages if not self.memory.contains(p)]
        yield from self.io.read_pages(pages_to_read)

        # 2. Rebuild the directory: clusters relocate to fresh pages,
        # everything else keeps its physical location.
        new_map = relocation_placement(
            self.db,
            self.config.usable_page_bytes,
            clusters,
            self.object_manager.page_map,
        )
        self.object_manager.rebuild(new_map)

        # 3. Write the pages now holding the moved objects.
        new_pages = self.object_manager.pages_holding(moved)
        yield from self.io.write_pages(new_pages)

        # 4. Only the affected frames are stale: the old images of moved
        # objects.  Frames for untouched pages stay valid (their page ids
        # did not change), which is what lets a warm cache survive a
        # reorganization.
        for page in old_pages:
            self.memory.invalidate(page)
        for page in new_pages:
            self.memory.invalidate(page)

        # 5. Bookkeeping.
        self.report.reorganizations += 1
        self.report.overhead_reads += len(pages_to_read)
        self.report.overhead_writes += len(new_pages)
        self.report.clusters = len(clusters)
        self.report.clustered_objects = len(moved)
        self.report.moved_objects += len(moved)
        self._installed_clusters = clusters
        self.policy.notify_reorganized(clusters)

    # ------------------------------------------------------------------
    def current_order(self) -> List[int]:
        """Objects in current on-disk order (input to the next placement)."""
        page_map = self.object_manager.page_map
        order: List[int] = []
        for page in range(page_map.total_pages):
            order.extend(page_map.objects_on(page))
        return order

    @property
    def installed_clusters(self) -> List[List[int]]:
        return self._installed_clusters

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ClusteringManager policy={self.policy.name!r} "
            f"reorganizations={self.report.reorganizations}>"
        )
