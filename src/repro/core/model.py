"""VOODB: assembly of the generic evaluation model.

This module instantiates Figure 4 — Users, Transaction Manager,
Clustering Manager, Object Manager, Buffering Manager (or the Texas
virtual-memory model), I/O Subsystem — over one despy simulation, wires
the passive resources of Table 1 (scheduler, disk, network medium), and
runs replications.

Passive resources (Table 1) in this assembly:

* server processor and main memory — the memory model (BUFFSIZE frames);
* server disk controller and secondary storage — the IOSubsystem's
  capacity-1 disk resource;
* database scheduler — the LockManager's MULTILVL admission resource
  plus the object lock table.

Public entry points:

* :class:`VOODBSimulation` — one replication, with the multi-phase API
  the DSTC experiments need (``run_phase`` / ``demand_clustering``);
* :func:`run_replication` — the standard COLDN-warm-up + HOTN-measured
  run of §4.3, returning :class:`SimulationResults`;
* :func:`build_database` — cached OCB base construction (the base is a
  pure function of the OCB config, so experiment sweeps share it).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.despy.engine import Simulation
from repro.despy.randomstream import RandomStream
from repro.despy.timebase import MS_PER_TICK
from repro.clustering.base import make_clustering_policy
from repro.clustering.placement import make_placement
from repro.core.architectures import make_architecture
from repro.core.buffering import BufferManager
from repro.core.cluster import Cluster
from repro.core.clustering_manager import ClusteringManager
from repro.core.failures import FailureInjector, NoFailures
from repro.core.io_subsystem import IOSubsystem
from repro.core.locks import LockManager
from repro.core.network import Network
from repro.core.object_manager import ObjectManager
from repro.core.parameters import ArrivalConfig, MemoryModel, VOODBConfig
from repro.core.prefetch import make_prefetch_policy
from repro.core.results import ClusteringReport, PhaseResults, SimulationResults
from repro.core.transaction_manager import TransactionManager
from repro.core.users import Users
from repro.core.virtual_memory import VirtualMemoryManager
from repro.ocb.database import Database
from repro.ocb.parameters import OCBConfig
from repro.ocb.schema import Schema

# ----------------------------------------------------------------------
# Database cache
# ----------------------------------------------------------------------
_DATABASE_CACHE: Dict[OCBConfig, Database] = {}


def build_database(ocb: OCBConfig) -> Database:
    """Generate (or reuse) the OCB base for a config.

    The base is deterministic in ``ocb`` (including ``rseed``), so
    experiment sweeps that vary only VOODB parameters or replication
    seeds share one graph — exactly how §4.4 "reused the object base".
    """
    db = _DATABASE_CACHE.get(ocb)
    if db is None:
        rng = RandomStream(ocb.rseed, "ocb-generation")
        db = Database.generate(Schema.generate(ocb, rng), rng)
        _DATABASE_CACHE[ocb] = db
    return db


def clear_database_cache() -> None:
    """Drop cached bases (tests and memory-conscious sweeps)."""
    _DATABASE_CACHE.clear()
    _PLACEMENT_CACHE.clear()


# ----------------------------------------------------------------------
# Placement cache
# ----------------------------------------------------------------------
#: (ocb config, initpl, usable_page_bytes) -> (PageMap, swizzle-cascade
#: cache).  An initial placement is a pure function of the (unmutated)
#: cached base and those two knobs, and replications never write to it
#: on static workloads (dynamic workloads clone the base and take the
#: uncached path; clustering installs a *new* map, leaving the shared
#: one untouched) — so sweeps skip rebuilding the page map, and the VM
#: model's pointer-swizzle cascades, per replication.
_PLACEMENT_CACHE: Dict[tuple, tuple] = {}


def _build_placement(config: VOODBConfig, db: Database, shared_db: bool):
    """The page map plus adoptable swizzle cache for one replication."""
    if not shared_db or db.mutations != 0:
        return make_placement(db, config.initpl, config.usable_page_bytes), None
    key = (config.ocb, config.initpl, config.usable_page_bytes)
    cached = _PLACEMENT_CACHE.get(key)
    if cached is None:
        cached = _PLACEMENT_CACHE[key] = (
            make_placement(db, config.initpl, config.usable_page_bytes),
            {},
        )
    return cached


class VOODBSimulation:
    """One replication of the VOODB evaluation model."""

    def __init__(
        self,
        config: VOODBConfig,
        seed: int = 0,
        database: Optional[Database] = None,
        clustering_kwargs: Optional[dict] = None,
        clone_database: Optional[bool] = None,
    ) -> None:
        self.config = config
        self.seed = seed
        self.db = database if database is not None else build_database(config.ocb)
        if len(self.db) != config.ocb.no:
            raise ValueError(
                "database/config mismatch: "
                f"db has {len(self.db)} objects, config.ocb.no={config.ocb.no}"
            )
        if clone_database is None:
            clone_database = config.ocb.pinsert + config.ocb.pdelete > 0
        if clone_database:
            # Dynamic workloads mutate the graph: give this replication
            # its own copy so the shared cache stays pristine.  Callers
            # planning a dynamic ``ocb_override`` phase must pass
            # ``clone_database=True`` themselves.
            self.db = self.db.clone()
        self.sim = Simulation(seed=seed)

        # Figure 4 active resources, bottom-up.
        placement, shared_refs = _build_placement(
            config, self.db, not clone_database and database is None
        )
        self.object_manager = ObjectManager(
            self.db, placement, shared_page_refs_cache=shared_refs
        )
        self.network = Network(self.sim, config)
        if config.cluster.enabled:
            # Sharded multi-server topology: every node carries its own
            # buffer/disk/lock table; the model-facing ``io``/``memory``/
            # ``locks`` attributes become cluster-wide aggregate views.
            # Unsupported combinations (VM, clustering policies,
            # prefetch) were rejected at config construction.  Hazards
            # live at the nodes (node-indexed injectors with replica
            # failover); ``cluster.failures`` aggregates them — the TM's
            # global crash probe is a no-op on clusters.
            self.cluster = Cluster(self.sim, config, self.object_manager)
            self.io = self.cluster.io
            self.memory = self.cluster.memory
            self.locks = self.cluster.locks
            self.failures = self.cluster.failures
            clustering_memory = self.cluster.nodes[0].memory
            clustering_io = self.cluster.nodes[0].io
        else:
            self.cluster = None
            self.io = IOSubsystem(self.sim, config)
            self.locks = LockManager(self.sim, config)
            if config.memory_model is MemoryModel.VIRTUAL_MEMORY:
                self.memory = VirtualMemoryManager(
                    config,
                    self.sim.stream("memory"),
                    pages_referenced_by_page=(
                        self.object_manager.pages_referenced_by_page
                    ),
                )
            else:
                self.memory = BufferManager(config, self.sim.stream("memory"))
            if config.failures.enabled:
                self.failures = FailureInjector(
                    self.sim, config.failures, self.memory
                )
                self.io.failures = self.failures
            else:
                self.failures = NoFailures()
            clustering_memory = self.memory
            clustering_io = self.io
        policy = make_clustering_policy(config.clustp, **(clustering_kwargs or {}))
        self.clustering = ClusteringManager(
            config,
            self.db,
            self.object_manager,
            clustering_memory,
            clustering_io,
            policy,
        )
        prefetcher = make_prefetch_policy(config.prefetch)
        self.architecture = make_architecture(
            self.sim,
            config,
            self.db,
            self.object_manager,
            self.memory,
            self.io,
            self.network,
            prefetcher,
            cluster=self.cluster,
        )
        self.tm = TransactionManager(
            self.sim,
            config,
            self.architecture,
            self.locks,
            self.clustering,
            failures=self.failures,
        )
        self.users = Users(self.sim, config, self.db, self.tm)
        self._phase_counter = 0
        # Calibration of the phase being collected (aggregated tier
        # only); stashed by run_phase, consumed by _collect.
        self._phase_calibration = None

    # ------------------------------------------------------------------
    # Phase API
    # ------------------------------------------------------------------
    def run_phase(
        self,
        transactions: Optional[int] = None,
        workload: str = "mix",
        stream_label: Optional[str] = None,
        hierarchy_type: int = 0,
        hierarchy_depth: Optional[int] = None,
        ocb_override: Optional[OCBConfig] = None,
        arrivals: Optional[ArrivalConfig] = None,
        thinktime: Optional[float] = None,
        nusers: Optional[int] = None,
    ) -> PhaseResults:
        """Run one batch of transactions and return its metrics.

        Usage I/Os are separated from clustering overhead: reorganization
        reads/writes performed inside the phase (automatic triggering)
        are reported in the clustering report, not in the phase's I/Os.
        ``ocb_override`` swaps the workload definition for this phase
        only (churn phases, workload-drift studies).

        ``arrivals`` selects the arrival process for this phase: by
        default the config's (closed NUSERS loop unless the scenario
        configured an open source).  ``thinktime`` and ``nusers``
        override the closed loop's think time / user population for this
        phase only (ignored in open modes).
        """
        if transactions is None:
            transactions = self.config.ocb.hotn
        if stream_label is None:
            stream_label = f"phase-{self._phase_counter}"
        self._phase_counter += 1
        snapshot = self._snapshot()
        self.tm.begin_phase()
        if arrivals is None:
            arrivals = self.config.arrivals
        aggregation = self.config.aggregation
        if aggregation.enabled and not arrivals.open:
            # Flow-aggregated tier: the closed population collapsed to a
            # calibrated open stream plus the probe cohort.  Calibration
            # is memoized per config, so replications share one solve.
            from repro.core.aggregation import calibrate_aggregate_rate

            calibration = calibrate_aggregate_rate(self.config)
            self._phase_calibration = calibration
            self.users.launch_aggregated(
                transactions,
                calibration.rate_tps,
                aggregation,
                workload=workload,
                stream_label=stream_label,
                hierarchy_type=hierarchy_type,
                hierarchy_depth=hierarchy_depth,
                ocb_override=ocb_override,
            )
        elif arrivals.open:
            self.users.launch_open(
                transactions,
                arrivals,
                workload=workload,
                stream_label=stream_label,
                hierarchy_type=hierarchy_type,
                hierarchy_depth=hierarchy_depth,
                ocb_override=ocb_override,
            )
        else:
            self.users.launch(
                transactions,
                workload=workload,
                stream_label=stream_label,
                hierarchy_type=hierarchy_type,
                hierarchy_depth=hierarchy_depth,
                ocb_override=ocb_override,
                thinktime=thinktime,
                nusers=nusers,
            )
        self.sim.run()
        if self.cluster is not None and self.cluster.drain_repairs():
            # Fault layer with anti-entropy: run the staleness out of
            # the drained phase (waits for heals, then one sweep) so
            # every replica converges to the commit point.
            self.sim.run()
        return self._collect(snapshot)

    def demand_clustering(self) -> ClusteringReport:
        """Figure 4's external clustering demand, run to completion.

        Returns a report of the *delta* caused by this demand (overhead
        I/Os, clusters installed), leaving cumulative accounting in
        ``self.clustering.report``.
        """
        if self.cluster is not None:
            raise ValueError(
                "clustering reorganization is not supported on cluster "
                "topologies yet (see ROADMAP open items)"
            )
        before_reads = self.clustering.report.overhead_reads
        before_writes = self.clustering.report.overhead_writes
        before_reorgs = self.clustering.report.reorganizations
        self.sim.process(
            self.clustering.demand_clustering(), name="clustering-demand"
        )
        self.sim.run()
        self.architecture.notify_reorganized()
        report = self.clustering.report
        return ClusteringReport(
            policy=report.policy,
            reorganizations=report.reorganizations - before_reorgs,
            overhead_reads=report.overhead_reads - before_reads,
            overhead_writes=report.overhead_writes - before_writes,
            clusters=report.clusters,
            clustered_objects=report.clustered_objects,
            moved_objects=report.clustered_objects,
        )

    # ------------------------------------------------------------------
    # Standard run (§4.3): COLDN warm-up + HOTN measured
    # ------------------------------------------------------------------
    def run(self) -> SimulationResults:
        ocb = self.config.ocb
        if ocb.coldn > 0:
            self.run_phase(ocb.coldn, stream_label="cold")
        phase = self.run_phase(ocb.hotn, stream_label="hot")
        sim = self.sim
        kernel = {
            "events_wheel_pushed": float(sim.events_wheel_pushed),
            "events_pooled_reused": float(sim.events_pooled_reused),
            "ticks_overflowed": float(sim.events_ticks_overflowed),
            "wheel_recalibrations": float(sim.events_wheel_recalibrations),
            "holds_warped": float(sim.events_holds_warped),
        }
        return SimulationResults(
            phase=phase,
            clustering=self.clustering.report,
            seed=self.seed,
            kernel=kernel,
        )

    # ------------------------------------------------------------------
    # Counter snapshots
    # ------------------------------------------------------------------
    def _snapshot(self) -> Dict[str, float]:
        io, memory, network, locks, tm = (
            self.io,
            self.memory,
            self.network,
            self.locks,
            self.tm,
        )
        arch = self.architecture
        report = self.clustering.report
        snapshot = {
            "time": self.sim.now,
            "reads": io.reads,
            "writes": io.writes,
            "swap_reads": io.swap_reads,
            "swap_writes": io.swap_writes,
            "sequential": io.sequential_accesses,
            "hits": memory.hits,
            "misses": memory.misses,
            "prefetched": arch.prefetched_pages,
            "prefetch_hits": arch.prefetch_hits,
            "net_messages": network.messages,
            "net_bytes": network.bytes_sent,
            "net_time": network.busy_ticks,
            "lock_acq": locks.acquisitions,
            "lock_waits": locks.waits,
            "lock_wait_time": locks.wait_ticks,
            "transactions": tm.transactions_executed,
            "accesses": tm.objects_accessed,
            "overhead_reads": report.overhead_reads,
            "overhead_writes": report.overhead_writes,
            "transient_faults": self.failures.transient_faults,
            "crashes": self.failures.crashes,
            "downtime": self.failures.downtime_ticks,
        }
        cluster = self.cluster
        if cluster is not None:
            snapshot["interconnect_messages"] = cluster.interconnect.messages
            snapshot["interconnect_bytes"] = cluster.interconnect.bytes_sent
            snapshot["remote_fetches"] = cluster.remote_fetches
            snapshot["replica_reads"] = cluster.replica_reads
            snapshot["replica_writes"] = cluster.replica_writes
            snapshot["stale_reads"] = cluster.stale_reads
            snapshot["replica_applies"] = cluster.replica_applies
            snapshot["replica_lag"] = cluster.replica_lag_ticks
            snapshot["read_failovers"] = cluster.read_failovers
            snapshot["write_recovery_waits"] = cluster.write_recovery_waits
            snapshot["cluster_reads"] = cluster.reads_served
            if cluster.faults_on:
                snapshot["partitions"] = cluster.partitions
                snapshot["partition_ticks"] = cluster.partition_ticks
                snapshot["gray_episodes"] = cluster.gray_episodes
                snapshot["degraded_reads"] = cluster.degraded_reads
                snapshot["remote_timeouts"] = cluster.remote_timeouts
                snapshot["remote_retries"] = cluster.remote_retries
                snapshot["abandoned_reads"] = cluster.abandoned_reads
                snapshot["elections"] = cluster.elections
                snapshot["promotions"] = cluster.promotions
                snapshot["repair_pages"] = cluster.repair_pages
                snapshot["read_repairs"] = cluster.read_repairs
            for node in cluster.nodes:
                index = node.index
                snapshot[f"server{index}_ios"] = node.io.total_ios
                snapshot[f"server{index}_accesses"] = node.accesses
                snapshot[f"server{index}_busy"] = node.io.busy_ticks
        return snapshot

    def _collect(self, snapshot: Dict[str, float]) -> PhaseResults:
        """Phase metrics as counter deltas.

        This is the tick→ms boundary: every duration counter in the
        snapshot is integer ticks, and the conversions below are the
        only place phase durations become float milliseconds.
        """
        current = self._snapshot()

        def delta(key: str) -> float:
            return current[key] - snapshot[key]

        # Reorganizations inside the phase billed I/Os on the shared
        # disk; pull them out of the usage figures.
        overhead_reads = delta("overhead_reads")
        overhead_writes = delta("overhead_writes")
        response = self.tm.phase_response
        aggregation_fields: Dict[str, object] = {}
        calibration = self._phase_calibration
        if calibration is not None:
            self._phase_calibration = None
            users = self.users
            aggregation_fields = {
                "aggregation_population": calibration.population,
                "aggregate_transactions": users.aggregate_completions,
                "probe_transactions": len(users.probe_response_ticks),
                "probe_response_times_ms": tuple(
                    ticks * MS_PER_TICK
                    for ticks in users.probe_response_ticks
                ),
                "calibrated_rate_tps": calibration.rate_tps,
                "calibration_iterations": calibration.iterations,
                "calibration_converged": calibration.converged,
                "calibration_trace": calibration.trace,
            }
        cluster_fields: Dict[str, object] = {}
        if self.cluster is not None:
            indices = [node.index for node in self.cluster.nodes]
            cluster_fields = {
                "server_ios": tuple(
                    int(delta(f"server{i}_ios")) for i in indices
                ),
                "server_accesses": tuple(
                    int(delta(f"server{i}_accesses")) for i in indices
                ),
                "server_busy_ms": tuple(
                    delta(f"server{i}_busy") * MS_PER_TICK for i in indices
                ),
                "interconnect_messages": int(delta("interconnect_messages")),
                "interconnect_bytes": int(delta("interconnect_bytes")),
                "remote_fetches": int(delta("remote_fetches")),
                "replica_reads": int(delta("replica_reads")),
                "replica_writes": int(delta("replica_writes")),
                "stale_reads": int(delta("stale_reads")),
                "replica_applies": int(delta("replica_applies")),
                "replica_lag_sum_ms": delta("replica_lag") * MS_PER_TICK,
                "read_failovers": int(delta("read_failovers")),
                "write_recovery_waits": int(delta("write_recovery_waits")),
                "cluster_reads": int(delta("cluster_reads")),
            }
            if self.cluster.faults_on:
                cluster_fields["fault_layer"] = True
                cluster_fields["partitions"] = int(delta("partitions"))
                cluster_fields["partition_ms"] = (
                    delta("partition_ticks") * MS_PER_TICK
                )
                cluster_fields["gray_episodes"] = int(delta("gray_episodes"))
                cluster_fields["degraded_reads"] = int(
                    delta("degraded_reads")
                )
                cluster_fields["remote_timeouts"] = int(
                    delta("remote_timeouts")
                )
                cluster_fields["remote_retries"] = int(
                    delta("remote_retries")
                )
                cluster_fields["abandoned_reads"] = int(
                    delta("abandoned_reads")
                )
                cluster_fields["elections"] = int(delta("elections"))
                cluster_fields["promotions"] = int(delta("promotions"))
                cluster_fields["repair_pages"] = int(delta("repair_pages"))
                cluster_fields["read_repairs"] = int(delta("read_repairs"))
            if self.cluster.async_mode:
                # Run-to-date high-water marks (not phase deltas): the
                # deepest each node's apply queue has ever been.
                cluster_fields["apply_queue_peak"] = tuple(
                    node.queue_peak for node in self.cluster.nodes
                )
        return PhaseResults(
            transactions=int(delta("transactions")),
            object_accesses=int(delta("accesses")),
            reads=int(delta("reads") - overhead_reads),
            writes=int(delta("writes") - overhead_writes),
            swap_reads=int(delta("swap_reads")),
            swap_writes=int(delta("swap_writes")),
            buffer_hits=int(delta("hits")),
            buffer_misses=int(delta("misses")),
            prefetched_pages=int(delta("prefetched")),
            prefetch_hits=int(delta("prefetch_hits")),
            sequential_reads=int(delta("sequential")),
            network_messages=int(delta("net_messages")),
            network_bytes=int(delta("net_bytes")),
            network_time_ms=delta("net_time") * MS_PER_TICK,
            lock_acquisitions=int(delta("lock_acq")),
            lock_waits=int(delta("lock_waits")),
            lock_wait_time_ms=delta("lock_wait_time") * MS_PER_TICK,
            response_time_sum_ms=response.total * MS_PER_TICK,
            response_time_max_ms=max(response.maximum, 0) * MS_PER_TICK,
            response_times_ms=tuple(
                ticks * MS_PER_TICK for ticks in self.tm.phase_response_series
            ),
            elapsed_ms=delta("time") * MS_PER_TICK,
            transactions_by_kind=dict(self.tm.phase_kind_counts),
            transient_faults=int(delta("transient_faults")),
            crashes=int(delta("crashes")),
            downtime_ms=delta("downtime") * MS_PER_TICK,
            **aggregation_fields,
            **cluster_fields,
        )


def run_replication(
    config: VOODBConfig,
    seed: int = 0,
    database: Optional[Database] = None,
    clustering_kwargs: Optional[dict] = None,
) -> SimulationResults:
    """Run one standard replication (§4.3 protocol) and return results.

    The population knobs are validated eagerly (not just at config
    construction) so a config mutated past ``__post_init__`` — e.g. via
    ``object.__setattr__`` in exploratory code — fails here with a clear
    message instead of a ``ZeroDivisionError`` deep inside Users.
    """
    if config.nusers < 1:
        raise ValueError(f"nusers must be >= 1, got {config.nusers}")
    if config.multilvl < 1:
        raise ValueError(
            f"multilvl must be >= 1, got {config.multilvl}: the scheduler "
            "needs at least one multiprogramming slot"
        )
    model = VOODBSimulation(
        config, seed=seed, database=database, clustering_kwargs=clustering_kwargs
    )
    return model.run()
