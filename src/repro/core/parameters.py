"""VOODB's parameter set (paper Table 3).

Every active resource of the knowledge model carries parameters; this
module gathers them into one immutable :class:`VOODBConfig`, keyed by the
codes the paper prints (SYSCLASS, NETTHRU, PGSIZE, BUFFSIZE, PGREP,
PREFETCH, CLUSTP, INITPL, DISKSEA, DISKLAT, DISKTRA, MULTILVL, GETLOCK,
RELLOCK, NUSERS).  Defaults are the Table 3 defaults.

Paper Table 4 instantiates this config twice — for O2 and for Texas —
and :mod:`repro.systems` ships those instantiations ready-made.

Time unit: **milliseconds** of simulated time throughout (the disk
parameters are given in ms in Table 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Optional, Tuple

from repro.core.failures import FailureConfig, FaultConfig, RetryConfig
from repro.core.overrides import checked_replace
from repro.ocb.parameters import OCBConfig

#: Page sizes Table 3 allows for PGSIZE.
ALLOWED_PAGE_SIZES = (512, 1024, 2048, 4096)


def _default_failures() -> FailureConfig:
    return FailureConfig()


class SystemClass(str, Enum):
    """Table 3 "System class": the Client-Server organization to model.

    §3.3: VOODB "is especially suitable to page server systems (like
    ObjectStore or O2), but can also be used to model object server
    systems (like ORION or ONTOS), or database server systems, or even
    multiserver hybrid systems (like GemStone)".
    """

    CENTRALIZED = "centralized"
    OBJECT_SERVER = "object_server"
    PAGE_SERVER = "page_server"
    DB_SERVER = "db_server"


class MemoryModel(str, Enum):
    """How main memory holds pages.

    ``BUFFER`` — a classic database buffer of BUFFSIZE page frames
    (O2's server cache).  ``VIRTUAL_MEMORY`` — the OS-paged model Texas
    relies on (§4.3.2): loading a page *reserves* frames for every page
    it references, and memory pressure turns those reservations into
    swap I/Os.
    """

    BUFFER = "buffer"
    VIRTUAL_MEMORY = "virtual_memory"


class ArrivalMode(str, Enum):
    """How transactions enter the system.

    ``CLOSED`` — the Table 3 population model: NUSERS user processes in
    a submit/think cycle (the validation experiments).  ``POISSON`` —
    open system, arrivals at a constant rate with exponential gaps.
    ``MMPP`` — open system, bursty arrivals from a two-state
    Markov-modulated Poisson source (calm rate / burst rate).
    """

    CLOSED = "closed"
    POISSON = "poisson"
    MMPP = "mmpp"


@dataclass(frozen=True)
class ArrivalConfig:
    """Transaction arrival process (closed by default, like the paper).

    Rates are in transactions **per simulated second**; dwell times in
    simulated milliseconds.  The MMPP source starts calm, bursts for an
    exponential ``mean_burst_ms`` at ``burst_rate_tps``, then calms
    again — see :mod:`repro.despy.arrivals`.  A general *k*-phase MMPP
    is configured through ``phase_rates_tps``/``phase_dwell_ms``
    instead; the two-state calm/burst fields are then ignored.

    Every knob is validated **eagerly** at construction: a non-positive
    or non-finite phase rate, a zero-length phase vector, or mismatched
    vector lengths raise :class:`ValueError` here, not deep inside the
    arrival generator mid-replication.
    """

    #: Arrival mode (closed | poisson | mmpp).
    mode: ArrivalMode = ArrivalMode.CLOSED
    #: Mean arrival rate (Poisson), or the calm-state rate (MMPP).
    rate_tps: float = 0.0
    #: Burst-state arrival rate (MMPP only).
    burst_rate_tps: float = 0.0
    #: Mean dwell in the calm state before a burst (MMPP only).
    mean_calm_ms: float = 10_000.0
    #: Mean burst duration (MMPP only).
    mean_burst_ms: float = 1_000.0
    #: General MMPP phase rates (per second), cycled 0 -> 1 -> ... -> 0.
    #: ``None`` (default) = use the two-state calm/burst fields.
    phase_rates_tps: Optional[Tuple[float, ...]] = None
    #: Mean dwell (ms) in each phase; must pair with ``phase_rates_tps``.
    phase_dwell_ms: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if not isinstance(self.mode, ArrivalMode):
            object.__setattr__(self, "mode", ArrivalMode(self.mode))
        for name in ("phase_rates_tps", "phase_dwell_ms"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        if self.mode is ArrivalMode.POISSON:
            self._check_rate("rate_tps", self.rate_tps)
        if self.mode is ArrivalMode.MMPP:
            self._check_mmpp()
        elif self.phase_rates_tps is not None or self.phase_dwell_ms is not None:
            raise ValueError(
                "phase_rates_tps/phase_dwell_ms only apply to mmpp arrivals, "
                f"not mode {self.mode.value!r}"
            )
        if self.rate_tps < 0 or self.burst_rate_tps < 0:
            raise ValueError("arrival rates must be >= 0")

    @staticmethod
    def _check_rate(name: str, value: float) -> None:
        if not (value > 0) or not math.isfinite(value):
            raise ValueError(f"{name} must be finite and > 0, got {value}")

    @staticmethod
    def _check_dwell(name: str, value: float) -> None:
        if not (value > 0) or not math.isfinite(value):
            raise ValueError(
                f"dwell time {name} must be finite and > 0, got {value}"
            )

    def _check_mmpp(self) -> None:
        rates, dwells = self.phase_rates_tps, self.phase_dwell_ms
        if (rates is None) != (dwells is None):
            raise ValueError(
                "mmpp phase vectors come in pairs: give both phase_rates_tps "
                "and phase_dwell_ms, or neither"
            )
        if rates is not None and dwells is not None:
            if not rates or not dwells:
                raise ValueError("mmpp phase vectors must not be zero-length")
            if len(rates) != len(dwells):
                raise ValueError(
                    f"mmpp phase vectors must pair up, got {len(rates)} rates "
                    f"and {len(dwells)} dwell times"
                )
            if len(rates) < 2:
                raise ValueError(
                    f"an mmpp needs at least two phases, got {len(rates)}"
                )
            for index, rate in enumerate(rates):
                self._check_rate(f"phase_rates_tps[{index}]", rate)
            for index, dwell in enumerate(dwells):
                self._check_dwell(f"phase_dwell_ms[{index}]", dwell)
            return
        self._check_rate("rate_tps", self.rate_tps)
        self._check_rate("burst_rate_tps", self.burst_rate_tps)
        self._check_dwell("mean_calm_ms", self.mean_calm_ms)
        self._check_dwell("mean_burst_ms", self.mean_burst_ms)

    @property
    def open(self) -> bool:
        """Whether this is an open-system (source-driven) arrival mode."""
        return self.mode is not ArrivalMode.CLOSED

    def interarrivals(self, stream):
        """Infinite interarrival-gap generator over ``stream`` (ms).

        Only meaningful for open modes; the closed mode has no arrival
        point process (the population is fixed).
        """
        from repro.despy.arrivals import mmpp_interarrivals, poisson_interarrivals

        if self.mode is ArrivalMode.POISSON:
            return poisson_interarrivals(stream, self.rate_tps)
        if self.mode is ArrivalMode.MMPP:
            if self.phase_rates_tps is not None:
                return mmpp_interarrivals(
                    stream, self.phase_rates_tps, self.phase_dwell_ms
                )
            return mmpp_interarrivals(
                stream,
                (self.rate_tps, self.burst_rate_tps),
                (self.mean_calm_ms, self.mean_burst_ms),
            )
        raise ValueError("closed arrivals have no interarrival process")


@dataclass(frozen=True)
class AggregationConfig:
    """Flow aggregation: a large closed population as an open stream.

    A closed population of ``population`` users with think time Z and
    response time R submits, in steady state, at the interactive-law
    rate λ = population / (Z + R(λ)).  When enabled (``population > 0``)
    the model replaces the one-process-per-user closed loop with a
    calibrated open arrival source at that fixed-point rate (solved by
    :mod:`repro.core.aggregation` from short pilot runs), plus a
    ``probe_cohort`` of real closed-loop user processes riding alongside
    the stream so per-user latency percentiles stay observable.  Z is
    the workload's ``ocb.thinktime`` — the same knob the closed loop
    uses, so an aggregated run and its full per-user twin share one
    think-time source of truth.

    Every knob is validated **eagerly** at construction, with
    did-you-mean guidance where a neighbouring knob is the likely fix —
    the λ = N/Z seed rate divides by the think time, so a zero think
    time must fail here, not as a ZeroDivisionError mid-calibration.
    """

    #: Simulated user population (0 = aggregation disabled).
    population: int = 0
    #: Real closed-loop user processes observing per-user latency.
    probe_cohort: int = 20
    #: Relative convergence tolerance of the fixed-point rate solve.
    tolerance: float = 0.05
    #: Calibration iteration cap (each iteration is one pilot run).
    max_iterations: int = 8
    #: Transactions per calibration pilot run (MSER-5 needs >= 10).
    pilot_transactions: int = 150
    #: Seed of the calibration pilot runs — pinned independently of the
    #: replication seeds so the calibrated rate is a pure function of
    #: the config, identical across replications and executors.
    pilot_seed: int = 104729

    def __post_init__(self) -> None:
        if self.population < 0:
            raise ValueError(
                f"population must be >= 0 (0 disables aggregation), "
                f"got {self.population}"
            )
        if self.probe_cohort < 0:
            raise ValueError(
                f"probe_cohort must be >= 0, got {self.probe_cohort}"
            )
        if not self.enabled:
            return
        if self.probe_cohort >= self.population:
            raise ValueError(
                f"probe_cohort {self.probe_cohort} must be smaller than the "
                f"population {self.population} (did you mean a plain closed "
                "run with nusers instead of aggregation?)"
            )
        if not (0.0 < self.tolerance < 1.0) or not math.isfinite(self.tolerance):
            raise ValueError(
                f"tolerance must be in (0, 1), got {self.tolerance}"
            )
        if self.max_iterations < 1:
            raise ValueError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        if self.pilot_transactions < 10:
            raise ValueError(
                f"pilot_transactions must be >= 10 (the MSER-5 steady-state "
                f"floor), got {self.pilot_transactions}"
            )
        if self.pilot_seed < 0:
            raise ValueError(f"pilot_seed must be >= 0, got {self.pilot_seed}")

    @property
    def enabled(self) -> bool:
        """Whether the aggregated source tier is active."""
        return self.population > 0


def check_aggregation_think_time(thinktime: float) -> None:
    """Eagerly reject a think time the interactive law cannot use.

    The calibration seeds its fixed point at λ0 = population/Z, so a
    zero/negative/non-finite Z must fail at configuration time with a
    message naming the knob to fix — not as a bare ZeroDivisionError
    deep inside the pilot runs (the old ``Users`` launch-time failure
    mode).
    """
    if not (thinktime > 0) or not math.isfinite(thinktime):
        raise ValueError(
            "aggregated arrivals derive their rate from "
            "population / (thinktime + response_time), so the think time "
            f"must be finite and > 0 ms, got {thinktime!r} "
            "(did you mean to set 'thinktime' in the ocb config section?)"
        )


#: Shard-placement strategies a :class:`ClusterConfig` may select.
ALLOWED_PLACEMENTS = ("hash", "range")

#: Replication modes a :class:`ReplicationConfig` may select.
ALLOWED_REPLICATION_MODES = ("sync", "async")


@dataclass(frozen=True)
class ReplicationConfig:
    """The consistency spectrum of a replicated cluster.

    ``mode = "sync"`` (the default) is the original semantics: a write
    installs the page image at every replica inside the transaction, so
    replicas are never stale and none of the other knobs apply (they
    must stay at their defaults).

    ``mode = "async"`` decouples propagation from the write: the primary
    applies immediately and ships the page image to each non-primary
    replica's **apply queue**, drained by a per-node applier process —
    replicas lag, reads can be stale, and the knobs below trade
    consistency back in:

    * ``write_quorum`` W — the writer only returns once the primary plus
      the first W-1 successor replicas have applied the image;
    * ``read_quorum`` R — a read consults R replicas (version probes
      over the interconnect) and serves from the freshest.  With
      R + W > replication a read always sees the last acknowledged
      write;
    * ``read_your_writes`` / ``monotonic_reads`` — session guarantees:
      reads are routed to a replica that has applied, respectively, the
      latest write of the page or at least the freshest version any
      earlier read served (falling back to the primary);
    * ``apply_delay_ms`` — per-image apply cost at the replica (log
      replay, index maintenance), the main source of replication lag.
    """

    #: Replication mode ("sync" | "async").
    mode: str = "sync"
    #: Replicas a read consults before serving (async mode).
    read_quorum: int = 1
    #: Applied copies a write waits for before returning (async mode).
    write_quorum: int = 1
    #: Route reads to a replica that applied the session's own writes.
    read_your_writes: bool = False
    #: Never serve a version older than one already served.
    monotonic_reads: bool = False
    #: Apply cost per shipped page image at a replica (async mode).
    apply_delay_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in ALLOWED_REPLICATION_MODES:
            raise ValueError(
                f"replication mode must be one of "
                f"{ALLOWED_REPLICATION_MODES}, got {self.mode!r}"
            )
        if self.read_quorum < 1 or self.write_quorum < 1:
            raise ValueError(
                f"read/write quorums must be >= 1, got "
                f"R={self.read_quorum} W={self.write_quorum}"
            )
        if not (self.apply_delay_ms >= 0) or not math.isfinite(
            self.apply_delay_ms
        ):
            raise ValueError(
                f"apply_delay_ms must be finite and >= 0, "
                f"got {self.apply_delay_ms}"
            )
        if self.mode == "sync" and (
            self.read_quorum != 1
            or self.write_quorum != 1
            or self.read_your_writes
            or self.monotonic_reads
            or self.apply_delay_ms != 0.0
        ):
            raise ValueError(
                "sync replication installs every write at every replica "
                "inside the transaction; quorums, session guarantees and "
                "apply delays only apply to mode 'async' "
                "(did you mean mode: async?)"
            )

    @property
    def is_async(self) -> bool:
        """Whether the asynchronous apply-queue machinery is active."""
        return self.mode == "async"


@dataclass(frozen=True)
class ClusterConfig:
    """Multi-server cluster topology (§3.3's "multiserver hybrid systems").

    ``servers = 0`` (the default) disables the cluster layer entirely —
    the paper's single-server assembly.  ``servers >= 1`` shards the
    object base over that many server nodes, each with its own buffer,
    disk and lock table (see :mod:`repro.core.cluster`); a one-node
    cluster is the scale-out ramp's baseline point.

    ``placement`` picks the shard router: ``"hash"`` scatters pages
    uniformly (Fibonacci hashing over the page id), ``"range"`` keeps
    contiguous page runs on one node.  ``replication`` stores every
    page on that many consecutive nodes — reads balance round-robin
    over the replicas, writes propagate to all of them across the
    inter-server network (synchronously inside the transaction by
    default; :class:`ReplicationConfig` switches the propagation
    discipline).  ``interconnect_mbps`` throttles that network
    (``math.inf`` = free, like Table 4's NETTHRU).
    """

    #: Number of server nodes (0 = no cluster layer).
    servers: int = 0
    #: Shard placement strategy ("hash" | "range").
    placement: str = "hash"
    #: Copies of every page (1 = no replication).
    replication: int = 1
    #: Inter-server network throughput in MB/s (inf = free).
    interconnect_mbps: float = math.inf
    #: Salt for the hash router (placement is still seed-independent
    #: across replications: it is part of the frozen config).
    placement_seed: int = 0

    def __post_init__(self) -> None:
        if self.servers < 0:
            raise ValueError(f"servers must be >= 0, got {self.servers}")
        if self.placement not in ALLOWED_PLACEMENTS:
            raise ValueError(
                f"placement must be one of {ALLOWED_PLACEMENTS}, "
                f"got {self.placement!r}"
            )
        if self.replication < 1:
            raise ValueError(
                f"replication must be >= 1, got {self.replication}"
            )
        if self.enabled and self.replication > self.servers:
            raise ValueError(
                f"replication {self.replication} exceeds the "
                f"{self.servers}-server cluster"
            )
        if not (self.interconnect_mbps > 0):
            raise ValueError(
                f"interconnect_mbps must be > 0 (or inf), "
                f"got {self.interconnect_mbps}"
            )

    @property
    def enabled(self) -> bool:
        """Whether the cluster layer is active."""
        return self.servers > 0


@dataclass(frozen=True)
class VOODBConfig:
    """One instance of the generic evaluation model (paper Table 3).

    Field comments carry the Table 3 parameter codes.  Fields marked
    [reconstructed] are knobs the model needs that Table 3 derives "from
    the specification and configuration of the hardware and software
    systems" rather than printing.
    """

    # -- System ---------------------------------------------------------
    #: SYSCLASS — system class (default: page server, like O2).
    sysclass: SystemClass = SystemClass.PAGE_SERVER
    #: NETTHRU — network throughput in MB/s (``math.inf`` = infinitely
    #: fast network, which is how Table 4 configures O2's local setup).
    netthru: float = 1.0

    # -- Buffering Manager ----------------------------------------------
    #: PGSIZE — disk page size in bytes (512 | 1024 | 2048 | 4096).
    pgsize: int = 4096
    #: BUFFSIZE — buffer size in pages.
    buffsize: int = 500
    #: PGREP — buffer page replacement strategy (registry key; Table 3
    #: lists RANDOM | FIFO | LFU | LRU-K | CLOCK | GCLOCK; default LRU-1).
    pgrep: str = "LRU"
    #: PREFETCH — prefetching policy ("none" per Table 3 default; the §5
    #: extension policies are registered under "one_ahead"/"cluster").
    prefetch: str = "none"
    #: [reconstructed] memory model: database buffer vs OS virtual memory.
    memory_model: MemoryModel = MemoryModel.BUFFER

    # -- Clustering Manager ----------------------------------------------
    #: CLUSTP — object clustering policy ("none" | "dstc" | "greedy").
    clustp: str = "none"
    #: INITPL — objects initial placement.
    initpl: str = "optimized_sequential"

    # -- I/O Subsystem ----------------------------------------------------
    #: DISKSEA — disk search (seek) time in ms.
    disksea: float = 7.4
    #: DISKLAT — disk latency time in ms.
    disklat: float = 4.3
    #: DISKTRA — disk transfer time in ms.
    disktra: float = 0.5
    #: [reconstructed] apply the Figure 5 contiguous-page shortcut (skip
    #: search+latency when the requested page follows the previous one).
    #: Always on in the paper; exposed for the ablation benches.
    sequential_optimization: bool = True

    # -- Transaction Manager ----------------------------------------------
    #: MULTILVL — multiprogramming level (max concurrent transactions).
    multilvl: int = 10
    #: GETLOCK — lock acquisition time in ms (per lock).
    getlock: float = 0.5
    #: RELLOCK — lock release time in ms (per lock).
    rellock: float = 0.5

    # -- Users -------------------------------------------------------------
    #: NUSERS — number of users submitting transactions concurrently.
    nusers: int = 1
    #: [extension] how transactions arrive: the closed NUSERS loop
    #: (default, Table 3) or an open-system source (Poisson / MMPP) —
    #: see :class:`ArrivalConfig` and :mod:`repro.despy.arrivals`.
    arrivals: "ArrivalConfig" = field(default_factory=lambda: ArrivalConfig())
    #: [extension] flow aggregation: collapse a large closed population
    #: into a calibrated open stream plus a probe cohort (disabled by
    #: default) — see :class:`AggregationConfig` and
    #: :mod:`repro.core.aggregation`.
    aggregation: "AggregationConfig" = field(
        default_factory=lambda: AggregationConfig()
    )

    # -- Cluster topology (extension) ---------------------------------------
    #: [extension] multi-server cluster layout (disabled by default) —
    #: see :class:`ClusterConfig` and :mod:`repro.core.cluster`.
    cluster: "ClusterConfig" = field(default_factory=lambda: ClusterConfig())
    #: [extension] replica consistency spectrum (sync by default) — see
    #: :class:`ReplicationConfig`; async mode requires a cluster.
    replication: "ReplicationConfig" = field(
        default_factory=lambda: ReplicationConfig()
    )

    # -- Reconstructed system knobs ----------------------------------------
    #: [reconstructed] storage overhead factor: usable bytes per page =
    #: PGSIZE / storage_overhead.  Chosen per system so the stored base
    #: matches the sizes the paper states (§4.3/§4.4: ~28 MB in O2 and
    #: ~21 MB in Texas for the same NC=50/NO=20 000 OCB base).
    storage_overhead: float = 1.0
    #: [reconstructed] CPU time per object operation in ms (response-time
    #: accounting only; the paper validates on I/O counts).
    cpu_per_object: float = 0.005
    #: [reconstructed] client-side cache in pages (page/object servers).
    #: Table 4 models only the server buffer, hence 0.
    client_buffsize: int = 0
    #: [reconstructed] size in bytes of a request/control message.
    message_bytes: int = 128

    # -- Random hazards (§5 extension module) --------------------------------
    #: Failure injection parameters (disabled by default; see
    #: :mod:`repro.core.failures`).
    failures: "FailureConfig" = field(default_factory=lambda: _default_failures())
    #: [extension] fault-tolerance layer: partitions, gray failures and
    #: the election/anti-entropy recovery machinery (disabled by
    #: default; needs a cluster) — see :class:`~repro.core.failures.FaultConfig`.
    faults: "FaultConfig" = field(default_factory=lambda: FaultConfig())
    #: [extension] timeout/retry/backoff contract on remote operations
    #: (only meaningful with the fault layer active) — see
    #: :class:`~repro.core.failures.RetryConfig`.
    retry: "RetryConfig" = field(default_factory=lambda: RetryConfig())

    # -- Workload -----------------------------------------------------------
    #: The embedded OCB benchmark configuration (§3.3).
    ocb: OCBConfig = field(default_factory=OCBConfig)

    def __post_init__(self) -> None:
        if not isinstance(self.sysclass, SystemClass):
            object.__setattr__(self, "sysclass", SystemClass(self.sysclass))
        if not isinstance(self.memory_model, MemoryModel):
            object.__setattr__(self, "memory_model", MemoryModel(self.memory_model))
        if self.pgsize not in ALLOWED_PAGE_SIZES:
            raise ValueError(
                f"pgsize must be one of {ALLOWED_PAGE_SIZES}, got {self.pgsize}"
            )
        if self.buffsize < 1:
            raise ValueError(f"buffsize must be >= 1, got {self.buffsize}")
        if self.netthru <= 0:
            raise ValueError(f"netthru must be > 0 (or inf), got {self.netthru}")
        for name in ("disksea", "disklat", "disktra"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.multilvl < 1:
            raise ValueError(f"multilvl must be >= 1, got {self.multilvl}")
        if self.getlock < 0 or self.rellock < 0:
            raise ValueError("lock times must be >= 0")
        if self.nusers < 1:
            raise ValueError(f"nusers must be >= 1, got {self.nusers}")
        if self.storage_overhead < 1.0:
            raise ValueError(
                f"storage_overhead must be >= 1.0, got {self.storage_overhead}"
            )
        if self.cpu_per_object < 0:
            raise ValueError("cpu_per_object must be >= 0")
        if self.client_buffsize < 0:
            raise ValueError("client_buffsize must be >= 0")
        if self.message_bytes < 0:
            raise ValueError("message_bytes must be >= 0")
        if self.cluster.enabled:
            self._check_cluster_combination()
        elif self.replication != ReplicationConfig():
            raise ValueError(
                "replication consistency settings need a cluster topology "
                "(set cluster.servers >= 1 and cluster.replication >= 2)"
            )
        if not self.cluster.enabled:
            if self.faults.enabled:
                raise ValueError(
                    "the fault-tolerance layer (partitions, gray failures, "
                    "anti-entropy) needs a cluster topology "
                    "(set cluster.servers >= 1)"
                )
            if self.retry != RetryConfig():
                raise ValueError(
                    "the retry contract governs remote operations between "
                    "cluster nodes and needs a cluster topology "
                    "(set cluster.servers >= 1)"
                )
        if self.aggregation.enabled:
            self._check_aggregation_combination()

    def _check_aggregation_combination(self) -> None:
        """Reject combinations the aggregated source tier cannot honour.

        Eager, like :meth:`_check_cluster_combination`: the error names
        the knob at configuration time, before any pilot run starts.
        """
        check_aggregation_think_time(self.ocb.thinktime)
        if self.arrivals.open:
            raise ValueError(
                "aggregation replaces the arrival process with its own "
                "calibrated open stream and cannot combine with "
                f"arrivals.mode={self.arrivals.mode.value!r} "
                "(did you mean arrivals mode 'closed', the default?)"
            )

    def _check_cluster_combination(self) -> None:
        """Reject model combinations the cluster layer does not support.

        Failing here (eagerly, at config construction) keeps the error
        close to the knob that caused it; the gated features are the
        post-cluster follow-ups tracked in the ROADMAP.
        """
        if self.sysclass not in (
            SystemClass.PAGE_SERVER,
            SystemClass.OBJECT_SERVER,
        ):
            raise ValueError(
                "cluster topologies support page_server and object_server "
                f"system classes only, got {self.sysclass.value!r}"
            )
        if self.memory_model is not MemoryModel.BUFFER:
            raise ValueError(
                "cluster topologies require the buffer memory model "
                "(per-server virtual memory is not modeled)"
            )
        if self.clustp != "none":
            raise ValueError(
                "cluster topologies do not support clustering policies yet, "
                f"got clustp={self.clustp!r}"
            )
        if self.prefetch != "none":
            raise ValueError(
                "cluster topologies do not support prefetching yet, "
                f"got prefetch={self.prefetch!r}"
            )
        replicas = self.cluster.replication
        if (
            self.replication.read_quorum > replicas
            or self.replication.write_quorum > replicas
        ):
            raise ValueError(
                f"read/write quorums (R={self.replication.read_quorum}, "
                f"W={self.replication.write_quorum}) cannot exceed the "
                f"replication factor {replicas}"
            )
        if self.faults.enabled:
            self._check_fault_combination()
        elif self.retry != RetryConfig():
            raise ValueError(
                "retry/timeout settings are inert without the fault layer "
                "(did you mean to set faults.partition_mtbf_ms, "
                "faults.gray_mtbf_ms or faults.repair_interval_ms?)"
            )

    def _check_fault_combination(self) -> None:
        """Reject fault-layer combinations the recovery machinery cannot
        honour, eagerly and naming the offending knob."""
        if self.cluster.replication > 1 and not self.replication.is_async:
            raise ValueError(
                "the fault-tolerance layer repairs replicas and re-elects "
                "primaries through the asynchronous apply machinery; a "
                "replicated cluster under faults needs replication mode "
                "'async' (did you mean mode: async?)"
            )
        servers = self.cluster.servers
        if self.faults.partition_mtbf_ms > 0 and servers < 2:
            raise ValueError(
                "network partitions need >= 2 servers to cut links "
                f"between, got cluster.servers={servers}"
            )
        groups = self.faults.partition_groups
        if groups:
            members = {m for group in groups for m in group}
            if members != set(range(servers)):
                raise ValueError(
                    f"partition_groups must cover every node of the "
                    f"{servers}-server cluster exactly once, got groups "
                    f"over nodes {sorted(members)} "
                    f"(expected {sorted(range(servers))})"
                )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def usable_page_bytes(self) -> int:
        """Object payload a page holds once storage overhead is paid."""
        return max(1, int(self.pgsize / self.storage_overhead))

    @property
    def random_io_time(self) -> float:
        """Search + latency + transfer: the cost of a non-sequential I/O."""
        return self.disksea + self.disklat + self.disktra

    @property
    def sequential_io_time(self) -> float:
        """Transfer only — the Figure 5 contiguous-page shortcut."""
        return self.disktra

    @property
    def network_ms_per_byte(self) -> float:
        """Milliseconds to push one byte at NETTHRU MB/s (0 if infinite)."""
        if math.isinf(self.netthru):
            return 0.0
        bytes_per_ms = self.netthru * (2**20) / 1000.0
        return 1.0 / bytes_per_ms

    # Tick-domain variants of the timing knobs: the model layer converts
    # each millisecond parameter ONCE (at subsystem init) and runs the
    # whole hot path in integer ticks (see repro.despy.timebase).
    @property
    def random_io_ticks(self) -> int:
        from repro.despy.timebase import ms_to_ticks

        return ms_to_ticks(self.random_io_time)

    @property
    def sequential_io_ticks(self) -> int:
        from repro.despy.timebase import ms_to_ticks

        return ms_to_ticks(self.sequential_io_time)

    @property
    def getlock_ticks(self) -> int:
        from repro.despy.timebase import ms_to_ticks

        return ms_to_ticks(self.getlock)

    @property
    def rellock_ticks(self) -> int:
        from repro.despy.timebase import ms_to_ticks

        return ms_to_ticks(self.rellock)

    @property
    def cpu_per_object_ticks(self) -> int:
        from repro.despy.timebase import ms_to_ticks

        return ms_to_ticks(self.cpu_per_object)

    def buffer_bytes(self) -> int:
        return self.buffsize * self.pgsize

    def with_changes(self, **changes) -> "VOODBConfig":
        """Return a validated copy with the given fields replaced.

        Unknown keys raise :class:`ValueError` naming the key and the
        closest valid field (see :mod:`repro.core.overrides`).
        """
        return checked_replace(self, changes)
