"""The Object Manager (knowledge model, Figure 4).

"A given object is requested by the Transaction Manager to the Object
Manager that finds out which disk page contains the object."

The Object Manager owns the OID→page mapping (a
:class:`~repro.clustering.placement.PageMap`) and rebuilds it when the
Clustering Manager reorganizes the base.  OIDs are logical — §4.4 notes
that simulation models "necessarily use logical OIDs", which is exactly
why simulated clustering overhead excludes Texas' physical-OID
reference-update scan.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.clustering.placement import PageMap
from repro.ocb.database import Database


class ObjectManager:
    """Logical-OID object-to-page directory."""

    def __init__(
        self,
        db: Database,
        page_map: PageMap,
        shared_page_refs_cache: dict | None = None,
    ) -> None:
        self.db = db
        self._install(page_map)
        if shared_page_refs_cache is not None:
            # A sweep-wide swizzle-cascade cache adopted from the
            # placement cache: valid because the shared (map, graph)
            # pair is immutable for the configs that supply one.  The
            # mutation stamp must match the live graph, or the first
            # lookup would wipe the warm cache.
            self._page_refs_cache = shared_page_refs_cache
            self._page_refs_mutations = db.mutations
        self.lookups = 0
        self.rebuilds = 0

    def _install(self, page_map: PageMap) -> None:
        # pages_of/page_of run once per object access: bind the mapping's
        # methods here (and again on rebuild) so the hot path skips two
        # attribute hops per lookup.
        self._page_map = page_map
        self._pages_of = page_map.pages_of
        self._page_of = page_map.page_of
        # Swizzle-cascade cache: page -> pages referenced by its
        # objects.  Valid for one (page map, database graph) pair; the
        # map half resets here, the graph half via ``db.mutations``.
        self._page_refs_cache: dict = {}
        self._page_refs_mutations = -1

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------
    def pages_of(self, oid: int) -> range:
        """Page span holding the object (one page for ordinary objects)."""
        self.lookups += 1
        return self._pages_of(oid)

    def page_of(self, oid: int) -> int:
        self.lookups += 1
        return self._page_of(oid)

    def pages_referenced_by(self, oid: int) -> List[int]:
        """Pages of every object ``oid`` references (swizzling cascade)."""
        page_of = self._page_of
        return [page_of(target) for target in self.db.refs(oid)]

    def pages_referenced_by_page(self, page: int) -> List[int]:
        """Distinct pages referenced by the objects living on ``page``.

        This is what Texas' page-fault-time pointer swizzling reserves
        (see :mod:`repro.core.virtual_memory`).  The cascade is a pure
        function of the page map and the object graph, and the VM model
        asks for the same hot pages on every fault — so the result is
        cached until either input changes.
        """
        cache = self._page_refs_cache
        mutations = self.db.mutations
        if mutations != self._page_refs_mutations:
            cache.clear()
            self._page_refs_mutations = mutations
        cached = cache.get(page)
        if cached is not None:
            return cached
        page_map = self._page_map
        db = self.db
        targets = {
            page_map.page_of(target)
            for oid in page_map.objects_on(page)
            for target in db.refs(oid)
        }
        targets.discard(page)
        result = sorted(targets)
        cache[page] = result
        return result

    # ------------------------------------------------------------------
    # Directory maintenance
    # ------------------------------------------------------------------
    @property
    def page_map(self) -> PageMap:
        return self._page_map

    @property
    def total_pages(self) -> int:
        return self._page_map.total_pages

    def objects_on(self, page: int) -> Sequence[int]:
        return self._page_map.objects_on(page)

    def pages_holding(self, oids: Iterable[int]) -> List[int]:
        """Distinct pages (sorted) currently holding the given objects."""
        page_map = self._page_map
        pages = {
            page for oid in oids for page in page_map.pages_of(oid)
        }
        return sorted(pages)

    def rebuild(self, page_map: PageMap) -> None:
        """Install a new mapping after a clustering reorganization."""
        if len(page_map) != len(self.db):
            raise ValueError(
                f"new page map covers {len(page_map)} of {len(self.db)} objects"
            )
        self._install(page_map)
        self.rebuilds += 1

    def allocate(self, oid: int, usable_page_bytes: int) -> int:
        """Assign disk space to a freshly inserted object.

        Called by the Transaction Manager when it executes an OCB insert
        transaction; returns the object's first page.
        """
        page = self._page_map.append_object(
            oid, self.db.size(oid), usable_page_bytes
        )
        # The new object changes what lives on its page (and the insert
        # already bumped db.mutations, but the placement change alone
        # would not have).
        self._page_refs_cache.pop(page, None)
        return page

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ObjectManager objects={len(self.db)} "
            f"pages={self.total_pages} rebuilds={self.rebuilds}>"
        )
