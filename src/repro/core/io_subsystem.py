"""The I/O Subsystem: physical disk accesses (Figure 5).

The knowledge model's "Access Disk" functioning rule (paper Figure 5)
decomposes an I/O request into *search time* + *latency time* + *transfer
time*, with one optimization: **if the requested page is contiguous to
the previously loaded page, search and latency are skipped** and only the
transfer is paid.  That shortcut is why initial placement and clustering
matter to response time and not only to I/O counts.

The disk itself is a despy :class:`~repro.despy.resource.Resource` of
capacity 1 — the "server disk controller and secondary storage" passive
resource of Table 1 — so concurrent transactions serialize on it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List

from repro.despy.process import Hold, Release, Request
from repro.despy.resource import Resource
from repro.core.failures import NoFailures
from repro.core.parameters import VOODBConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.despy.engine import Simulation


class IOSubsystem:
    """Disk model with per-page timing and the Figure 5 shortcut."""

    def __init__(self, sim: "Simulation", config: VOODBConfig) -> None:
        self.sim = sim
        self.config = config
        self.disk = Resource(sim, "disk", capacity=1)
        #: hazard source consulted per operation (§5 failures module);
        #: the model swaps in a live FailureInjector when configured.
        self.failures = NoFailures()
        self._last_page: int = -2  # nothing is contiguous to the start
        # Counters
        self.reads = 0
        self.writes = 0
        self.swap_reads = 0
        self.swap_writes = 0
        self.sequential_accesses = 0
        self.busy_time_ms = 0.0

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def access_time(self, page: int) -> float:
        """Service time for one page, applying the contiguity shortcut."""
        if page == self._last_page + 1 and self.config.sequential_optimization:
            self.sequential_accesses += 1
            time = self.config.sequential_io_time
        else:
            time = self.config.random_io_time
        self._last_page = page
        return time

    # ------------------------------------------------------------------
    # Process-style operations (yield from these inside processes)
    # ------------------------------------------------------------------
    def read_page(self, page: int):
        """Read one page: reserve the disk, pay the service time."""
        yield Request(self.disk)
        time = self.access_time(page) + self.failures.io_penalty()
        self.reads += 1
        self.busy_time_ms += time
        yield Hold(time)
        yield Release(self.disk)

    def write_page(self, page: int):
        """Write one page (same head mechanics as a read)."""
        yield Request(self.disk)
        time = self.access_time(page) + self.failures.io_penalty()
        self.writes += 1
        self.busy_time_ms += time
        yield Hold(time)
        yield Release(self.disk)

    def read_pages(self, pages: Iterable[int]):
        """Bulk read; sorts the batch so contiguous runs pay transfer only.

        Used by the Clustering Manager's reorganization, which reads whole
        regions of the base (paper §4.4 "clustering overhead").
        """
        batch: List[int] = sorted(set(pages))
        yield Request(self.disk)
        total = self.failures.io_penalty() if batch else 0.0
        for page in batch:
            time = self.access_time(page)
            self.reads += 1
            total += time
        self.busy_time_ms += total
        yield Hold(total)
        yield Release(self.disk)

    def write_pages(self, pages: Iterable[int]):
        """Bulk write, contiguity-aware like :meth:`read_pages`."""
        batch: List[int] = sorted(set(pages))
        yield Request(self.disk)
        total = self.failures.io_penalty() if batch else 0.0
        for page in batch:
            time = self.access_time(page)
            self.writes += 1
            total += time
        self.busy_time_ms += total
        yield Hold(total)
        yield Release(self.disk)

    def swap_read(self):
        """Read one page back from the swap partition.

        Swap lives in its own disk region, so the transfer pays the full
        random-access cost and breaks database-region contiguity (the arm
        moved) — §4.3.2's "costly swap".
        """
        yield Request(self.disk)
        self._last_page = -2
        time = self.config.random_io_time + self.failures.io_penalty()
        self.swap_reads += 1
        self.busy_time_ms += time
        yield Hold(time)
        yield Release(self.disk)

    def swap_write(self):
        """Write one page out to the swap partition."""
        yield Request(self.disk)
        self._last_page = -2
        time = self.config.random_io_time + self.failures.io_penalty()
        self.swap_writes += 1
        self.busy_time_ms += time
        yield Hold(time)
        yield Release(self.disk)

    # ------------------------------------------------------------------
    @property
    def total_ios(self) -> int:
        return self.reads + self.writes + self.swap_reads + self.swap_writes

    def reset_counters(self) -> None:
        """Zero the counters (used at workload-phase boundaries)."""
        self.reads = 0
        self.writes = 0
        self.swap_reads = 0
        self.swap_writes = 0
        self.sequential_accesses = 0
        self.busy_time_ms = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<IOSubsystem reads={self.reads} writes={self.writes}>"
