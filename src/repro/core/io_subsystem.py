"""The I/O Subsystem: physical disk accesses (Figure 5).

The knowledge model's "Access Disk" functioning rule (paper Figure 5)
decomposes an I/O request into *search time* + *latency time* + *transfer
time*, with one optimization: **if the requested page is contiguous to
the previously loaded page, search and latency are skipped** and only the
transfer is paid.  That shortcut is why initial placement and clustering
matter to response time and not only to I/O counts.

The disk itself is a despy :class:`~repro.despy.resource.Resource` of
capacity 1 — the "server disk controller and secondary storage" passive
resource of Table 1 — so concurrent transactions serialize on it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List

from repro.despy.process import PARK, Hold, Release, Request
from repro.despy.resource import Resource
from repro.despy.timebase import MS_PER_TICK
from repro.core.failures import NoFailures
from repro.core.parameters import VOODBConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.despy.engine import Simulation


class IOSubsystem:
    """Disk model with per-page timing and the Figure 5 shortcut."""

    __slots__ = (
        "sim",
        "config",
        "disk",
        "failures",
        "_last_page",
        "_sequential_ok",
        "_sequential_time",
        "_random_time",
        "_request_disk",
        "_release_disk",
        "_hold_sequential",
        "_hold_random",
        "reads",
        "writes",
        "swap_reads",
        "swap_writes",
        "sequential_accesses",
        "busy_ticks",
    )

    def __init__(self, sim: "Simulation", config: VOODBConfig) -> None:
        self.sim = sim
        self.config = config
        self.disk = Resource(sim, "disk", capacity=1)
        #: hazard source consulted per operation (§5 failures module);
        #: the model swaps in a live FailureInjector when configured.
        self.failures = NoFailures()
        self._last_page: int = -2  # nothing is contiguous to the start
        # The config is frozen, so its derived timing properties are
        # constants for this subsystem's lifetime; resolving them once
        # keeps the per-page path free of property recomputation.  The
        # Request/Release commands are immutable messages naming the
        # disk, so every operation can yield the same two instances.
        self._sequential_ok = config.sequential_optimization
        self._sequential_time = config.sequential_io_ticks
        self._random_time = config.random_io_ticks
        self._request_disk = Request(self.disk)
        self._release_disk = Release(self.disk)
        # Without failures every page op holds for one of exactly two
        # durations, so two shared Hold commands cover almost all I/O.
        self._hold_sequential = Hold(self._sequential_time)
        self._hold_random = Hold(self._random_time)
        # Counters
        self.reads = 0
        self.writes = 0
        self.swap_reads = 0
        self.swap_writes = 0
        self.sequential_accesses = 0
        self.busy_ticks = 0

    @property
    def busy_time_ms(self) -> float:
        """Accumulated disk service time, reported in milliseconds."""
        return self.busy_ticks * MS_PER_TICK

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def _service(self, page: int) -> "tuple[int, Hold]":
        """Contiguity-shortcut timing core: (service ticks, shared Hold).

        The single source of truth for the Figure 5 rule.  Mutates the
        head position, so call at most once per physical access.
        """
        if self._sequential_ok and page == self._last_page + 1:
            self.sequential_accesses += 1
            pair = (self._sequential_time, self._hold_sequential)
        else:
            pair = (self._random_time, self._hold_random)
        self._last_page = page
        return pair

    def access_time(self, page: int) -> int:
        """Service ticks for one page, applying the contiguity shortcut."""
        return self._service(page)[0]

    def _penalized(self, time: int, hold: Hold) -> "tuple[int, Hold]":
        """Apply the failure hazard's per-operation penalty, if any.

        Keeps the shared Hold when the penalty is zero (the usual case);
        otherwise the adjusted duration needs its own command.
        """
        penalty = self.failures.io_penalty()
        if penalty:
            time += penalty
            return time, Hold(time)
        return time, hold

    # ------------------------------------------------------------------
    # Process-style operations (yield from these inside processes)
    # ------------------------------------------------------------------
    def read_hold(self, page: int) -> Hold:
        """Timing + accounting for one page read.

        Must be called with the disk held (the head state mutates here);
        callers yield ``io._request_disk``, then this Hold, then
        ``io._release_disk`` — which is exactly :meth:`read_page`, kept
        callable piecewise so hot generators can inline the three
        commands without re-deriving disk mechanics.

        The Figure 5 rule and the hazard penalty are spelled out inline
        (one frame instead of three): this runs once per physical page
        access across the whole simulation.
        """
        if self._sequential_ok and page == self._last_page + 1:
            self.sequential_accesses += 1
            time = self._sequential_time
            hold = self._hold_sequential
        else:
            time = self._random_time
            hold = self._hold_random
        self._last_page = page
        penalty = self.failures.io_penalty()
        if penalty:
            time += penalty
            hold = Hold(time)
        self.reads += 1
        self.busy_ticks += time
        return hold

    def write_hold(self, page: int) -> Hold:
        """Timing + accounting for one page write (same rules as reads)."""
        if self._sequential_ok and page == self._last_page + 1:
            self.sequential_accesses += 1
            time = self._sequential_time
            hold = self._hold_sequential
        else:
            time = self._random_time
            hold = self._hold_random
        self._last_page = page
        penalty = self.failures.io_penalty()
        if penalty:
            time += penalty
            hold = Hold(time)
        self.writes += 1
        self.busy_ticks += time
        return hold

    def read_page(self, page: int):
        """Read one page: reserve the disk, pay the service time.

        The request/release pair uses the inline merge fast paths: an
        uncontended read that is provably the next dispatch costs a
        single Hold event (see Resource.try_acquire_inline).
        """
        if not self.disk.try_acquire_inline():
            yield self._request_disk
        yield self.read_hold(page)
        if not self.disk.release_inline():
            yield PARK

    def write_page(self, page: int):
        """Write one page (same head mechanics as a read)."""
        if not self.disk.try_acquire_inline():
            yield self._request_disk
        yield self.write_hold(page)
        if not self.disk.release_inline():
            yield PARK

    def read_pages(self, pages: Iterable[int]):
        """Bulk read; sorts the batch so contiguous runs pay transfer only.

        Used by the Clustering Manager's reorganization, which reads whole
        regions of the base (paper §4.4 "clustering overhead").
        """
        batch: List[int] = sorted(set(pages))
        if not self.disk.try_acquire_inline():
            yield self._request_disk
        total = self.failures.io_penalty() if batch else 0
        for page in batch:
            time = self.access_time(page)
            self.reads += 1
            total += time
        self.busy_ticks += total
        yield Hold(total)
        if not self.disk.release_inline():
            yield PARK

    def write_pages(self, pages: Iterable[int]):
        """Bulk write, contiguity-aware like :meth:`read_pages`."""
        batch: List[int] = sorted(set(pages))
        if not self.disk.try_acquire_inline():
            yield self._request_disk
        total = self.failures.io_penalty() if batch else 0
        for page in batch:
            time = self.access_time(page)
            self.writes += 1
            total += time
        self.busy_ticks += total
        yield Hold(total)
        if not self.disk.release_inline():
            yield PARK

    def swap_read_hold(self) -> Hold:
        """Timing + accounting for one swap-partition read.

        Swap lives in its own disk region, so the transfer pays the full
        random-access cost and breaks database-region contiguity (the arm
        moved) — §4.3.2's "costly swap".  Call with the disk held, like
        :meth:`read_hold`; VM-heavy runs pay this once per fault, so the
        three-command form avoids a generator per swap I/O.
        """
        self._last_page = -2
        time = self._random_time
        hold = self._hold_random
        penalty = self.failures.io_penalty()
        if penalty:
            time += penalty
            hold = Hold(time)
        self.swap_reads += 1
        self.busy_ticks += time
        return hold

    def swap_write_hold(self) -> Hold:
        """Timing + accounting for one swap-partition write."""
        self._last_page = -2
        time = self._random_time
        hold = self._hold_random
        penalty = self.failures.io_penalty()
        if penalty:
            time += penalty
            hold = Hold(time)
        self.swap_writes += 1
        self.busy_ticks += time
        return hold

    def swap_read(self):
        """Read one page back from the swap partition (generator form)."""
        if not self.disk.try_acquire_inline():
            yield self._request_disk
        yield self.swap_read_hold()
        if not self.disk.release_inline():
            yield PARK

    def swap_write(self):
        """Write one page out to the swap partition (generator form)."""
        if not self.disk.try_acquire_inline():
            yield self._request_disk
        yield self.swap_write_hold()
        if not self.disk.release_inline():
            yield PARK

    # ------------------------------------------------------------------
    @property
    def total_ios(self) -> int:
        return self.reads + self.writes + self.swap_reads + self.swap_writes

    def reset_counters(self) -> None:
        """Zero the counters (used at workload-phase boundaries)."""
        self.reads = 0
        self.writes = 0
        self.swap_reads = 0
        self.swap_writes = 0
        self.sequential_accesses = 0
        self.busy_ticks = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<IOSubsystem reads={self.reads} writes={self.writes}>"
