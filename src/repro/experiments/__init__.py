"""experiments — replication running and figure/table regeneration.

The paper's experimental protocol (§4.2.2): every result is the mean of
independent replications with 95% Student-t confidence intervals, sized
by a pilot study (the authors settle on 100 replications).  This package
wraps that protocol (`runner`) and regenerates every evaluation artifact:

* `figures` — Figures 6-11 (database-size, cache-size and memory-size
  sweeps on the O2 and Texas instantiations);
* `tables` — Tables 6-8 (the DSTC pre/overhead/post protocol);
* `report` — text rendering that prints the paper's published series
  next to the reproduction's, which is what the benchmark harness and
  EXPERIMENTS.md consume.

Replication counts default to the ``VOODB_REPLICATIONS`` environment
variable (fallback 5) so the full suite stays laptop-sized; pass
``replications=100`` for paper-fidelity runs.
"""

from repro.experiments.runner import (
    DEFAULT_REPLICATIONS,
    ExperimentRunner,
    default_replications,
)
from repro.experiments.figures import (
    ExperimentSeries,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    run_figure,
)
from repro.experiments.tables import (
    DSTCExperimentResult,
    run_dstc_experiment,
    table6,
    table7,
    table8,
)
from repro.experiments.report import (
    format_dstc_table,
    format_series,
    format_table7,
)

__all__ = [
    "ExperimentRunner",
    "DEFAULT_REPLICATIONS",
    "default_replications",
    "ExperimentSeries",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "run_figure",
    "DSTCExperimentResult",
    "run_dstc_experiment",
    "table6",
    "table7",
    "table8",
    "format_series",
    "format_dstc_table",
    "format_table7",
]
