"""experiments — the declarative, parallel experiment engine.

The paper's experimental protocol (§4.2.2): every result is the mean of
independent replications with 95% Student-t confidence intervals, sized
by a pilot study (the authors settle on 100 replications).  This package
turns that protocol into a three-part engine plus the regeneration of
every evaluation artifact:

* `specs` — declarative :class:`ExperimentSpec`/:class:`SweepSpec` grids
  of frozen configs, expanded into ``(config, seed)`` replication jobs;
* `executor` — pluggable :class:`SerialExecutor` and process-pool
  :class:`ParallelExecutor` (``--jobs`` / ``VOODB_JOBS``), both
  returning results in job order so statistics are bit-identical
  across executors;
* `cache` — an on-disk :class:`ReplicationCache` keyed by
  ``(config digest, seed)`` (``--cache-dir`` / ``VOODB_CACHE_DIR``), so
  repeated sweeps never recompute a point;
* `runner` — the :class:`ExperimentRunner` compatibility facade;
* `figures` — Figures 6-11 (database-size, cache-size and memory-size
  sweeps on the O2 and Texas instantiations);
* `tables` — Tables 6-8 (the DSTC pre/overhead/post protocol);
* `report` — text rendering that prints the paper's published series
  next to the reproduction's, which is what the benchmark harness and
  EXPERIMENTS.md consume.

Replication counts default to the ``VOODB_REPLICATIONS`` environment
variable (fallback 5) so the full suite stays laptop-sized; pass
``replications=100`` for paper-fidelity runs.
"""

from repro.experiments.runner import (
    DEFAULT_REPLICATIONS,
    ExperimentRunner,
    default_replications,
)
from repro.experiments.cache import ReplicationCache, config_digest, default_cache
from repro.experiments.executor import (
    Executor,
    ParallelExecutor,
    ReplicationJob,
    SerialExecutor,
    default_jobs,
    executor_for,
    is_module_level,
    make_executor,
    standard_replication,
)
from repro.experiments.specs import (
    ExperimentSpec,
    SweepResult,
    SweepSpec,
    run_experiment,
    run_sweep,
)
from repro.experiments.figures import (
    ExperimentSeries,
    figure_spec,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    run_figure,
)
from repro.experiments.tables import (
    DSTCExperimentResult,
    dstc_replication,
    dstc_spec,
    run_dstc_experiment,
    table6,
    table7,
    table8,
)
from repro.experiments.report import (
    format_dstc_table,
    format_series,
    format_sweep,
    format_table7,
)

__all__ = [
    "ExperimentRunner",
    "DEFAULT_REPLICATIONS",
    "default_replications",
    "ReplicationCache",
    "config_digest",
    "default_cache",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "ReplicationJob",
    "default_jobs",
    "executor_for",
    "is_module_level",
    "make_executor",
    "standard_replication",
    "ExperimentSpec",
    "SweepSpec",
    "SweepResult",
    "run_experiment",
    "run_sweep",
    "ExperimentSeries",
    "figure_spec",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "run_figure",
    "DSTCExperimentResult",
    "dstc_replication",
    "dstc_spec",
    "run_dstc_experiment",
    "table6",
    "table7",
    "table8",
    "format_series",
    "format_sweep",
    "format_dstc_table",
    "format_table7",
]
