"""Declarative experiment specifications.

"Benchmarking OODBs with a Generic Tool" frames an evaluation as a grid
of points — architectures × policies × parameter values — each measured
by independent replications.  This module captures that grid as data:

* :class:`ExperimentSpec` — one configuration measured by ``n``
  replications (seeds ``base_seed..base_seed+n-1``);
* :class:`SweepSpec` — a named sequence of points (an x axis), each an
  :class:`ExperimentSpec` sharing the replication protocol;
* :func:`run_experiment` / :func:`run_sweep` — expand a spec into
  :class:`~repro.experiments.executor.ReplicationJob` lists, hand them
  to an executor, and aggregate per-point
  :class:`~repro.despy.stats.ReplicationAnalyzer` results.

A sweep flattens *all* of its points' jobs into one executor call, so a
parallel executor overlaps replications across points — the whole
figure, not one point at a time — and a replication cache is consulted
per ``(config, seed)`` job either way.

Building a sweep::

    sweep = SweepSpec.grid(
        "figure8",
        values=(8, 16, 32, 64),
        config_for=lambda mb: o2_config(nc=50, no=20_000, cache_mb=mb),
        replications=10,
    )
    result = run_sweep(sweep, executor=make_executor(jobs=4))
    result.intervals("total_ios")
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.despy.stats import ConfidenceInterval, ReplicationAnalyzer
from repro.core.parameters import VOODBConfig
from repro.experiments.executor import (
    Executor,
    ReplicationFn,
    ReplicationJob,
    executor_for,
    standard_replication,
)
from repro.experiments.runner import default_replications


def resolve_replications(replications: Optional[int]) -> int:
    """``None`` -> the ``VOODB_REPLICATIONS`` default; always >= 1."""
    count = replications if replications is not None else default_replications()
    if count < 1:
        raise ValueError(f"replications must be >= 1, got {count}")
    return count


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment point: a config and its replication protocol."""

    config: VOODBConfig
    name: str = "experiment"
    replications: Optional[int] = None  # None -> VOODB_REPLICATIONS
    base_seed: int = 1
    confidence: float = 0.95
    replication: ReplicationFn = field(default=standard_replication)

    def resolved_replications(self) -> int:
        return resolve_replications(self.replications)

    def jobs(self) -> List[ReplicationJob]:
        """The independent replication jobs this point expands into."""
        return [
            ReplicationJob(self.config, self.base_seed + r, self.replication)
            for r in range(self.resolved_replications())
        ]


@dataclass(frozen=True)
class SweepSpec:
    """A named grid of experiment points sharing one protocol."""

    name: str
    points: Tuple[Tuple[Any, VOODBConfig], ...]  # (x value, config) pairs
    replications: Optional[int] = None
    base_seed: int = 1
    confidence: float = 0.95
    replication: ReplicationFn = field(default=standard_replication)

    @classmethod
    def grid(
        cls,
        name: str,
        values: Sequence[Any],
        config_for: Callable[[Any], VOODBConfig],
        replications: Optional[int] = None,
        base_seed: int = 1,
        confidence: float = 0.95,
        replication: ReplicationFn = standard_replication,
    ) -> "SweepSpec":
        """Build a sweep by applying ``config_for`` to each axis value."""
        return cls(
            name=name,
            points=tuple((x, config_for(x)) for x in values),
            replications=replications,
            base_seed=base_seed,
            confidence=confidence,
            replication=replication,
        )

    @property
    def x_values(self) -> Tuple[Any, ...]:
        return tuple(x for x, _ in self.points)

    def resolved_replications(self) -> int:
        return resolve_replications(self.replications)

    def experiments(self) -> List[ExperimentSpec]:
        return [
            ExperimentSpec(
                config=config,
                name=f"{self.name}[{x}]",
                replications=self.replications,
                base_seed=self.base_seed,
                confidence=self.confidence,
                replication=self.replication,
            )
            for x, config in self.points
        ]


@dataclass
class SweepResult:
    """Per-point analyzers of one executed sweep."""

    spec: SweepSpec
    analyzers: List[ReplicationAnalyzer]

    @property
    def x_values(self) -> Tuple[Any, ...]:
        return self.spec.x_values

    def intervals(self, metric: str) -> List[ConfidenceInterval]:
        return [analyzer.interval(metric) for analyzer in self.analyzers]

    def means(self, metric: str) -> List[float]:
        return [analyzer.mean(metric) for analyzer in self.analyzers]

    def combined(self) -> ReplicationAnalyzer:
        """All points folded into one analyzer (sweep-wide statistics)."""
        return ReplicationAnalyzer.merged(
            self.analyzers, confidence=self.spec.confidence
        )


def run_experiment(
    spec: ExperimentSpec, executor: Optional[Executor] = None
) -> ReplicationAnalyzer:
    """Execute one experiment point and aggregate its replications."""
    executor = executor if executor is not None else executor_for(spec.replication)
    analyzer = ReplicationAnalyzer(confidence=spec.confidence)
    analyzer.add_all(executor.run(spec.jobs()))
    return analyzer


def run_sweep(spec: SweepSpec, executor: Optional[Executor] = None) -> SweepResult:
    """Execute a whole sweep through one flattened executor call."""
    executor = executor if executor is not None else executor_for(spec.replication)
    experiments = spec.experiments()
    chunks = [experiment.jobs() for experiment in experiments]
    flat: List[ReplicationJob] = [job for chunk in chunks for job in chunk]
    results = executor.run(flat)
    analyzers: List[ReplicationAnalyzer] = []
    offset = 0
    for chunk in chunks:
        analyzer = ReplicationAnalyzer(confidence=spec.confidence)
        analyzer.add_all(results[offset : offset + len(chunk)])
        analyzers.append(analyzer)
        offset += len(chunk)
    return SweepResult(spec=spec, analyzers=analyzers)
