"""Pluggable replication executors: serial and process-parallel.

DESP-C++ made every replication a self-contained, replayable unit; our
:func:`~repro.core.model.run_replication` is likewise a pure function of
``(frozen VOODBConfig, seed)``.  This module exploits that purity to fan
replication jobs out across workers:

* :class:`SerialExecutor` — runs jobs in-process, in order (the §4.2.2
  baseline, and the only option for non-picklable replication callables);
* :class:`ParallelExecutor` — maps jobs over a
  :class:`concurrent.futures.ProcessPoolExecutor`, warming the shared
  OCB database cache once per worker via the pool initializer.

Both return metric dictionaries **in job order** regardless of worker
completion order, and both consult an optional
:class:`~repro.experiments.cache.ReplicationCache` first — so serial and
parallel runs over the same seed set produce bit-identical statistics.

The worker count comes from the ``--jobs`` CLI flag or the
``VOODB_JOBS`` environment variable (:func:`default_jobs`);
:func:`make_executor` picks the executor class from it.
"""

from __future__ import annotations

import inspect
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor as _PoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.model import build_database, run_replication
from repro.core.parameters import VOODBConfig
from repro.experiments.cache import ReplicationCache, default_cache

#: Environment variable holding the default worker count.
JOBS_ENV = "VOODB_JOBS"

#: One replication: ``(config, seed) -> {metric: value}``.
ReplicationFn = Callable[[VOODBConfig, int], Dict[str, float]]


def standard_replication(config: VOODBConfig, seed: int) -> Dict[str, float]:
    """The §4.3 protocol: COLDN warm-up + HOTN measured, flattened."""
    return run_replication(config, seed=seed).to_metrics()


def replication_name(fn: ReplicationFn) -> str:
    """Qualified name of a replication protocol (cache-key component)."""
    return f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}"


def is_module_level(fn: ReplicationFn) -> bool:
    """Whether ``fn`` is a plain module-level function.

    Only module-level functions are reliably picklable for process
    pools, and only they have qualified names stable enough to key the
    replication cache: two lambdas in the same scope share the qualname
    ``...<locals>.<lambda>``, and a bound method's qualname omits the
    instance state it closes over — either would collide in the cache.
    """
    if not inspect.isfunction(fn):  # rejects bound methods, builtins, partials
        return False
    if fn.__module__ == "__main__":
        # Unqualifiable: two scripts' '__main__.replicate' would share a
        # cache key (and spawn workers couldn't re-import it anyway).
        return False
    qualname = fn.__qualname__
    return "<locals>" not in qualname and "<lambda>" not in qualname


@dataclass(frozen=True)
class ReplicationJob:
    """One unit of work: run ``replication(config, seed)``."""

    config: VOODBConfig
    seed: int
    replication: ReplicationFn = field(default=standard_replication)

    def execute(self) -> Dict[str, float]:
        return self.replication(self.config, self.seed)


def default_jobs() -> int:
    """Worker count from ``VOODB_JOBS`` (fallback 1 = serial)."""
    value = os.environ.get(JOBS_ENV, "")
    if not value:
        return 1
    try:
        count = int(value)
    except ValueError:
        raise ValueError(f"{JOBS_ENV} must be an integer >= 1, got {value!r}") from None
    if count < 1:
        raise ValueError(f"{JOBS_ENV} must be >= 1, got {count}")
    return count


class Executor:
    """Common cache-aware driver; subclasses supply ``_execute``.

    ``run`` resolves cache hits up front, hands only the misses to the
    subclass, stores fresh results back, and returns metrics in job
    order — the ordering contract that keeps downstream
    :class:`~repro.despy.stats.ReplicationAnalyzer` aggregation
    bit-identical across executors.
    """

    def __init__(self, cache: Optional[ReplicationCache] = None) -> None:
        self.cache = cache

    # -- subclass hook --------------------------------------------------
    def _execute(
        self, indexed_jobs: Sequence[Tuple[int, ReplicationJob]]
    ) -> Iterable[Tuple[int, Dict[str, float]]]:
        raise NotImplementedError

    # -- driver ---------------------------------------------------------
    def run(self, jobs: Iterable[ReplicationJob]) -> List[Dict[str, float]]:
        """Execute all jobs; results are returned in job order."""
        job_list = list(jobs)
        results: List[Optional[Dict[str, float]]] = [None] * len(job_list)
        pending: List[Tuple[int, ReplicationJob]] = []
        for index, job in enumerate(job_list):
            cached = (
                self.cache.get(job.config, job.seed, replication_name(job.replication))
                if self.cache is not None and is_module_level(job.replication)
                else None
            )
            if cached is not None:
                results[index] = cached
            else:
                pending.append((index, job))
        for index, metrics in self._execute(pending):
            results[index] = metrics
            if self.cache is not None:
                job = job_list[index]
                if is_module_level(job.replication):
                    self.cache.put(
                        job.config, job.seed, metrics, replication_name(job.replication)
                    )
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:
            raise RuntimeError(f"executor returned no result for jobs {missing}")
        return results  # type: ignore[return-value]


def _warm_databases(jobs: Sequence[Tuple[int, ReplicationJob]]) -> None:
    """Build each distinct OCB base once before replications start."""
    seen = set()
    for _, job in jobs:
        ocb = job.config.ocb
        if ocb not in seen:
            seen.add(ocb)
            build_database(ocb)


class SerialExecutor(Executor):
    """In-process execution, in submission order."""

    jobs = 1

    def _execute(
        self, indexed_jobs: Sequence[Tuple[int, ReplicationJob]]
    ) -> Iterable[Tuple[int, Dict[str, float]]]:
        _warm_databases(indexed_jobs)
        for index, job in indexed_jobs:
            yield index, job.execute()


# ----------------------------------------------------------------------
# Process-pool execution
# ----------------------------------------------------------------------
def _worker_init(ocb_configs: Tuple) -> None:
    """Pool initializer: warm this worker's OCB database cache once.

    Workers receive the small frozen configs (not the generated graphs)
    and regenerate deterministically — cheaper than pickling a multi-MB
    database per job, and identical by construction.
    """
    for ocb in ocb_configs:
        build_database(ocb)


def _run_job(indexed_job: Tuple[int, ReplicationJob]) -> Tuple[int, Dict[str, float]]:
    index, job = indexed_job
    return index, job.execute()


class ParallelExecutor(Executor):
    """Fans replication jobs across a process pool.

    Jobs are dispatched individually and results reassembled by index,
    so out-of-order completion never reorders the statistics.  The
    replication callable must be picklable (a module-level function);
    use :class:`SerialExecutor` for ad-hoc closures.
    """

    def __init__(
        self, jobs: int = 2, cache: Optional[ReplicationCache] = None
    ) -> None:
        super().__init__(cache=cache)
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def _execute(
        self, indexed_jobs: Sequence[Tuple[int, ReplicationJob]]
    ) -> Iterable[Tuple[int, Dict[str, float]]]:
        if not indexed_jobs:
            return []
        if len(indexed_jobs) == 1 or self.jobs == 1:
            # Not worth a pool; also keeps single-job sweeps debuggable.
            return SerialExecutor._execute(self, indexed_jobs)
        ocbs = tuple({job.config.ocb for _, job in indexed_jobs})
        # On fork platforms, build the bases in the parent first: every
        # worker then inherits them copy-on-write and the initializer's
        # build_database calls are cache hits.  On spawn/forkserver the
        # parent copy would never reach the workers, so skip it and let
        # the initializer build each base once per worker.
        if multiprocessing.get_start_method() == "fork":
            _warm_databases(indexed_jobs)
        workers = min(self.jobs, len(indexed_jobs))
        # Eager initializer warm-up pays off when every worker will need
        # the base (one config, many replications — the per-point
        # fan-out).  For multi-config sweeps on spawn platforms it would
        # overbuild (each worker generating bases it may never touch),
        # so let build_database's lazy per-process cache fill in instead.
        warm = ocbs if len(ocbs) == 1 else ()
        return self._stream(indexed_jobs, warm, workers)

    @staticmethod
    def _stream(
        indexed_jobs: Sequence[Tuple[int, ReplicationJob]],
        warm: Tuple,
        workers: int,
    ) -> Iterable[Tuple[int, Dict[str, float]]]:
        with _PoolExecutor(
            max_workers=workers, initializer=_worker_init, initargs=(warm,)
        ) as pool:
            # pool.map yields results in submission order, so streaming
            # them preserves the ordering contract while letting the
            # caller cache each result as it completes.
            yield from pool.map(_run_job, indexed_jobs)


def executor_for(replication: ReplicationFn) -> Executor:
    """Default executor for a replication protocol.

    Honors ``VOODB_JOBS``/``VOODB_CACHE_DIR`` for module-level
    protocols; closures, lambdas and bound methods can't cross a
    process boundary, so they downgrade to serial rather than fail at
    pickle time mid-run.
    """
    if is_module_level(replication):
        return make_executor()
    return make_executor(jobs=1)


def make_executor(
    jobs: Optional[int] = None,
    cache: Optional[ReplicationCache] = None,
    use_default_cache: bool = True,
) -> Executor:
    """Build the executor selected by ``jobs`` / the environment.

    ``jobs=None`` reads ``VOODB_JOBS``; ``cache=None`` reads
    ``VOODB_CACHE_DIR`` (unless ``use_default_cache=False``).
    """
    count = default_jobs() if jobs is None else jobs
    if count < 1:
        raise ValueError(f"jobs must be >= 1, got {count}")
    if cache is None and use_default_cache:
        cache = default_cache()
    if count == 1:
        return SerialExecutor(cache=cache)
    return ParallelExecutor(jobs=count, cache=cache)
