"""Regeneration of Tables 6, 7 and 8 (paper §4.4).

One replication of the DSTC protocol is three steps on one model
instance: a pre-clustering usage phase, an externally demanded
reorganization, and a post-clustering usage phase replaying the *same*
transactions (common random numbers, like the paper's "in the same
conditions").  Tables 6 and 7 read off the 64 MB run; Table 8 re-runs
the protocol at 8 MB.

:func:`dstc_replication` is a pure, picklable function of
``(config, seed)``, so the protocol's replications fan out through the
same executors (and replication cache) as the figure sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.despy.stats import ConfidenceInterval, ReplicationAnalyzer
from repro.core.model import VOODBSimulation
from repro.core.parameters import VOODBConfig
from repro.experiments.executor import Executor
from repro.experiments.specs import ExperimentSpec, run_experiment
from repro.systems.dstc_experiment import (
    DSTC_EXPERIMENT_PARAMETERS,
    HIERARCHY_DEPTH,
    HIERARCHY_REF_TYPE,
    texas_dstc_config,
)
from repro.systems.reference_data import (
    TABLE_6,
    TABLE_7,
    TABLE_8,
    DSTCTableReference,
)


def dstc_replication(config: VOODBConfig, seed: int) -> Dict[str, float]:
    """One §4.4 protocol replication; returns the table-row metrics."""
    model = VOODBSimulation(
        config,
        seed=seed,
        clustering_kwargs={"dstc_parameters": DSTC_EXPERIMENT_PARAMETERS},
    )
    pre = model.run_phase(
        config.ocb.hotn,
        workload="hierarchy",
        stream_label="usage",
        hierarchy_type=HIERARCHY_REF_TYPE,
        hierarchy_depth=HIERARCHY_DEPTH,
    )
    report = model.demand_clustering()
    post = model.run_phase(
        config.ocb.hotn,
        workload="hierarchy",
        stream_label="usage",
        hierarchy_type=HIERARCHY_REF_TYPE,
        hierarchy_depth=HIERARCHY_DEPTH,
    )
    gain = pre.total_ios / post.total_ios if post.total_ios else float("inf")
    return {
        "pre_clustering_ios": float(pre.total_ios),
        "clustering_overhead_ios": float(report.overhead_ios),
        "post_clustering_ios": float(post.total_ios),
        "gain": gain,
        "clusters": float(report.clusters),
        "objects_per_cluster": report.mean_objects_per_cluster,
    }


def run_dstc_replication(memory_mb: float, seed: int) -> Dict[str, float]:
    """Compatibility wrapper: build the Texas config, run one replication."""
    return dstc_replication(texas_dstc_config(memory_mb=memory_mb), seed)


def dstc_spec(
    memory_mb: float,
    replications: Optional[int] = None,
    base_seed: int = 1,
) -> ExperimentSpec:
    """The declarative §4.4 experiment at one memory size."""
    return ExperimentSpec(
        config=texas_dstc_config(memory_mb=memory_mb),
        name=f"dstc-{memory_mb:g}mb",
        replications=replications,
        base_seed=base_seed,
        replication=dstc_replication,
    )


@dataclass
class DSTCExperimentResult:
    """Aggregated §4.4 protocol results with paper reference columns."""

    memory_mb: float
    replications: int
    pre_clustering: ConfidenceInterval
    clustering_overhead: ConfidenceInterval
    post_clustering: ConfidenceInterval
    gain: ConfidenceInterval
    clusters: ConfidenceInterval
    objects_per_cluster: ConfidenceInterval
    reference: DSTCTableReference

    @property
    def gain_of_means(self) -> float:
        """Gain computed like the paper's table row: pre-mean / post-mean."""
        if self.post_clustering.mean == 0:
            return float("inf")
        return self.pre_clustering.mean / self.post_clustering.mean


def _from_analyzer(
    memory_mb: float, analyzer: ReplicationAnalyzer
) -> DSTCExperimentResult:
    reference = TABLE_6 if memory_mb >= 32 else TABLE_8
    return DSTCExperimentResult(
        memory_mb=memory_mb,
        replications=analyzer.replications,
        pre_clustering=analyzer.interval("pre_clustering_ios"),
        clustering_overhead=analyzer.interval("clustering_overhead_ios"),
        post_clustering=analyzer.interval("post_clustering_ios"),
        gain=analyzer.interval("gain"),
        clusters=analyzer.interval("clusters"),
        objects_per_cluster=analyzer.interval("objects_per_cluster"),
        reference=reference,
    )


def run_dstc_experiment(
    memory_mb: float,
    replications: Optional[int] = None,
    base_seed: int = 1,
    executor: Optional[Executor] = None,
) -> DSTCExperimentResult:
    """Run the full protocol at one memory size, with replications."""
    spec = dstc_spec(memory_mb, replications=replications, base_seed=base_seed)
    analyzer = run_experiment(spec, executor=executor)
    return _from_analyzer(memory_mb, analyzer)


def table6(
    replications: Optional[int] = None, executor: Optional[Executor] = None
) -> DSTCExperimentResult:
    """Effects of DSTC on Texas, mid-sized base (64 MB memory)."""
    return run_dstc_experiment(TABLE_6.memory_mb, replications, executor=executor)


def table7(
    replications: Optional[int] = None, executor: Optional[Executor] = None
) -> DSTCExperimentResult:
    """DSTC cluster statistics — same run as Table 6.

    Returned as the full experiment result; the Table 7 rows are the
    ``clusters`` and ``objects_per_cluster`` intervals (reference values
    in :data:`repro.systems.reference_data.TABLE_7`).
    """
    return table6(replications, executor=executor)


def table8(
    replications: Optional[int] = None, executor: Optional[Executor] = None
) -> DSTCExperimentResult:
    """Effects of DSTC on Texas, 'large' base (8 MB memory)."""
    return run_dstc_experiment(TABLE_8.memory_mb, replications, executor=executor)


#: Reference dictionary re-exported for the report module.
TABLE_7_REFERENCE = TABLE_7
