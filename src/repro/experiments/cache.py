"""On-disk replication cache keyed by ``(config digest, seed)``.

The §4.2.2 protocol makes every replication a pure function of the
frozen :class:`~repro.core.parameters.VOODBConfig` and the seed, so its
metric dictionary can be memoized on disk.  Repeated sweeps — a pilot
study followed by the full run, or regenerating a figure after touching
only the report code — then never recompute a point: the pilot's seeds
``base_seed..base_seed+9`` are cache hits inside the full run's
``base_seed..base_seed+n*``.

The cache is content-addressed: the key digests a canonical JSON
rendering of the (nested, frozen) config dataclass plus the replication
function's qualified name, so two configs that compare equal always
share entries while any parameter change — however deep — misses.

Enable it by passing a :class:`ReplicationCache` to an executor, with
``python -m repro --cache-dir DIR``, or via the ``VOODB_CACHE_DIR``
environment variable (read by :func:`default_cache`).

Invalidation caveat: the key covers the *inputs* of a replication, not
the simulator's code.  After changing anything under ``src/repro`` that
affects results, clear the cache directory (or bump
:data:`CACHE_VERSION`) — otherwise old metrics replay for unchanged
configs.  The cache is opt-in for exactly this reason.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import math
import os
from pathlib import Path
from typing import Any, Dict, Optional

#: Environment variable enabling the cache outside the CLI flag.
CACHE_DIR_ENV = "VOODB_CACHE_DIR"

#: Bump when the replication semantics change so stale entries miss.
CACHE_VERSION = 1


def _canonical(value: Any) -> Any:
    """Render a config value as a JSON-stable structure."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _canonical(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, float):
        # json.dumps would emit the non-standard literal Infinity; make
        # the canonical form explicit so digests are portable.
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    return value


def config_digest(config: Any, replication_name: str = "") -> str:
    """Stable hex digest of a config (plus the replication protocol)."""
    payload = json.dumps(
        {
            "version": CACHE_VERSION,
            "replication": replication_name,
            "config": _canonical(config),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ReplicationCache:
    """File-per-entry metric cache under one directory.

    Entries are small JSON files named ``<digest>-<seed>.json`` holding
    the metric dictionary of one replication.  ``hits``/``misses``
    counters make cache behavior observable (and testable).
    """

    def __init__(self, directory: os.PathLike | str) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        # Configs are frozen/hashable and sweeps probe the same few
        # configs hundreds of times; memoize the (JSON dump + sha256).
        self._digests: Dict[Any, str] = {}

    # ------------------------------------------------------------------
    def _path(self, config: Any, seed: int, replication_name: str) -> Path:
        key = (config, replication_name)
        digest = self._digests.get(key)
        if digest is None:
            digest = config_digest(config, replication_name)
            self._digests[key] = digest
        return self.directory / f"{digest[:32]}-{seed}.json"

    def get(
        self, config: Any, seed: int, replication_name: str = ""
    ) -> Optional[Dict[str, float]]:
        """Return the cached metrics for ``(config, seed)`` or ``None``."""
        path = self._path(config, seed, replication_name)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        try:
            metrics = json.loads(raw)
        except ValueError:
            metrics = None
        try:
            entry = {str(name): float(value) for name, value in metrics.items()}
        except (AttributeError, TypeError, ValueError):
            entry = None
        if not entry:
            # Torn write or foreign file (e.g. interrupted run, or an
            # empty {}): treat as absent rather than crash the sweep or
            # feed the analyzer a metric-free replication.
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(
        self,
        config: Any,
        seed: int,
        metrics: Dict[str, float],
        replication_name: str = "",
    ) -> None:
        """Persist one replication's metrics (atomic rename).

        The cache is a pure optimization, so write failures (disk full,
        permissions lost mid-run) must not abort a sweep whose results
        are already computed; they just mean this point recomputes next
        time.
        """
        path = self._path(config, seed, replication_name)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        try:
            # TypeError/ValueError: a custom replication fn returned a
            # non-JSON-native value (numpy scalar, Decimal, ...) — skip
            # caching that point rather than abort computed work.
            tmp.write_text(json.dumps(metrics, sort_keys=True), encoding="utf-8")
            os.replace(tmp, path)
        except (OSError, TypeError, ValueError):
            try:
                tmp.unlink()
            except OSError:
                pass

    def clear(self) -> int:
        """Delete all entries (and orphaned temp files from interrupted
        runs); returns how many entries were removed."""
        removed = 0
        for entry in self.directory.glob("*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        for orphan in self.directory.glob("*.json.tmp*"):
            try:
                orphan.unlink()
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))


def default_cache() -> Optional[ReplicationCache]:
    """Cache configured by ``VOODB_CACHE_DIR`` (``None`` when unset)."""
    directory = os.environ.get(CACHE_DIR_ENV, "")
    if not directory:
        return None
    return ReplicationCache(directory)
