"""Regeneration of Figures 6-11 (paper §4.3).

Each ``figureN()`` runs the corresponding parameter sweep — database
size for Figures 6/7 (O2) and 9/10 (Texas), cache size for Figure 8
(O2), available memory for Figure 11 (Texas) — with replications and
confidence intervals, and returns an :class:`ExperimentSeries` holding
the reproduction next to the paper's published benchmark and simulation
series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.despy.stats import ConfidenceInterval
from repro.core.parameters import VOODBConfig
from repro.experiments.runner import ExperimentRunner, default_replications
from repro.systems import reference_data
from repro.systems.o2 import o2_config
from repro.systems.reference_data import FigureReference
from repro.systems.texas import texas_config

#: The headline metric of every figure.
METRIC = "total_ios"


@dataclass
class ExperimentSeries:
    """One regenerated figure: x values, intervals, and paper series."""

    reference: FigureReference
    x_values: Tuple[int, ...]
    intervals: List[ConfidenceInterval]
    replications: int
    metric: str = METRIC

    @property
    def means(self) -> List[float]:
        return [ci.mean for ci in self.intervals]

    def is_monotonic_increasing(self) -> bool:
        means = self.means
        return all(a <= b for a, b in zip(means, means[1:]))

    def is_monotonic_decreasing(self) -> bool:
        means = self.means
        return all(a >= b for a, b in zip(means, means[1:]))


def run_figure(
    reference: FigureReference,
    config_for_x: Callable[[int], VOODBConfig],
    replications: Optional[int] = None,
    base_seed: int = 1,
) -> ExperimentSeries:
    """Sweep the figure's x axis, running replications at each point."""
    count = replications if replications is not None else default_replications()
    intervals: List[ConfidenceInterval] = []
    for x in reference.x_values:
        runner = ExperimentRunner(config_for_x(x))
        runner.run(replications=count, base_seed=base_seed)
        intervals.append(runner.interval(METRIC))
    return ExperimentSeries(
        reference=reference,
        x_values=reference.x_values,
        intervals=intervals,
        replications=count,
    )


# ----------------------------------------------------------------------
# The six figures
# ----------------------------------------------------------------------
def figure6(replications: Optional[int] = None, hotn: int = 1000) -> ExperimentSeries:
    """O2: mean I/Os vs number of instances, 20 classes."""
    return run_figure(
        reference_data.FIGURE_6,
        lambda no: o2_config(nc=20, no=no, hotn=hotn),
        replications,
    )


def figure7(replications: Optional[int] = None, hotn: int = 1000) -> ExperimentSeries:
    """O2: mean I/Os vs number of instances, 50 classes."""
    return run_figure(
        reference_data.FIGURE_7,
        lambda no: o2_config(nc=50, no=no, hotn=hotn),
        replications,
    )


def figure8(replications: Optional[int] = None, hotn: int = 1000) -> ExperimentSeries:
    """O2: mean I/Os vs server cache size (NC=50, NO=20 000)."""
    return run_figure(
        reference_data.FIGURE_8,
        lambda mb: o2_config(nc=50, no=20_000, cache_mb=mb, hotn=hotn),
        replications,
    )


def figure9(replications: Optional[int] = None, hotn: int = 1000) -> ExperimentSeries:
    """Texas: mean I/Os vs number of instances, 20 classes."""
    return run_figure(
        reference_data.FIGURE_9,
        lambda no: texas_config(nc=20, no=no, hotn=hotn),
        replications,
    )


def figure10(replications: Optional[int] = None, hotn: int = 1000) -> ExperimentSeries:
    """Texas: mean I/Os vs number of instances, 50 classes."""
    return run_figure(
        reference_data.FIGURE_10,
        lambda no: texas_config(nc=50, no=no, hotn=hotn),
        replications,
    )


def figure11(replications: Optional[int] = None, hotn: int = 1000) -> ExperimentSeries:
    """Texas: mean I/Os vs available main memory (NC=50, NO=20 000)."""
    return run_figure(
        reference_data.FIGURE_11,
        lambda mb: texas_config(nc=50, no=20_000, memory_mb=mb, hotn=hotn),
        replications,
    )


ALL_FIGURES: Dict[str, Callable[..., ExperimentSeries]] = {
    "6": figure6,
    "7": figure7,
    "8": figure8,
    "9": figure9,
    "10": figure10,
    "11": figure11,
}
