"""Regeneration of Figures 6-11 (paper §4.3).

Each figure is a declarative :class:`~repro.experiments.specs.SweepSpec`
over the corresponding parameter axis — database size for Figures 6/7
(O2) and 9/10 (Texas), cache size for Figure 8 (O2), available memory
for Figure 11 (Texas).  ``figureN()`` executes the sweep (through any
:mod:`~repro.experiments.executor` executor, so ``--jobs``/``VOODB_JOBS``
parallelize every point's replications at once) and returns an
:class:`ExperimentSeries` holding the reproduction next to the paper's
published benchmark and simulation series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.despy.stats import ConfidenceInterval
from repro.core.parameters import VOODBConfig
from repro.experiments.executor import Executor
from repro.experiments.specs import SweepSpec, run_sweep
from repro.systems import reference_data
from repro.systems.o2 import o2_config
from repro.systems.reference_data import FigureReference
from repro.systems.texas import texas_config

#: The headline metric of every figure.
METRIC = "total_ios"


@dataclass
class ExperimentSeries:
    """One regenerated figure: x values, intervals, and paper series."""

    reference: FigureReference
    x_values: Tuple[int, ...]
    intervals: List[ConfidenceInterval]
    replications: int
    metric: str = METRIC

    @property
    def means(self) -> List[float]:
        return [ci.mean for ci in self.intervals]

    def is_monotonic_increasing(self) -> bool:
        means = self.means
        return all(a <= b for a, b in zip(means, means[1:]))

    def is_monotonic_decreasing(self) -> bool:
        means = self.means
        return all(a >= b for a, b in zip(means, means[1:]))


def figure_spec(
    reference: FigureReference,
    config_for_x: Callable[[int], VOODBConfig],
    replications: Optional[int] = None,
    base_seed: int = 1,
) -> SweepSpec:
    """The declarative sweep behind one figure."""
    return SweepSpec.grid(
        name=f"figure{reference.figure}",
        values=reference.x_values,
        config_for=config_for_x,
        replications=replications,
        base_seed=base_seed,
    )


def run_figure(
    reference: FigureReference,
    config_for_x: Callable[[int], VOODBConfig],
    replications: Optional[int] = None,
    base_seed: int = 1,
    executor: Optional[Executor] = None,
) -> ExperimentSeries:
    """Sweep the figure's x axis, running replications at each point."""
    spec = figure_spec(reference, config_for_x, replications, base_seed)
    result = run_sweep(spec, executor=executor)
    return ExperimentSeries(
        reference=reference,
        x_values=reference.x_values,
        intervals=result.intervals(METRIC),
        replications=spec.resolved_replications(),
    )


# ----------------------------------------------------------------------
# The six figures
# ----------------------------------------------------------------------
def figure6(
    replications: Optional[int] = None,
    hotn: int = 1000,
    executor: Optional[Executor] = None,
) -> ExperimentSeries:
    """O2: mean I/Os vs number of instances, 20 classes."""
    return run_figure(
        reference_data.FIGURE_6,
        lambda no: o2_config(nc=20, no=no, hotn=hotn),
        replications,
        executor=executor,
    )


def figure7(
    replications: Optional[int] = None,
    hotn: int = 1000,
    executor: Optional[Executor] = None,
) -> ExperimentSeries:
    """O2: mean I/Os vs number of instances, 50 classes."""
    return run_figure(
        reference_data.FIGURE_7,
        lambda no: o2_config(nc=50, no=no, hotn=hotn),
        replications,
        executor=executor,
    )


def figure8(
    replications: Optional[int] = None,
    hotn: int = 1000,
    executor: Optional[Executor] = None,
) -> ExperimentSeries:
    """O2: mean I/Os vs server cache size (NC=50, NO=20 000)."""
    return run_figure(
        reference_data.FIGURE_8,
        lambda mb: o2_config(nc=50, no=20_000, cache_mb=mb, hotn=hotn),
        replications,
        executor=executor,
    )


def figure9(
    replications: Optional[int] = None,
    hotn: int = 1000,
    executor: Optional[Executor] = None,
) -> ExperimentSeries:
    """Texas: mean I/Os vs number of instances, 20 classes."""
    return run_figure(
        reference_data.FIGURE_9,
        lambda no: texas_config(nc=20, no=no, hotn=hotn),
        replications,
        executor=executor,
    )


def figure10(
    replications: Optional[int] = None,
    hotn: int = 1000,
    executor: Optional[Executor] = None,
) -> ExperimentSeries:
    """Texas: mean I/Os vs number of instances, 50 classes."""
    return run_figure(
        reference_data.FIGURE_10,
        lambda no: texas_config(nc=50, no=no, hotn=hotn),
        replications,
        executor=executor,
    )


def figure11(
    replications: Optional[int] = None,
    hotn: int = 1000,
    executor: Optional[Executor] = None,
) -> ExperimentSeries:
    """Texas: mean I/Os vs available main memory (NC=50, NO=20 000)."""
    return run_figure(
        reference_data.FIGURE_11,
        lambda mb: texas_config(nc=50, no=20_000, memory_mb=mb, hotn=hotn),
        replications,
        executor=executor,
    )


ALL_FIGURES: Dict[str, Callable[..., ExperimentSeries]] = {
    "6": figure6,
    "7": figure7,
    "8": figure8,
    "9": figure9,
    "10": figure10,
    "11": figure11,
}
