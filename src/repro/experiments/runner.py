"""Replication orchestration: the paper's §4.2.2 protocol.

One :class:`ExperimentRunner` wraps one VOODB configuration.  It is a
thin compatibility facade over the experiment engine
(:mod:`repro.experiments.specs` + :mod:`repro.experiments.executor`):
``run`` expands the configuration into ``(config, seed)`` replication
jobs (seeds ``base_seed + r``), hands them to an executor (serial by
default; process-parallel when constructed with one or when
``VOODB_JOBS`` is set), feeds the metric dictionaries to a
:class:`~repro.despy.stats.ReplicationAnalyzer`, and reports Student-t
confidence intervals.  The pilot-study sizing of the paper ("we first
performed a pilot study with n = 10, then computed the number of
necessary additional replications n*") is available as
:meth:`ExperimentRunner.pilot_study`.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional

from repro.despy.stats import ConfidenceInterval, ReplicationAnalyzer
from repro.core.model import VOODBSimulation
from repro.core.parameters import VOODBConfig

#: Fallback replication count when ``VOODB_REPLICATIONS`` is unset.
DEFAULT_REPLICATIONS = 5


def default_replications() -> int:
    """Replications per experiment point, from the environment.

    The paper used 100; the default here keeps the full suite
    laptop-sized.  Set ``VOODB_REPLICATIONS=100`` for fidelity runs.
    """
    value = os.environ.get("VOODB_REPLICATIONS", "")
    if not value:
        return DEFAULT_REPLICATIONS
    count = int(value)
    if count < 1:
        raise ValueError(f"VOODB_REPLICATIONS must be >= 1, got {count}")
    return count


class ExperimentRunner:
    """Runs replications of one configuration and aggregates metrics."""

    def __init__(
        self,
        config: VOODBConfig,
        confidence: float = 0.95,
        replication: Optional[Callable[[VOODBConfig, int], Dict[str, float]]] = None,
        executor=None,
    ) -> None:
        from repro.experiments.executor import standard_replication

        self.config = config
        self.confidence = confidence
        self.analyzer = ReplicationAnalyzer(confidence=confidence)
        self._replication = replication or standard_replication
        self._executor = executor

    # ------------------------------------------------------------------
    def run(
        self, replications: Optional[int] = None, base_seed: int = 1
    ) -> ReplicationAnalyzer:
        """Run ``replications`` independent replications (cached base)."""
        from repro.experiments.executor import executor_for
        from repro.experiments.specs import ExperimentSpec

        spec = ExperimentSpec(
            config=self.config,
            replications=replications,
            base_seed=base_seed,
            confidence=self.confidence,
            replication=self._replication,
        )
        if self._executor is not None:
            executor = self._executor
        else:
            executor = executor_for(self._replication)
        self.analyzer.add_all(executor.run(spec.jobs()))
        return self.analyzer

    def interval(self, metric: str) -> ConfidenceInterval:
        return self.analyzer.interval(metric)

    def mean(self, metric: str) -> float:
        return self.analyzer.mean(metric)

    # ------------------------------------------------------------------
    def pilot_study(
        self,
        metric: str = "total_ios",
        pilot_n: int = 10,
        relative_half_width: float = 0.05,
        base_seed: int = 1,
    ) -> int:
        """§4.2.2's sizing: run a pilot, return total replications needed.

        Returns ``pilot_n + n*`` where n* = n·(h/h*)² — the number of
        replications for the half-width to fall below
        ``relative_half_width`` of the mean at the configured confidence.
        With a replication cache attached to the executor, the pilot's
        replications are cache hits inside the subsequent full run.
        """
        self.run(replications=pilot_n, base_seed=base_seed)
        additional = self.analyzer.additional_replications_for(
            metric, relative_half_width
        )
        return pilot_n + additional


def run_model_phases(
    config: VOODBConfig,
    seed: int,
    phase_plan: Callable[[VOODBSimulation], Dict[str, float]],
    clustering_kwargs: Optional[dict] = None,
) -> Dict[str, float]:
    """Helper for multi-phase protocols (the §4.4 DSTC experiment).

    Builds the model and hands it to ``phase_plan``, which drives phases
    and returns the metric dictionary for this replication.
    """
    model = VOODBSimulation(config, seed=seed, clustering_kwargs=clustering_kwargs)
    return phase_plan(model)
