"""Replication orchestration: the paper's §4.2.2 protocol.

One :class:`ExperimentRunner` wraps one VOODB configuration.  It runs
independent replications (seeds ``base_seed + r``), feeds their metric
dictionaries to a :class:`~repro.despy.stats.ReplicationAnalyzer`, and
reports Student-t confidence intervals.  The pilot-study sizing of the
paper ("we first performed a pilot study with n = 10, then computed the
number of necessary additional replications n*") is available as
:meth:`ExperimentRunner.pilot_study`.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional

from repro.despy.stats import ConfidenceInterval, ReplicationAnalyzer
from repro.core.model import VOODBSimulation, build_database, run_replication
from repro.core.parameters import VOODBConfig

#: Fallback replication count when ``VOODB_REPLICATIONS`` is unset.
DEFAULT_REPLICATIONS = 5


def default_replications() -> int:
    """Replications per experiment point, from the environment.

    The paper used 100; the default here keeps the full suite
    laptop-sized.  Set ``VOODB_REPLICATIONS=100`` for fidelity runs.
    """
    value = os.environ.get("VOODB_REPLICATIONS", "")
    if not value:
        return DEFAULT_REPLICATIONS
    count = int(value)
    if count < 1:
        raise ValueError(f"VOODB_REPLICATIONS must be >= 1, got {count}")
    return count


class ExperimentRunner:
    """Runs replications of one configuration and aggregates metrics."""

    def __init__(
        self,
        config: VOODBConfig,
        confidence: float = 0.95,
        replication: Optional[Callable[[VOODBConfig, int], Dict[str, float]]] = None,
    ) -> None:
        self.config = config
        self.analyzer = ReplicationAnalyzer(confidence=confidence)
        self._replication = replication or self._default_replication

    @staticmethod
    def _default_replication(config: VOODBConfig, seed: int) -> Dict[str, float]:
        return run_replication(config, seed=seed).to_metrics()

    # ------------------------------------------------------------------
    def run(
        self, replications: Optional[int] = None, base_seed: int = 1
    ) -> ReplicationAnalyzer:
        """Run ``replications`` independent replications (cached base)."""
        count = replications if replications is not None else default_replications()
        if count < 1:
            raise ValueError(f"replications must be >= 1, got {count}")
        build_database(self.config.ocb)  # warm the shared-base cache once
        for r in range(count):
            self.analyzer.add(self._replication(self.config, base_seed + r))
        return self.analyzer

    def interval(self, metric: str) -> ConfidenceInterval:
        return self.analyzer.interval(metric)

    def mean(self, metric: str) -> float:
        return self.analyzer.mean(metric)

    # ------------------------------------------------------------------
    def pilot_study(
        self,
        metric: str = "total_ios",
        pilot_n: int = 10,
        relative_half_width: float = 0.05,
        base_seed: int = 1,
    ) -> int:
        """§4.2.2's sizing: run a pilot, return total replications needed.

        Returns ``pilot_n + n*`` where n* = n·(h/h*)² — the number of
        replications for the half-width to fall below
        ``relative_half_width`` of the mean at the configured confidence.
        """
        self.run(replications=pilot_n, base_seed=base_seed)
        additional = self.analyzer.additional_replications_for(
            metric, relative_half_width
        )
        return pilot_n + additional


def run_model_phases(
    config: VOODBConfig,
    seed: int,
    phase_plan: Callable[[VOODBSimulation], Dict[str, float]],
    clustering_kwargs: Optional[dict] = None,
) -> Dict[str, float]:
    """Helper for multi-phase protocols (the §4.4 DSTC experiment).

    Builds the model and hands it to ``phase_plan``, which drives phases
    and returns the metric dictionary for this replication.
    """
    model = VOODBSimulation(config, seed=seed, clustering_kwargs=clustering_kwargs)
    return phase_plan(model)
