"""Text rendering of regenerated figures and tables.

The benchmark harness prints "the same rows/series the paper reports":
for each figure, the x sweep with the paper's benchmark series, the
paper's simulation series and this reproduction side by side; for the
DSTC tables, the pre/overhead/post/gain rows.  EXPERIMENTS.md is built
from this output.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments.figures import ExperimentSeries
from repro.experiments.specs import SweepResult
from repro.experiments.tables import TABLE_7_REFERENCE, DSTCExperimentResult


def _format_row(columns: List[str], widths: List[int]) -> str:
    return "  ".join(str(c).rjust(w) for c, w in zip(columns, widths))


def format_sweep(
    result: SweepResult,
    metrics: Sequence[str] = ("total_ios",),
    x_label: str = "x",
) -> str:
    """Render any engine sweep as an aligned x-by-metric table.

    Unlike :func:`format_series`, this needs no paper reference — it is
    the generic renderer for ad-hoc :class:`SweepSpec` grids (examples,
    exploratory sweeps beyond the published figures).
    """
    spec = result.spec
    replications = result.analyzers[0].replications if result.analyzers else 0
    lines = [
        f"Sweep {spec.name}: mean of {replications} replications, "
        f"{spec.confidence:.0%} CI",
    ]
    header = [x_label]
    for metric in metrics:
        header.extend([metric, "±CI"])
    widths = [max(len(x_label), 10)] + [14, 8] * len(metrics)
    lines.append(_format_row(header, widths))
    for x, analyzer in zip(result.x_values, result.analyzers):
        row: List[str] = [str(x)]
        for metric in metrics:
            ci = analyzer.interval(metric)
            row.extend([f"{ci.mean:.1f}", f"{ci.half_width:.1f}"])
        lines.append(_format_row(row, widths))
    return "\n".join(lines)


def format_series(series: ExperimentSeries) -> str:
    """Render one figure as an aligned paper-vs-reproduction table."""
    ref = series.reference
    lines = [
        f"Figure {ref.figure}: {ref.title}",
        f"(paper series digitized from the plot; reproduction = mean of "
        f"{series.replications} replications, 95% CI)",
    ]
    header = [ref.x_label, "paper bench", "paper sim", "repro", "±CI"]
    widths = [max(len(header[0]), 10), 12, 12, 12, 8]
    lines.append(_format_row(header, widths))
    for x, bench, sim, ci in zip(
        series.x_values, ref.benchmark, ref.simulation, series.intervals
    ):
        lines.append(
            _format_row(
                [
                    x,
                    f"{bench:.0f}",
                    f"{sim:.0f}",
                    f"{ci.mean:.1f}",
                    f"{ci.half_width:.1f}",
                ],
                widths,
            )
        )
    return "\n".join(lines)


def format_dstc_table(result: DSTCExperimentResult) -> str:
    """Render a Table 6/8-style block (pre / overhead / post / gain)."""
    ref = result.reference
    lines = [
        f"Table {ref.table}: effects of DSTC on the performances "
        f"(mean number of I/Os) - memory {result.memory_mb:.0f} MB, "
        f"{result.replications} replications",
    ]
    header = ["row", "paper bench", "paper sim", "repro", "±CI"]
    widths = [22, 12, 12, 12, 8]
    lines.append(_format_row(header, widths))

    def row(name: str, bench, sim, ci) -> str:
        return _format_row(
            [
                name,
                "-" if bench is None else f"{bench:.2f}",
                "-" if sim is None else f"{sim:.2f}",
                f"{ci.mean:.2f}",
                f"{ci.half_width:.2f}",
            ],
            widths,
        )

    lines.append(
        row(
            "pre-clustering usage",
            ref.pre_clustering_bench,
            ref.pre_clustering_sim,
            result.pre_clustering,
        )
    )
    if ref.overhead_sim is not None:
        lines.append(
            row(
                "clustering overhead",
                ref.overhead_bench,
                ref.overhead_sim,
                result.clustering_overhead,
            )
        )
    lines.append(
        row(
            "post-clustering usage",
            ref.post_clustering_bench,
            ref.post_clustering_sim,
            result.post_clustering,
        )
    )
    lines.append(row("gain", ref.gain_bench, ref.gain_sim, result.gain))
    return "\n".join(lines)


def format_table7(result: DSTCExperimentResult) -> str:
    """Render the Table 7 block (cluster count and mean size)."""
    ref = TABLE_7_REFERENCE
    lines = [
        f"Table 7: DSTC clustering ({result.replications} replications)",
    ]
    header = ["row", "paper bench", "paper sim", "repro", "±CI"]
    widths = [26, 12, 12, 12, 8]
    lines.append(_format_row(header, widths))
    lines.append(
        _format_row(
            [
                "mean number of clusters",
                f"{ref['mean_clusters_bench']:.2f}",
                f"{ref['mean_clusters_sim']:.2f}",
                f"{result.clusters.mean:.2f}",
                f"{result.clusters.half_width:.2f}",
            ],
            widths,
        )
    )
    lines.append(
        _format_row(
            [
                "mean number of obj./clust.",
                f"{ref['mean_objects_per_cluster_bench']:.2f}",
                f"{ref['mean_objects_per_cluster_sim']:.2f}",
                f"{result.objects_per_cluster.mean:.2f}",
                f"{result.objects_per_cluster.half_width:.2f}",
            ],
            widths,
        )
    )
    return "\n".join(lines)
