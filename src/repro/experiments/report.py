"""Text and JSON rendering of regenerated figures, tables and scenarios.

The benchmark harness prints "the same rows/series the paper reports":
for each figure, the x sweep with the paper's benchmark series, the
paper's simulation series and this reproduction side by side; for the
DSTC tables, the pre/overhead/post/gain rows.  EXPERIMENTS.md is built
from this output.

The scenario renderers (:func:`format_scenario`,
:func:`scenario_to_json`, :func:`format_scenario_list`) take any object
with the :class:`~repro.scenarios.catalog.Scenario` shape — they are
duck-typed on purpose so this module stays import-cycle-free below the
scenarios package.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.experiments.figures import ExperimentSeries
from repro.experiments.specs import SweepResult
from repro.experiments.tables import TABLE_7_REFERENCE, DSTCExperimentResult


#: Kernel perf counters surfaced in the ``scenario run --json`` payload
#: (recorded per replication by ``VOODBSimulation.run``; see
#: :mod:`repro.despy.events` for what each one measures).
_KERNEL_COUNTERS = (
    "events_wheel_pushed",
    "events_pooled_reused",
    "ticks_overflowed",
    "wheel_recalibrations",
    "holds_warped",
)


def _format_row(columns: List[str], widths: List[int]) -> str:
    return "  ".join(str(c).rjust(w) for c, w in zip(columns, widths))


def format_sweep(
    result: SweepResult,
    metrics: Sequence[str] = ("total_ios",),
    x_label: str = "x",
) -> str:
    """Render any engine sweep as an aligned x-by-metric table.

    Unlike :func:`format_series`, this needs no paper reference — it is
    the generic renderer for ad-hoc :class:`SweepSpec` grids (examples,
    exploratory sweeps beyond the published figures).
    """
    spec = result.spec
    replications = result.analyzers[0].replications if result.analyzers else 0
    lines = [
        f"Sweep {spec.name}: mean of {replications} replications, "
        f"{spec.confidence:.0%} CI",
    ]
    header = [x_label]
    for metric in metrics:
        header.extend([metric, "±CI"])
    widths = [max(len(x_label), 10)] + [14, 8] * len(metrics)
    lines.append(_format_row(header, widths))
    for x, analyzer in zip(result.x_values, result.analyzers):
        row: List[str] = [str(x)]
        for metric in metrics:
            ci = analyzer.interval(metric)
            row.extend([f"{ci.mean:.1f}", f"{ci.half_width:.1f}"])
        lines.append(_format_row(row, widths))
    return "\n".join(lines)


def _metric_value(value: float) -> str:
    """Compact, deterministic number rendering for mixed-scale metrics.

    Scenario tables mix counts (hundreds of I/Os), rates (fractions) and
    times (milliseconds); four significant digits keep them all readable
    in one table without per-metric format strings.
    """
    return f"{value:.4g}"


def _cluster_servers_per_point(scenario) -> List[int]:
    """Server count of every point (0 = no cluster layer at that point)."""
    return [config.cluster.servers for _x, config in scenario.points]


def format_cluster_detail(scenario, result: SweepResult) -> List[str]:
    """Per-server utilization/throughput rows for cluster scenarios.

    One line per point: each server's mean disk utilization with its
    share of the point's service operations — how a hot shard or a
    clean scale-out actually reads in the golden report.
    """
    servers_per_point = _cluster_servers_per_point(scenario)
    if not any(servers_per_point):
        return []
    lines = ["", "per-server disk utilization (share of accesses):"]
    for (x, _config), servers, analyzer in zip(
        scenario.points, servers_per_point, result.analyzers
    ):
        if not servers:
            continue
        accesses = [
            analyzer.mean(f"server{i}_accesses") for i in range(servers)
        ]
        total_accesses = sum(accesses) or 1.0
        cells = [
            f"s{i} {_metric_value(analyzer.mean(f'server{i}_utilization'))}"
            f" ({accesses[i] / total_accesses:.1%})"
            for i in range(servers)
        ]
        lines.append(f"  {x}: " + "  ".join(cells))
    return lines


def _replication_async_per_point(scenario) -> List[bool]:
    """Whether each point runs async replication (consistency spectrum)."""
    return [config.replication.is_async for _x, config in scenario.points]


def format_replication(scenario, result: SweepResult) -> List[str]:
    """The async-replication block of a consistency-spectrum report.

    One line per async point: its quorum pair, the mean replication lag
    over how many replica applies, the stale reads the staleness window
    let through, and the deepest any node's apply queue got.
    """
    async_per_point = _replication_async_per_point(scenario)
    if not any(async_per_point):
        return []
    lines = ["", "async replication (apply queues, lag, staleness):"]
    for (x, config), is_async, analyzer in zip(
        scenario.points, async_per_point, result.analyzers
    ):
        if not is_async:
            lines.append(f"  {x}: sync")
            continue
        rep = config.replication
        metrics = set(analyzer.metrics())
        if "replica_lag_ms" not in metrics:
            lines.append(f"  {x}: n/a (no replication metrics)")
            continue
        lag = analyzer.mean("replica_lag_ms")
        applies = analyzer.mean("replica_applies")
        stale = analyzer.mean("stale_reads")
        stale_cell = f"stale reads {_metric_value(stale)}"
        if "stale_reads_per_1000_reads" in metrics:
            # The rate next to the raw counter: comparable across
            # workload sizes (per 1000 served page reads).
            rate = analyzer.mean("stale_reads_per_1000_reads")
            stale_cell += f" ({_metric_value(rate)}/1k reads)"
        peak = max(
            (
                analyzer.mean(f"server{i}_apply_queue_peak")
                for i in range(config.cluster.servers)
                if f"server{i}_apply_queue_peak" in metrics
            ),
            default=0.0,
        )
        lines.append(
            f"  {x}: R{rep.read_quorum}/W{rep.write_quorum}, "
            f"lag {_metric_value(lag)} ms over "
            f"{_metric_value(applies)} applies, "
            f"{stale_cell}, "
            f"peak queue {_metric_value(peak)}"
        )
    return lines


def _failover_per_point(scenario) -> List[bool]:
    """Whether each point composes per-node hazards with a cluster."""
    return [
        config.cluster.enabled and config.failures.enabled
        for _x, config in scenario.points
    ]


def format_failover(scenario, result: SweepResult) -> List[str]:
    """The failover block of a hazards-on-cluster report.

    One line per hazard point: crash count and downtime, transient
    faults, and how the cluster routed around the outages (reads that
    failed over to a live replica; writes that queued behind a down
    primary's recovery).
    """
    failover_per_point = _failover_per_point(scenario)
    if not any(failover_per_point):
        return []
    lines = ["", "failover (per-node hazards on the cluster):"]
    for (x, _config), active, analyzer in zip(
        scenario.points, failover_per_point, result.analyzers
    ):
        if not active:
            continue
        lines.append(
            f"  {x}: crashes {_metric_value(analyzer.mean('crashes'))} "
            f"(downtime {_metric_value(analyzer.mean('downtime_ms'))} ms), "
            f"transient faults "
            f"{_metric_value(analyzer.mean('transient_faults'))}, "
            f"read failovers "
            f"{_metric_value(analyzer.mean('read_failovers'))}, "
            f"write recovery waits "
            f"{_metric_value(analyzer.mean('write_recovery_waits'))}"
        )
    return lines


def _faults_per_point(scenario) -> List[bool]:
    """Whether each point runs the fault-tolerance layer."""
    return [
        config.cluster.enabled and config.faults.enabled
        for _x, config in scenario.points
    ]


#: The fault-layer counters the degradation block reports, in order:
#: ``(metric, label)`` pairs grouped into the two report lines.
_FAULT_LINE_ONE = (
    ("partitions", "partitions"),
    ("partition_ms", "partition ms"),
    ("gray_episodes", "gray episodes"),
    ("degraded_reads", "degraded reads"),
)
_FAULT_LINE_TWO = (
    ("remote_timeouts", "timeouts"),
    ("remote_retries", "retries"),
    ("abandoned_reads", "abandoned"),
    ("elections", "elections"),
    ("promotions", "promotions"),
    ("repair_pages", "repaired pages"),
    ("read_repairs", "read repairs"),
)


def format_faults(scenario, result: SweepResult) -> List[str]:
    """The degradation block of a fault-tolerance report.

    Two lines per fault point: the fault pressure (partitions and
    their total active time, gray episodes, degraded reads) and how
    the recovery machinery absorbed it (the retry ladder's timeouts/
    retries/abandons, elections and promotions, anti-entropy and
    read-repair traffic).
    """
    faults_per_point = _faults_per_point(scenario)
    if not any(faults_per_point):
        return []
    lines = ["", "fault tolerance (partitions, gray nodes, recovery):"]
    for (x, _config), active, analyzer in zip(
        scenario.points, faults_per_point, result.analyzers
    ):
        if not active:
            continue
        metrics = set(analyzer.metrics())
        if "partitions" not in metrics:
            lines.append(f"  {x}: n/a (no fault metrics)")
            continue
        for pairs, indent in ((_FAULT_LINE_ONE, f"  {x}: "), (
            _FAULT_LINE_TWO,
            "     ",
        )):
            cells = [
                f"{label} {_metric_value(analyzer.mean(metric))}"
                for metric, label in pairs
            ]
            lines.append(indent + ", ".join(cells))
    return lines


#: Metric names the aggregated source tier flattens per replication
#: (see :meth:`repro.core.results.PhaseResults.to_metrics`).
_AGGREGATION_METRICS = (
    "aggregation_population",
    "calibrated_rate_tps",
    "calibration_iterations",
    "calibration_converged",
    "aggregate_transactions",
    "probe_transactions",
)


def _scenario_is_aggregated(scenario) -> bool:
    """Whether the scenario runs the flow-aggregated source tier."""
    return scenario.arrival_mode == "aggregated"


def _has_aggregation_metrics(analyzer) -> bool:
    metrics = set(analyzer.metrics())
    return all(name in metrics for name in _AGGREGATION_METRICS)


def format_aggregation(scenario, result: SweepResult) -> List[str]:
    """The flow-aggregation block of a scale scenario report.

    One line per point: the population the aggregate stream stood in
    for, the calibrated fixed-point rate (with how many pilot
    iterations it took and whether it converged within tolerance), the
    aggregate/probe transaction split, and the probe cohort's latency
    (mean and p95) — the per-user numbers only the probes can observe.
    """
    if not _scenario_is_aggregated(scenario):
        return []
    lines = [
        "",
        "flow aggregation (calibrated open stream + probe cohort):",
    ]
    for (x, _config), analyzer in zip(scenario.points, result.analyzers):
        if not _has_aggregation_metrics(analyzer):
            lines.append(f"  {x}: n/a (no aggregated phase metrics)")
            continue
        population = analyzer.mean("aggregation_population")
        rate = analyzer.mean("calibrated_rate_tps")
        iterations = analyzer.mean("calibration_iterations")
        converged = analyzer.mean("calibration_converged") >= 1.0
        aggregate = analyzer.mean("aggregate_transactions")
        probe = analyzer.mean("probe_transactions")
        line = (
            f"  {x}: N={population:.0f}, rate {_metric_value(rate)} tps "
            f"({iterations:.0f} pilot iters, "
            f"{'converged' if converged else 'NOT converged'}), "
            f"aggregate/probe txns {_metric_value(aggregate)}/"
            f"{_metric_value(probe)}"
        )
        metrics = set(analyzer.metrics())
        if "probe_mean_response_time_ms" in metrics:
            mean_ms = analyzer.interval("probe_mean_response_time_ms")
            p95_ms = analyzer.mean("probe_p95_response_time_ms")
            line += (
                f", probe {_metric_value(mean_ms.mean)} ms "
                f"±{_metric_value(mean_ms.half_width)} "
                f"(p95 {_metric_value(p95_ms)})"
            )
        lines.append(line)
    return lines


#: Metric names the steady-state pipeline flattens per replication
#: (see :meth:`repro.core.results.PhaseResults.to_metrics`).
_STEADY_METRICS = (
    "steady_response_time_ms",
    "steady_response_ci_ms",
    "steady_truncated",
    "steady_batches",
)


def _scenario_is_open(scenario) -> bool:
    """Whether the scenario drives an open (source-driven) system."""
    return scenario.arrival_mode != "closed"


def _has_steady_metrics(analyzer) -> bool:
    metrics = set(analyzer.metrics())
    return all(name in metrics for name in _STEADY_METRICS)


def format_steady_state(scenario, result: SweepResult) -> List[str]:
    """The steady-state block of an open-system scenario report.

    One line per point: the MSER-5 truncated batch-means response-time
    estimate with two half-widths — the across-replication CI of the
    per-replication point estimates, and the mean within-replication
    batch-means CI — plus how much warm-up MSER deleted and how many
    batches the within-run CI used.  The raw (transient-contaminated)
    mean stays in the table above; this block is the defensible number.
    """
    if not _scenario_is_open(scenario):
        return []
    lines = [
        "",
        "steady-state response time "
        "(MSER-5 truncation + batch means, per replication):",
    ]
    for (x, _config), analyzer in zip(scenario.points, result.analyzers):
        if not _has_steady_metrics(analyzer):
            lines.append(
                f"  {x}: n/a (too few observations for a steady-state estimate)"
            )
            continue
        point = analyzer.interval("steady_response_time_ms")
        batch_ci = analyzer.mean("steady_response_ci_ms")
        truncated = analyzer.mean("steady_truncated")
        observations = analyzer.mean("transactions")
        batches = analyzer.mean("steady_batches")
        lines.append(
            f"  {x}: {_metric_value(point.mean)} ms "
            f"±{_metric_value(point.half_width)} across replications "
            f"(batch CI ±{_metric_value(batch_ci)}, "
            f"truncated {_metric_value(truncated)}/"
            f"{_metric_value(observations)} obs, "
            f"{_metric_value(batches)} batches)"
        )
    return lines


def format_scenario(scenario, result: SweepResult) -> str:
    """Render one executed scenario as its golden text report."""
    spec = result.spec
    replications = result.analyzers[0].replications if result.analyzers else 0
    lines = [
        f"Scenario {scenario.name}: {scenario.title}",
        f"(arrivals: {scenario.arrival_mode}; mean of {replications} "
        f"replications, {spec.confidence:.0%} CI)",
    ]
    header = [scenario.x_label]
    widths = [max(len(scenario.x_label), 10)]
    for metric in scenario.metrics:
        header.extend([metric, "±CI"])
        widths.extend([max(len(metric), 12), 8])
    lines.append(_format_row(header, widths))
    for x, analyzer in zip(result.x_values, result.analyzers):
        row: List[str] = [str(x)]
        for metric in scenario.metrics:
            ci = analyzer.interval(metric)
            row.extend([_metric_value(ci.mean), _metric_value(ci.half_width)])
        lines.append(_format_row(row, widths))
    lines.extend(format_cluster_detail(scenario, result))
    lines.extend(format_replication(scenario, result))
    lines.extend(format_failover(scenario, result))
    lines.extend(format_faults(scenario, result))
    lines.extend(format_aggregation(scenario, result))
    lines.extend(format_steady_state(scenario, result))
    return "\n".join(lines)


def scenario_to_json(scenario, result: SweepResult) -> Dict[str, Any]:
    """JSON-ready summary of one executed scenario (CLI ``--json``)."""
    replications = result.analyzers[0].replications if result.analyzers else 0
    metrics: Dict[str, Any] = {}
    for metric in scenario.metrics:
        intervals = result.intervals(metric)
        metrics[metric] = {
            "means": [ci.mean for ci in intervals],
            "half_widths": [ci.half_width for ci in intervals],
        }
    payload = {
        "scenario": scenario.name,
        "title": scenario.title,
        "arrival_mode": scenario.arrival_mode,
        "x_label": scenario.x_label,
        "x_values": [str(x) for x in result.x_values],
        "replications": replications,
        "base_seed": scenario.base_seed,
        "metrics": metrics,
    }
    kernel: Dict[str, Any] = {}
    for counter in _KERNEL_COUNTERS:
        metric = f"kernel_{counter}"
        if all(metric in analyzer.metrics() for analyzer in result.analyzers):
            kernel[counter] = {
                "means": [
                    analyzer.mean(metric) for analyzer in result.analyzers
                ]
            }
    if kernel:
        payload["kernel"] = kernel
    if _scenario_is_aggregated(scenario):
        aggregation: Dict[str, Any] = {
            "populations": [],
            "calibrated_rates_tps": [],
            "calibration_iterations": [],
            "calibration_converged": [],
            "aggregate_transactions": [],
            "probe_transactions": [],
            "probe_mean_response_times_ms": [],
            "probe_p95_response_times_ms": [],
        }
        for analyzer in result.analyzers:
            if not _has_aggregation_metrics(analyzer):
                for values in aggregation.values():
                    values.append(None)
                continue
            metrics_present = set(analyzer.metrics())
            aggregation["populations"].append(
                analyzer.mean("aggregation_population")
            )
            aggregation["calibrated_rates_tps"].append(
                analyzer.mean("calibrated_rate_tps")
            )
            aggregation["calibration_iterations"].append(
                analyzer.mean("calibration_iterations")
            )
            aggregation["calibration_converged"].append(
                analyzer.mean("calibration_converged") >= 1.0
            )
            aggregation["aggregate_transactions"].append(
                analyzer.mean("aggregate_transactions")
            )
            aggregation["probe_transactions"].append(
                analyzer.mean("probe_transactions")
            )
            for key, metric in (
                ("probe_mean_response_times_ms", "probe_mean_response_time_ms"),
                ("probe_p95_response_times_ms", "probe_p95_response_time_ms"),
            ):
                aggregation[key].append(
                    analyzer.mean(metric) if metric in metrics_present else None
                )
        payload["aggregation"] = aggregation
    if _scenario_is_open(scenario):
        steady: Dict[str, Any] = {
            "method": "mser5+batch-means",
            "metric": "response_time_ms",
            "points": [],
            "replication_half_widths": [],
            "batch_half_widths": [],
            "truncated": [],
            "batches": [],
        }
        for analyzer in result.analyzers:
            if not _has_steady_metrics(analyzer):
                for key in (
                    "points",
                    "replication_half_widths",
                    "batch_half_widths",
                    "truncated",
                    "batches",
                ):
                    steady[key].append(None)
                continue
            interval = analyzer.interval("steady_response_time_ms")
            steady["points"].append(interval.mean)
            steady["replication_half_widths"].append(interval.half_width)
            steady["batch_half_widths"].append(analyzer.mean("steady_response_ci_ms"))
            steady["truncated"].append(analyzer.mean("steady_truncated"))
            steady["batches"].append(analyzer.mean("steady_batches"))
        payload["steady_state"] = steady
    servers_per_point = _cluster_servers_per_point(scenario)
    if any(servers_per_point):
        payload["cluster"] = {
            "servers": servers_per_point,
            "per_server_utilization": [
                [
                    analyzer.mean(f"server{i}_utilization")
                    for i in range(servers)
                ]
                for servers, analyzer in zip(servers_per_point, result.analyzers)
            ],
        }
    async_per_point = _replication_async_per_point(scenario)
    if any(async_per_point):
        replication: Dict[str, Any] = {
            "modes": [
                config.replication.mode for _x, config in scenario.points
            ],
            "read_quorums": [
                config.replication.read_quorum
                for _x, config in scenario.points
            ],
            "write_quorums": [
                config.replication.write_quorum
                for _x, config in scenario.points
            ],
            "replica_lag_ms": [],
            "replica_applies": [],
            "stale_reads": [],
            "stale_reads_per_1000_reads": [],
        }
        for is_async, analyzer in zip(async_per_point, result.analyzers):
            present = set(analyzer.metrics())
            for key, metric in (
                ("replica_lag_ms", "replica_lag_ms"),
                ("replica_applies", "replica_applies"),
                ("stale_reads", "stale_reads"),
                (
                    "stale_reads_per_1000_reads",
                    "stale_reads_per_1000_reads",
                ),
            ):
                replication[key].append(
                    analyzer.mean(metric)
                    if is_async and metric in present
                    else None
                )
        payload["replication"] = replication
    faults_per_point = _faults_per_point(scenario)
    if any(faults_per_point):
        fault_metrics = [metric for metric, _label in _FAULT_LINE_ONE] + [
            metric for metric, _label in _FAULT_LINE_TWO
        ]
        faults: Dict[str, Any] = {metric: [] for metric in fault_metrics}
        for active, analyzer in zip(faults_per_point, result.analyzers):
            present = set(analyzer.metrics())
            for metric in fault_metrics:
                faults[metric].append(
                    analyzer.mean(metric)
                    if active and metric in present
                    else None
                )
        payload["faults"] = faults
    return payload


def format_scenario_list(scenarios: Sequence[Any]) -> str:
    """The ``voodb scenario list`` table: name, arrivals, points, title."""
    header = ["name", "arrivals", "points", "title"]
    rows = [
        [s.name, s.arrival_mode, str(len(s.points)), s.title] for s in scenarios
    ]
    table = [header] + rows
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in table
    ]
    return "\n".join(lines)


def format_scenario_description(scenario) -> str:
    """The ``voodb scenario describe`` block for one scenario."""
    lines = [
        f"Scenario {scenario.name}: {scenario.title}",
        "",
        scenario.description,
        "",
        f"arrival mode:  {scenario.arrival_mode}",
        f"points:        {len(scenario.points)} "
        f"({scenario.x_label}: {', '.join(str(x) for x, _ in scenario.points)})",
        f"replications:  {scenario.replications} (base seed {scenario.base_seed})",
        f"metrics:       {', '.join(scenario.metrics)}",
        f"golden output: results/{scenario.golden_name}.txt",
    ]
    first = scenario.points[0][1]
    ocb = first.ocb
    lines += [
        "",
        "first point:",
        f"  system:    {first.sysclass.value}, buffer {first.buffsize} pages "
        f"x {first.pgsize} B, {first.pgrep} replacement",
        f"  database:  NC={ocb.nc}, NO={ocb.no}",
        f"  workload:  HOTN={ocb.hotn}, COLDN={ocb.coldn}, mix "
        f"set/simple/hier/stoch/ins/del = {ocb.pset:.2f}/{ocb.psimple:.2f}/"
        f"{ocb.phier:.2f}/{ocb.pstoch:.2f}/{ocb.pinsert:.2f}/{ocb.pdelete:.2f}, "
        f"pwrite={ocb.pwrite:.2f}",
        f"  users:     NUSERS={first.nusers}, MULTILVL={first.multilvl}",
        f"  failures:  {'on' if first.failures.enabled else 'off'}",
    ]
    if first.aggregation.enabled:
        aggregation = first.aggregation
        lines.append(
            f"  aggregated: population {aggregation.population}, probe "
            f"cohort {aggregation.probe_cohort}, tolerance "
            f"{aggregation.tolerance:g}, max {aggregation.max_iterations} "
            f"pilot iterations x {aggregation.pilot_transactions} txns"
        )
    if first.cluster.enabled:
        topology = first.cluster
        interconnect = (
            "free"
            if topology.interconnect_mbps == float("inf")
            else f"{topology.interconnect_mbps:g} MB/s"
        )
        lines.append(
            f"  cluster:   {topology.servers} servers, {topology.placement} "
            f"placement, replication {topology.replication}, "
            f"interconnect {interconnect}"
        )
        if first.replication.is_async:
            rep = first.replication
            guarantees = [
                label
                for flag, label in (
                    (rep.read_your_writes, "read-your-writes"),
                    (rep.monotonic_reads, "monotonic-reads"),
                )
                if flag
            ]
            lines.append(
                f"  consistency: async, R={rep.read_quorum}/"
                f"W={rep.write_quorum}, apply delay "
                f"{rep.apply_delay_ms:g} ms"
                + (", " + ", ".join(guarantees) if guarantees else "")
            )
        if first.faults.enabled:
            fault = first.faults
            retry = first.retry
            kinds = []
            if fault.partition_mtbf_ms > 0:
                kinds.append(
                    f"partitions (mtbf {fault.partition_mtbf_ms:g} ms, "
                    f"heal {fault.partition_heal_ms:g} ms)"
                )
            if fault.gray_mtbf_ms > 0:
                kinds.append(
                    f"gray x{fault.gray_slowdown:g} "
                    f"(mtbf {fault.gray_mtbf_ms:g} ms, "
                    f"heal {fault.gray_heal_ms:g} ms)"
                )
            if fault.repair_interval_ms > 0:
                kinds.append(
                    f"anti-entropy every {fault.repair_interval_ms:g} ms"
                )
            lines.append(f"  fault plan: {'; '.join(kinds)}")
            lines.append(
                f"  retry:     timeout {retry.timeout_ms:g} ms x "
                f"{retry.max_retries + 1} attempts, backoff "
                f"{retry.backoff_base_ms:g} ms "
                f"x{retry.backoff_multiplier:g} (jitter {retry.jitter:g}); "
                f"election delay {fault.election_delay_ms:g} ms"
            )
    return "\n".join(lines)


def format_series(series: ExperimentSeries) -> str:
    """Render one figure as an aligned paper-vs-reproduction table."""
    ref = series.reference
    lines = [
        f"Figure {ref.figure}: {ref.title}",
        f"(paper series digitized from the plot; reproduction = mean of "
        f"{series.replications} replications, 95% CI)",
    ]
    header = [ref.x_label, "paper bench", "paper sim", "repro", "±CI"]
    widths = [max(len(header[0]), 10), 12, 12, 12, 8]
    lines.append(_format_row(header, widths))
    for x, bench, sim, ci in zip(
        series.x_values, ref.benchmark, ref.simulation, series.intervals
    ):
        lines.append(
            _format_row(
                [
                    x,
                    f"{bench:.0f}",
                    f"{sim:.0f}",
                    f"{ci.mean:.1f}",
                    f"{ci.half_width:.1f}",
                ],
                widths,
            )
        )
    return "\n".join(lines)


def format_dstc_table(result: DSTCExperimentResult) -> str:
    """Render a Table 6/8-style block (pre / overhead / post / gain)."""
    ref = result.reference
    lines = [
        f"Table {ref.table}: effects of DSTC on the performances "
        f"(mean number of I/Os) - memory {result.memory_mb:.0f} MB, "
        f"{result.replications} replications",
    ]
    header = ["row", "paper bench", "paper sim", "repro", "±CI"]
    widths = [22, 12, 12, 12, 8]
    lines.append(_format_row(header, widths))

    def row(name: str, bench, sim, ci) -> str:
        return _format_row(
            [
                name,
                "-" if bench is None else f"{bench:.2f}",
                "-" if sim is None else f"{sim:.2f}",
                f"{ci.mean:.2f}",
                f"{ci.half_width:.2f}",
            ],
            widths,
        )

    lines.append(
        row(
            "pre-clustering usage",
            ref.pre_clustering_bench,
            ref.pre_clustering_sim,
            result.pre_clustering,
        )
    )
    if ref.overhead_sim is not None:
        lines.append(
            row(
                "clustering overhead",
                ref.overhead_bench,
                ref.overhead_sim,
                result.clustering_overhead,
            )
        )
    lines.append(
        row(
            "post-clustering usage",
            ref.post_clustering_bench,
            ref.post_clustering_sim,
            result.post_clustering,
        )
    )
    lines.append(row("gain", ref.gain_bench, ref.gain_sim, result.gain))
    return "\n".join(lines)


def format_table7(result: DSTCExperimentResult) -> str:
    """Render the Table 7 block (cluster count and mean size)."""
    ref = TABLE_7_REFERENCE
    lines = [
        f"Table 7: DSTC clustering ({result.replications} replications)",
    ]
    header = ["row", "paper bench", "paper sim", "repro", "±CI"]
    widths = [26, 12, 12, 12, 8]
    lines.append(_format_row(header, widths))
    lines.append(
        _format_row(
            [
                "mean number of clusters",
                f"{ref['mean_clusters_bench']:.2f}",
                f"{ref['mean_clusters_sim']:.2f}",
                f"{result.clusters.mean:.2f}",
                f"{result.clusters.half_width:.2f}",
            ],
            widths,
        )
    )
    lines.append(
        _format_row(
            [
                "mean number of obj./clust.",
                f"{ref['mean_objects_per_cluster_bench']:.2f}",
                f"{ref['mean_objects_per_cluster_sim']:.2f}",
                f"{result.objects_per_cluster.mean:.2f}",
                f"{result.objects_per_cluster.half_width:.2f}",
            ],
            widths,
        )
    )
    return "\n".join(lines)
