"""The built-in scenario catalog.

Ten ready-made studies over the O2 instantiation, spanning the axes the
ROADMAP's "as many scenarios as you can imagine" asks for: the
paper-faithful closed system, open-system arrivals (steady Poisson and
bursty MMPP), OLTP read/write mixes, hot-key skew, a multiprogramming
ramp, a failure storm, and the cold-vs-warm cache pair.

Every scenario is deliberately small (NC=20, NO=2000, a few hundred
transactions, 3 pinned replications) so the whole catalog regenerates
in seconds: each one's report is committed under
``results/scenario_*.txt`` and re-derived byte-for-byte by the CI drift
gate on every run.
"""

from __future__ import annotations

from repro.core.failures import FailureConfig
from repro.core.parameters import ArrivalConfig, VOODBConfig
from repro.scenarios.catalog import Scenario, register_scenario
from repro.systems.o2 import o2_config

#: Shared database shape: small enough for seconds-scale goldens, big
#: enough that buffer pressure and locality still matter.
BASE_NC = 20
BASE_NO = 2000
BASE_HOTN = 200

#: Server cache (MB) for the cache-sensitive scenarios: ~120 pages,
#: well under the ~410-page base, so misses and evictions stay visible.
SMALL_CACHE_MB = 0.5


def _base(
    cache_mb: float = 2.0, hotn: int = BASE_HOTN, **ocb_overrides
) -> VOODBConfig:
    """The catalog's baseline O2 point (Table 4 settings, small base)."""
    return o2_config(
        nc=BASE_NC, no=BASE_NO, cache_mb=cache_mb, hotn=hotn, **ocb_overrides
    )


def _single(name: str, title: str, description: str, config, **kwargs) -> Scenario:
    return register_scenario(
        Scenario(
            name=name,
            title=title,
            description=description,
            points=(("baseline", config),),
            x_label="point",
            **kwargs,
        )
    )


# ----------------------------------------------------------------------
# 1. The paper-faithful closed system
# ----------------------------------------------------------------------
PAPER_BASELINE = _single(
    "paper-baseline",
    "Paper-faithful closed system",
    "The §4.3 protocol in miniature: one user, the Table 5 transaction "
    "mix, O2's Table 4 settings, closed-system submission.",
    _base(),
)

# ----------------------------------------------------------------------
# 2-3. Open-system arrivals
# ----------------------------------------------------------------------
OPEN_POISSON = _single(
    "open-poisson",
    "Open system, steady Poisson arrivals",
    "Transactions arrive at 40/s with exponential gaps instead of the "
    "closed NUSERS loop; MULTILVL admission bounds concurrency while "
    "queueing delay shows up in the response time.",
    _base().with_changes(arrivals=ArrivalConfig(mode="poisson", rate_tps=40.0)),
)

OPEN_BURSTY = _single(
    "open-bursty",
    "Open system, bursty MMPP arrivals",
    "A two-state Markov-modulated Poisson source: calm 10/s background "
    "traffic with 250/s bursts (mean burst 400 ms, mean calm 4 s) — the "
    "worst case for admission queues and buffer churn.",
    _base().with_changes(
        arrivals=ArrivalConfig(
            mode="mmpp",
            rate_tps=10.0,
            burst_rate_tps=250.0,
            mean_calm_ms=4_000.0,
            mean_burst_ms=400.0,
        )
    ),
)

# ----------------------------------------------------------------------
# 4-5. OLTP mixes
# ----------------------------------------------------------------------
READ_HEAVY = _single(
    "read-heavy",
    "Read-heavy OLTP mix",
    "Set-oriented and simple traversals dominate (70%), writes are rare "
    "(2% of accesses) — an analytics-leaning read workload.",
    _base(
        pset=0.40, psimple=0.30, phier=0.20, pstoch=0.10, pwrite=0.02
    ),
)

WRITE_HEAVY = _single(
    "write-heavy",
    "Write-heavy OLTP mix with churn",
    "Half of all object accesses write, and 20% of transactions insert "
    "or delete objects — dirty evictions, exclusive locking and object "
    "churn all engaged.",
    _base(
        pset=0.15,
        psimple=0.25,
        phier=0.20,
        pstoch=0.20,
        pinsert=0.10,
        pdelete=0.10,
        pwrite=0.50,
    ),
)

# ----------------------------------------------------------------------
# 6. Hot-key skew
# ----------------------------------------------------------------------
HOT_KEY_SKEW = _single(
    "hot-key-skew",
    "Zipf hot-key skew on a small cache",
    "Transaction roots drawn from a Zipf(1.5) distribution over the "
    "object base with a small (0.5 MB) server cache: the hot set stays "
    "resident while the cold tail misses.",
    _base(cache_mb=SMALL_CACHE_MB, root_skew=1.5),
    metrics=("total_ios", "hit_rate", "mean_response_time_ms"),
)

# ----------------------------------------------------------------------
# 7. Multiprogramming ramp
# ----------------------------------------------------------------------
MULTIPROGRAMMING_RAMP = register_scenario(
    Scenario(
        name="multiprogramming-ramp",
        title="Multiprogramming ramp (1-8 users)",
        description=(
            "The closed user population ramps 1 -> 8 at a multiprogramming "
            "level of 4, with 20% writes over a hot root region: throughput "
            "climbs until the scheduler saturates and lock waits take over."
        ),
        points=tuple(
            (
                nusers,
                _base(pwrite=0.20, root_region=100).with_changes(
                    nusers=nusers, multilvl=4
                ),
            )
            for nusers in (1, 2, 4, 8)
        ),
        x_label="users",
        metrics=(
            "total_ios",
            "throughput_tps",
            "lock_waits",
            "mean_response_time_ms",
        ),
    )
)

# ----------------------------------------------------------------------
# 8. Failure storm
# ----------------------------------------------------------------------
FAILURE_STORM = _single(
    "failure-storm",
    "Failure storm (transient faults + crashes)",
    "The §5 hazards module at storm intensity: a transient I/O fault "
    "every ~300 ms of simulated time and a crash every ~40 s, each "
    "crash costing 1.5 s of recovery and a cold cache.",
    _base(cache_mb=SMALL_CACHE_MB).with_changes(
        failures=FailureConfig(
            transient_mtbf_ms=300.0,
            transient_penalty_ms=25.0,
            crash_mtbf_ms=40_000.0,
            recovery_time_ms=1_500.0,
        )
    ),
    metrics=(
        "total_ios",
        "transient_faults",
        "crashes",
        "downtime_ms",
        "mean_response_time_ms",
    ),
)

# ----------------------------------------------------------------------
# 9-10. Cold vs. warm cache
# ----------------------------------------------------------------------
COLD_CACHE = _single(
    "cold-cache",
    "Cold cache (no warm-up run)",
    "The measured run starts against an empty 0.5 MB buffer: every "
    "first touch misses, the paper's COLDN warm-up skipped.",
    _base(cache_mb=SMALL_CACHE_MB, coldn=0),
    metrics=("total_ios", "hit_rate", "mean_response_time_ms"),
)

WARM_CACHE = _single(
    "warm-cache",
    "Warm cache (COLDN warm-up first)",
    "The same workload and 0.5 MB buffer as cold-cache, but 200 unmeasured "
    "warm-up transactions populate the buffer first (§4.3's protocol).",
    _base(cache_mb=SMALL_CACHE_MB, coldn=200),
    metrics=("total_ios", "hit_rate", "mean_response_time_ms"),
)
