"""The built-in scenario catalog, loaded from committed scenario files.

Every built-in scenario is a ``.yaml`` file under
``src/repro/scenarios/library/`` in the declarative schema of
:mod:`repro.scenarios.schema` — the same format ``voodb scenario run
path/to/file.yaml`` accepts, so adding a study to the catalog is a data
change: drop a file in ``library/`` and list it in :data:`MANIFEST`.
The files are the source of truth; this module only loads and registers
them, which keeps the schema honest (a scenario the file format cannot
express cannot hide in the catalog).

Twenty-six ready-made studies over the O2 instantiation, spanning the
axes the ROADMAP's "as many scenarios as you can imagine" asks for: the
paper-faithful closed system, open-system arrivals (steady Poisson and
bursty MMPP), OLTP read/write mixes, hot-key skew, a multiprogramming
ramp, a failure storm, the cold-vs-warm cache pair, the cluster quartet
(scale-out ramp, skewed hot shard, replicated read fan-out,
object-server forwarding) driving open-system load against sharded
multi-server topologies, the consistency-spectrum trio (async
replica-lag storm, crash failover under load, quorum stale-read
audit — see :class:`~repro.core.parameters.ReplicationConfig`), the
OCB genericity trio mapping the classic
OO1 / OO7 / HyperModel workloads onto OCB's parameters, the
flow-aggregated scale trio (10⁴ / 10⁵ / 10⁶ users collapsed into
calibrated open streams with probe cohorts — see
:mod:`repro.core.aggregation`), and the fault-tolerance trio
(partition storm, gray-failure drag, anti-entropy catch-up — see
:class:`~repro.core.failures.FaultConfig`).

Every scenario is deliberately small (NC=20, NO=2000, a few hundred
transactions, 3 pinned replications) so the whole catalog regenerates
in seconds: each one's report is committed under
``results/scenario_*.txt`` and re-derived byte-for-byte by the CI drift
gate on every run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Tuple

from repro.scenarios.catalog import Scenario, register_scenario
from repro.scenarios.loader import load_scenario_file

#: Directory holding the committed built-in scenario files.
LIBRARY_DIR = Path(__file__).resolve().parent / "library"

#: The catalog, in registration (listing) order.  Each entry names one
#: ``library/<name>.yaml`` file whose ``name:`` field must match.
MANIFEST: Tuple[str, ...] = (
    "paper-baseline",
    "open-poisson",
    "open-bursty",
    "read-heavy",
    "write-heavy",
    "hot-key-skew",
    "multiprogramming-ramp",
    "failure-storm",
    "cold-cache",
    "warm-cache",
    "cluster-scale-out",
    "cluster-hot-shard",
    "cluster-replicated-read",
    "cluster-object-server",
    "replica-lag-storm",
    "failover-under-load",
    "stale-read-audit",
    "ocb-oo1-lookup",
    "ocb-oo7-traversal",
    "ocb-hypermodel-closure",
    "scale-10k",
    "scale-100k",
    "scale-1m",
    "partition-storm",
    "gray-failure-drag",
    "anti-entropy-catchup",
)


def _load_catalog() -> Tuple[Scenario, ...]:
    loaded = []
    for name in MANIFEST:
        path = LIBRARY_DIR / f"{name}.yaml"
        scenario = load_scenario_file(path)
        if scenario.name != name:
            raise ValueError(
                f"scenario file {path} declares name {scenario.name!r}, "
                f"expected {name!r} (file name and scenario name must match)"
            )
        loaded.append(register_scenario(scenario))
    return tuple(loaded)


BUILTIN_SCENARIOS: Tuple[Scenario, ...] = _load_catalog()
