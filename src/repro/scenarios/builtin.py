"""The built-in scenario catalog.

Fourteen ready-made studies over the O2 instantiation, spanning the
axes the ROADMAP's "as many scenarios as you can imagine" asks for: the
paper-faithful closed system, open-system arrivals (steady Poisson and
bursty MMPP), OLTP read/write mixes, hot-key skew, a multiprogramming
ramp, a failure storm, the cold-vs-warm cache pair, and the cluster
quartet (scale-out ramp, skewed hot shard, replicated read fan-out,
object-server forwarding) driving open-system load against sharded
multi-server topologies.

Every scenario is deliberately small (NC=20, NO=2000, a few hundred
transactions, 3 pinned replications) so the whole catalog regenerates
in seconds: each one's report is committed under
``results/scenario_*.txt`` and re-derived byte-for-byte by the CI drift
gate on every run.
"""

from __future__ import annotations

from repro.core.failures import FailureConfig
from repro.core.parameters import (
    ArrivalConfig,
    ClusterConfig,
    SystemClass,
    VOODBConfig,
)
from repro.scenarios.catalog import Scenario, register_scenario
from repro.systems.o2 import o2_config

#: Shared database shape: small enough for seconds-scale goldens, big
#: enough that buffer pressure and locality still matter.
BASE_NC = 20
BASE_NO = 2000
BASE_HOTN = 200

#: Server cache (MB) for the cache-sensitive scenarios: ~120 pages,
#: well under the ~410-page base, so misses and evictions stay visible.
SMALL_CACHE_MB = 0.5


def _base(
    cache_mb: float = 2.0, hotn: int = BASE_HOTN, **ocb_overrides
) -> VOODBConfig:
    """The catalog's baseline O2 point (Table 4 settings, small base)."""
    return o2_config(
        nc=BASE_NC, no=BASE_NO, cache_mb=cache_mb, hotn=hotn, **ocb_overrides
    )


def _single(name: str, title: str, description: str, config, **kwargs) -> Scenario:
    return register_scenario(
        Scenario(
            name=name,
            title=title,
            description=description,
            points=(("baseline", config),),
            x_label="point",
            **kwargs,
        )
    )


# ----------------------------------------------------------------------
# 1. The paper-faithful closed system
# ----------------------------------------------------------------------
PAPER_BASELINE = _single(
    "paper-baseline",
    "Paper-faithful closed system",
    "The §4.3 protocol in miniature: one user, the Table 5 transaction "
    "mix, O2's Table 4 settings, closed-system submission.",
    _base(),
)

# ----------------------------------------------------------------------
# 2-3. Open-system arrivals
# ----------------------------------------------------------------------
OPEN_POISSON = _single(
    "open-poisson",
    "Open system, steady Poisson arrivals",
    "Transactions arrive at 40/s with exponential gaps instead of the "
    "closed NUSERS loop; MULTILVL admission bounds concurrency while "
    "queueing delay shows up in the response time.",
    _base().with_changes(arrivals=ArrivalConfig(mode="poisson", rate_tps=40.0)),
)

OPEN_BURSTY = _single(
    "open-bursty",
    "Open system, bursty MMPP arrivals",
    "A two-state Markov-modulated Poisson source: calm 10/s background "
    "traffic with 250/s bursts (mean burst 400 ms, mean calm 4 s) — the "
    "worst case for admission queues and buffer churn.",
    _base().with_changes(
        arrivals=ArrivalConfig(
            mode="mmpp",
            rate_tps=10.0,
            burst_rate_tps=250.0,
            mean_calm_ms=4_000.0,
            mean_burst_ms=400.0,
        )
    ),
)

# ----------------------------------------------------------------------
# 4-5. OLTP mixes
# ----------------------------------------------------------------------
READ_HEAVY = _single(
    "read-heavy",
    "Read-heavy OLTP mix",
    "Set-oriented and simple traversals dominate (70%), writes are rare "
    "(2% of accesses) — an analytics-leaning read workload.",
    _base(
        pset=0.40, psimple=0.30, phier=0.20, pstoch=0.10, pwrite=0.02
    ),
)

WRITE_HEAVY = _single(
    "write-heavy",
    "Write-heavy OLTP mix with churn",
    "Half of all object accesses write, and 20% of transactions insert "
    "or delete objects — dirty evictions, exclusive locking and object "
    "churn all engaged.",
    _base(
        pset=0.15,
        psimple=0.25,
        phier=0.20,
        pstoch=0.20,
        pinsert=0.10,
        pdelete=0.10,
        pwrite=0.50,
    ),
)

# ----------------------------------------------------------------------
# 6. Hot-key skew
# ----------------------------------------------------------------------
HOT_KEY_SKEW = _single(
    "hot-key-skew",
    "Zipf hot-key skew on a small cache",
    "Transaction roots drawn from a Zipf(1.5) distribution over the "
    "object base with a small (0.5 MB) server cache: the hot set stays "
    "resident while the cold tail misses.",
    _base(cache_mb=SMALL_CACHE_MB, root_skew=1.5),
    metrics=("total_ios", "hit_rate", "mean_response_time_ms"),
)

# ----------------------------------------------------------------------
# 7. Multiprogramming ramp
# ----------------------------------------------------------------------
MULTIPROGRAMMING_RAMP = register_scenario(
    Scenario(
        name="multiprogramming-ramp",
        title="Multiprogramming ramp (1-8 users)",
        description=(
            "The closed user population ramps 1 -> 8 at a multiprogramming "
            "level of 4, with 20% writes over a hot root region: throughput "
            "climbs until the scheduler saturates and lock waits take over."
        ),
        points=tuple(
            (
                nusers,
                _base(pwrite=0.20, root_region=100).with_changes(
                    nusers=nusers, multilvl=4
                ),
            )
            for nusers in (1, 2, 4, 8)
        ),
        x_label="users",
        metrics=(
            "total_ios",
            "throughput_tps",
            "lock_waits",
            "mean_response_time_ms",
        ),
    )
)

# ----------------------------------------------------------------------
# 8. Failure storm
# ----------------------------------------------------------------------
FAILURE_STORM = _single(
    "failure-storm",
    "Failure storm (transient faults + crashes)",
    "The §5 hazards module at storm intensity: a transient I/O fault "
    "every ~300 ms of simulated time and a crash every ~40 s, each "
    "crash costing 1.5 s of recovery and a cold cache.",
    _base(cache_mb=SMALL_CACHE_MB).with_changes(
        failures=FailureConfig(
            transient_mtbf_ms=300.0,
            transient_penalty_ms=25.0,
            crash_mtbf_ms=40_000.0,
            recovery_time_ms=1_500.0,
        )
    ),
    metrics=(
        "total_ios",
        "transient_faults",
        "crashes",
        "downtime_ms",
        "mean_response_time_ms",
    ),
)

# ----------------------------------------------------------------------
# 9-10. Cold vs. warm cache
# ----------------------------------------------------------------------
COLD_CACHE = _single(
    "cold-cache",
    "Cold cache (no warm-up run)",
    "The measured run starts against an empty 0.5 MB buffer: every "
    "first touch misses, the paper's COLDN warm-up skipped.",
    _base(cache_mb=SMALL_CACHE_MB, coldn=0),
    metrics=("total_ios", "hit_rate", "mean_response_time_ms"),
)

WARM_CACHE = _single(
    "warm-cache",
    "Warm cache (COLDN warm-up first)",
    "The same workload and 0.5 MB buffer as cold-cache, but 200 unmeasured "
    "warm-up transactions populate the buffer first (§4.3's protocol).",
    _base(cache_mb=SMALL_CACHE_MB, coldn=200),
    metrics=("total_ios", "hit_rate", "mean_response_time_ms"),
)


# ----------------------------------------------------------------------
# 11-14. Cluster topologies (sharded multi-server, open-system load)
# ----------------------------------------------------------------------
def _cluster_point(
    servers: int,
    placement: str = "hash",
    replication: int = 1,
    interconnect_mbps: float = float("inf"),
    rate_tps: float = 60.0,
    sysclass: SystemClass = SystemClass.PAGE_SERVER,
    cache_mb: float = SMALL_CACHE_MB,
    **ocb_overrides,
) -> VOODBConfig:
    """One cluster configuration point: open Poisson load, MPL 8."""
    return _base(cache_mb=cache_mb, **ocb_overrides).with_changes(
        sysclass=sysclass,
        cluster=ClusterConfig(
            servers=servers,
            placement=placement,
            replication=replication,
            interconnect_mbps=interconnect_mbps,
        ),
        arrivals=ArrivalConfig(mode="poisson", rate_tps=rate_tps),
        multilvl=8,
    )


CLUSTER_SCALE_OUT = register_scenario(
    Scenario(
        name="cluster-scale-out",
        title="Cluster scale-out ramp (1-8 servers)",
        description=(
            "The same open Poisson load (60 tps) against hash-sharded page-"
            "server clusters of 1, 2, 4 and 8 nodes, each bringing its own "
            "0.5 MB buffer and disk: I/Os and disk pressure fall as shards "
            "absorb the working set and spread the arrivals."
        ),
        points=tuple(
            (servers, _cluster_point(servers)) for servers in (1, 2, 4, 8)
        ),
        x_label="servers",
        metrics=(
            "total_ios",
            "throughput_tps",
            "mean_response_time_ms",
            "cluster_max_utilization",
        ),
    )
)

CLUSTER_HOT_SHARD = _single(
    "cluster-hot-shard",
    "Skewed hot shard (range placement, Zipf roots)",
    "Zipf(1.5) transaction roots with 25% writes over a range-sharded "
    "4-node cluster with tiny (0.25 MB) per-node buffers: the head shard "
    "absorbs twice its share of accesses but keeps the hot set resident, "
    "so the disk bottleneck lands on the cold-tail shard — skew moves the "
    "choke point, it does not remove it.",
    _cluster_point(
        4,
        placement="range",
        rate_tps=30.0,
        cache_mb=0.25,
        root_skew=1.5,
        pwrite=0.25,
    ),
    metrics=(
        "total_ios",
        "cluster_imbalance",
        "cluster_max_utilization",
        "mean_response_time_ms",
    ),
)

CLUSTER_REPLICATED_READ = _single(
    "cluster-replicated-read",
    "Replicated read fan-out (3 copies on 4 nodes)",
    "A read-heavy mix (2% writes) on a hash-sharded 4-node cluster storing "
    "every page on 3 replicas over a 50 MB/s interconnect: reads balance "
    "round-robin across the copies while the rare writes pay the "
    "propagation fan-out.",
    _cluster_point(
        4,
        replication=3,
        interconnect_mbps=50.0,
        rate_tps=40.0,
        pset=0.40,
        psimple=0.30,
        phier=0.20,
        pstoch=0.10,
        pwrite=0.02,
    ),
    metrics=(
        "total_ios",
        "replica_reads",
        "replica_writes",
        "mean_response_time_ms",
    ),
)

CLUSTER_OBJECT_SERVER = _single(
    "cluster-object-server",
    "Object-server forwarding (2 nodes, thin clients)",
    "A range-sharded 2-node object-server cluster behind a round-robin "
    "balancer: placement-blind clients hand each object request to a "
    "coordinator, which fetches remotely owned pages across a 25 MB/s "
    "interconnect before shipping the object back.",
    _cluster_point(
        2,
        placement="range",
        interconnect_mbps=25.0,
        rate_tps=30.0,
        sysclass=SystemClass.OBJECT_SERVER,
    ),
    metrics=(
        "total_ios",
        "remote_fetches",
        "interconnect_messages",
        "mean_response_time_ms",
    ),
)
