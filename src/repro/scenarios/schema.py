"""The declarative scenario schema: plain dicts <-> :class:`Scenario`.

A scenario file is data, not code: a mapping with a ``format`` tag,
the scenario's identity (name / title / description), the replication
protocol, one ``config`` block, and an optional ``points`` list whose
entries override the shared config field by field.  This module defines
that schema once — the YAML/TOML loader (:mod:`repro.scenarios.loader`)
only parses text into a dict and hands it here.

Validation is **eager and named**: an unknown key anywhere (top level,
``config``, a nested ``ocb``/``arrivals``/``aggregation``/``cluster``/
``failures``/``faults``/``retry``/``replication`` section, a point)
raises :class:`ScenarioSchemaError`
carrying the full
key path and the closest valid spelling, before any simulation runs.
The semantic checks themselves live in the config dataclasses — the
schema builds real :class:`~repro.core.parameters.VOODBConfig` objects,
so a scenario file can express exactly what the Python API can, no more.

``scenario_to_dict`` is the canonical inverse: it emits the minimal
diff against the dataclass defaults (and, per point, against the
scenario-level config), so ``scenario_from_dict(scenario_to_dict(s))``
reproduces ``s`` exactly and re-serializing is byte-stable.

Config blocks may open with loader-only sugar:

``base``
    Named preset to start from instead of the Table 3 defaults:
    ``default`` | ``o2`` (Table 4 left column) | ``texas`` (right).
``cache_mb`` (with ``base: o2``)
    Server cache in MB -> ``buffsize`` via
    :func:`repro.systems.o2.o2_buffer_pages`.
``memory_mb`` (with ``base: texas``)
    Machine memory in MB -> ``buffsize`` via
    :func:`repro.systems.texas.texas_memory_frames`.

The serializer never emits sugar — committed files may use it for
readability, the canonical form spells the resolved fields out.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.overrides import checked_replace, suggest_key
from repro.core.parameters import VOODBConfig
from repro.scenarios.catalog import DEFAULT_METRICS, Scenario

#: The format tag every scenario file must carry (schema version v1).
SCENARIO_FORMAT = "voodb-scenario/v1"

#: Nested config sections and the dataclass each one configures.
CONFIG_SECTIONS = (
    "ocb",
    "arrivals",
    "aggregation",
    "cluster",
    "failures",
    "faults",
    "retry",
    "replication",
)

#: Loader-only sugar keys a scenario-level config block may open with.
PRESET_KEYS = ("base", "cache_mb", "memory_mb")

#: Named presets ``base:`` may select.
PRESET_NAMES = ("default", "o2", "texas")

_TOP_LEVEL_KEYS = (
    "format",
    "name",
    "title",
    "description",
    "x_label",
    "metrics",
    "replications",
    "base_seed",
    "config",
    "points",
)

_POINT_KEYS = ("x", "config")

#: Scenario fields with defaults the serializer may omit.
_SCENARIO_DEFAULTS = {
    "x_label": "point",
    "metrics": DEFAULT_METRICS,
    "replications": 3,
    "base_seed": 1,
}


class ScenarioSchemaError(ValueError):
    """A scenario definition that does not fit the schema.

    The message always carries the source (file path or ``<dict>``) and
    the key path to the offending entry.
    """

    def __init__(self, source: str, message: str) -> None:
        super().__init__(f"{source}: {message}")
        self.source = source


# ----------------------------------------------------------------------
# dict -> Scenario
# ----------------------------------------------------------------------
def _require_mapping(value: Any, where: str, source: str) -> Mapping:
    if not isinstance(value, Mapping):
        raise ScenarioSchemaError(
            source, f"{where} must be a mapping, got {type(value).__name__}"
        )
    return value


def _check_keys(
    data: Mapping, allowed: Tuple[str, ...], where: str, source: str
) -> None:
    for key in data:
        if key not in allowed:
            hint = suggest_key(str(key), allowed)
            did_you_mean = f" (did you mean {hint!r}?)" if hint else ""
            raise ScenarioSchemaError(
                source,
                f"unknown key {key!r} in {where}{did_you_mean}; "
                f"valid keys: {', '.join(allowed)}",
            )


def _base_preset(
    data: Mapping, where: str, source: str
) -> VOODBConfig:
    """Resolve the loader-only ``base``/``cache_mb``/``memory_mb`` sugar."""
    from repro.systems.o2 import o2_buffer_pages, o2_config
    from repro.systems.texas import texas_config, texas_memory_frames

    base = data.get("base", "default")
    if base not in PRESET_NAMES:
        hint = suggest_key(str(base), PRESET_NAMES)
        did_you_mean = f" (did you mean {hint!r}?)" if hint else ""
        raise ScenarioSchemaError(
            source,
            f"unknown preset {base!r} in {where}.base{did_you_mean}; "
            f"valid presets: {', '.join(PRESET_NAMES)}",
        )
    cache_mb = data.get("cache_mb")
    memory_mb = data.get("memory_mb")
    if cache_mb is not None and base != "o2":
        raise ScenarioSchemaError(
            source, f"{where}.cache_mb only applies to 'base: o2'"
        )
    if memory_mb is not None and base != "texas":
        raise ScenarioSchemaError(
            source, f"{where}.memory_mb only applies to 'base: texas'"
        )
    if base == "o2":
        config = o2_config()
        if cache_mb is not None:
            config = config.with_changes(buffsize=o2_buffer_pages(cache_mb))
        return config
    if base == "texas":
        config = texas_config()
        if memory_mb is not None:
            config = config.with_changes(
                buffsize=texas_memory_frames(memory_mb)
            )
        return config
    return VOODBConfig()


def _coerce_value(value: Any) -> Any:
    """YAML/TOML natives -> the field types the dataclasses expect."""
    if isinstance(value, list):
        return tuple(value)
    return value


def _apply_section(
    section: Any, data: Any, where: str, source: str
) -> Any:
    """Field-by-field overrides onto one nested config dataclass."""
    mapping = _require_mapping(data, where, source)
    changes = {key: _coerce_value(value) for key, value in mapping.items()}
    try:
        return checked_replace(section, changes, label=where)
    except ScenarioSchemaError:
        raise
    except (TypeError, ValueError) as exc:
        raise ScenarioSchemaError(source, f"{where}: {exc}") from exc


def apply_config_overrides(
    config: VOODBConfig,
    data: Mapping,
    where: str,
    source: str = "<dict>",
    allow_presets: bool = False,
) -> VOODBConfig:
    """Merge one schema config block over ``config``, field by field.

    Scalar keys override :class:`VOODBConfig` fields; the
    :data:`CONFIG_SECTIONS` keys override fields *inside* the embedded
    section dataclasses (unmentioned section fields keep the base
    config's values).  Preset sugar is only honoured when
    ``allow_presets`` (the scenario-level block).
    """
    _require_mapping(data, where, source)
    changes: Dict[str, Any] = {}
    for key, value in data.items():
        if key in PRESET_KEYS:
            if not allow_presets:
                raise ScenarioSchemaError(
                    source,
                    f"{where}.{key}: presets are only valid in the "
                    "scenario-level config block, not per point",
                )
            continue
        if key in CONFIG_SECTIONS:
            changes[key] = _apply_section(
                getattr(config, key), value, f"{where}.{key}", source
            )
        else:
            changes[key] = _coerce_value(value)
    try:
        return checked_replace(config, changes, label=where)
    except ScenarioSchemaError:
        raise
    except (TypeError, ValueError) as exc:
        raise ScenarioSchemaError(source, f"{where}: {exc}") from exc


def _scenario_field(data: Mapping, key: str, kind: type, source: str) -> Any:
    if key not in data:
        if key in _SCENARIO_DEFAULTS:
            return _SCENARIO_DEFAULTS[key]
        raise ScenarioSchemaError(source, f"missing required key {key!r}")
    value = data[key]
    if kind is float and isinstance(value, int):
        value = float(value)
    if not isinstance(value, kind) or isinstance(value, bool):
        raise ScenarioSchemaError(
            source, f"{key} must be a {kind.__name__}, got {type(value).__name__}"
        )
    return value


def scenario_from_dict(
    data: Mapping, source: str = "<dict>"
) -> Scenario:
    """Compile one schema mapping into a registered-equivalent Scenario."""
    _require_mapping(data, "scenario", source)
    _check_keys(data, _TOP_LEVEL_KEYS, "scenario", source)
    fmt = data.get("format")
    if fmt != SCENARIO_FORMAT:
        raise ScenarioSchemaError(
            source,
            f"format must be {SCENARIO_FORMAT!r}, got {fmt!r}"
            if fmt is not None
            else f"missing required key 'format' ({SCENARIO_FORMAT!r})",
        )
    name = _scenario_field(data, "name", str, source)
    title = _scenario_field(data, "title", str, source)
    description = _scenario_field(data, "description", str, source)
    x_label = _scenario_field(data, "x_label", str, source)
    replications = _scenario_field(data, "replications", int, source)
    base_seed = _scenario_field(data, "base_seed", int, source)
    metrics = data.get("metrics", DEFAULT_METRICS)
    if not isinstance(metrics, (list, tuple)) or not all(
        isinstance(m, str) for m in metrics
    ):
        raise ScenarioSchemaError(source, "metrics must be a list of strings")
    config_block = data.get("config", {})
    base = _base_preset(
        _require_mapping(config_block, "config", source), "config", source
    )
    shared = apply_config_overrides(
        base, config_block, "config", source, allow_presets=True
    )
    points_block = data.get("points")
    if points_block is None:
        points: Tuple[Tuple[Any, VOODBConfig], ...] = (("baseline", shared),)
    else:
        if not isinstance(points_block, (list, tuple)) or not points_block:
            raise ScenarioSchemaError(
                source, "points must be a non-empty list of point mappings"
            )
        built: List[Tuple[Any, VOODBConfig]] = []
        for index, entry in enumerate(points_block):
            where = f"points[{index}]"
            mapping = _require_mapping(entry, where, source)
            _check_keys(mapping, _POINT_KEYS, where, source)
            if "x" not in mapping:
                raise ScenarioSchemaError(
                    source, f"{where} is missing its 'x' value"
                )
            config = shared
            if "config" in mapping:
                config = apply_config_overrides(
                    shared, mapping["config"], f"{where}.config", source
                )
            built.append((mapping["x"], config))
        points = tuple(built)
    try:
        return Scenario(
            name=name,
            title=title,
            description=description,
            points=points,
            x_label=x_label,
            metrics=tuple(metrics),
            replications=replications,
            base_seed=base_seed,
        )
    except ValueError as exc:
        raise ScenarioSchemaError(source, str(exc)) from exc


# ----------------------------------------------------------------------
# Scenario -> dict (canonical diff form)
# ----------------------------------------------------------------------
def _plain_value(value: Any) -> Any:
    """Dataclass field value -> YAML/TOML-native representation."""
    if isinstance(value, tuple):
        return [_plain_value(item) for item in value]
    if hasattr(value, "value") and not isinstance(value, (int, float)):
        return value.value  # str-Enums (SystemClass, MemoryModel, ...)
    return value


def _section_diff(section: Any, baseline: Any) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for field_ in fields(section):
        if not field_.init:
            continue
        value = getattr(section, field_.name)
        if value != getattr(baseline, field_.name):
            out[field_.name] = _plain_value(value)
    return out


def config_to_diff(
    config: VOODBConfig, baseline: Optional[VOODBConfig] = None
) -> Dict[str, Any]:
    """Minimal schema config block turning ``baseline`` into ``config``.

    ``baseline`` defaults to the Table 3 defaults (``VOODBConfig()``);
    per-point diffs pass the scenario-level config instead.
    """
    if baseline is None:
        baseline = VOODBConfig()
    out: Dict[str, Any] = {}
    for field_ in fields(config):
        if not field_.init:
            continue
        value = getattr(config, field_.name)
        base_value = getattr(baseline, field_.name)
        if field_.name in CONFIG_SECTIONS:
            sub = _section_diff(value, base_value)
            if sub:
                out[field_.name] = sub
        elif value != base_value:
            out[field_.name] = _plain_value(value)
    return out


def scenario_to_dict(scenario: Scenario) -> Dict[str, Any]:
    """The canonical (minimal-diff) schema mapping of a scenario.

    Inverse of :func:`scenario_from_dict`: defaults are omitted, the
    first point's config anchors the scenario-level block, and every
    point records only its field-level differences from that anchor —
    so the output is stable under a round trip.
    """
    data: Dict[str, Any] = {
        "format": SCENARIO_FORMAT,
        "name": scenario.name,
        "title": scenario.title,
        "description": scenario.description,
    }
    if scenario.x_label != _SCENARIO_DEFAULTS["x_label"]:
        data["x_label"] = scenario.x_label
    if tuple(scenario.metrics) != _SCENARIO_DEFAULTS["metrics"]:
        data["metrics"] = list(scenario.metrics)
    if scenario.replications != _SCENARIO_DEFAULTS["replications"]:
        data["replications"] = scenario.replications
    if scenario.base_seed != _SCENARIO_DEFAULTS["base_seed"]:
        data["base_seed"] = scenario.base_seed
    shared = scenario.points[0][1]
    config_block = config_to_diff(shared)
    if config_block:
        data["config"] = config_block
    single_default_point = (
        len(scenario.points) == 1 and scenario.points[0][0] == "baseline"
    )
    if not single_default_point:
        data["points"] = []
        for x, config in scenario.points:
            entry: Dict[str, Any] = {"x": x}
            diff = config_to_diff(config, baseline=shared)
            if diff:
                entry["config"] = diff
            data["points"].append(entry)
    return data


__all__ = [
    "SCENARIO_FORMAT",
    "CONFIG_SECTIONS",
    "PRESET_NAMES",
    "ScenarioSchemaError",
    "apply_config_overrides",
    "config_to_diff",
    "scenario_from_dict",
    "scenario_to_dict",
]
