"""scenarios — the declarative scenario catalog.

A :class:`Scenario` names a complete usage study — workload mix,
arrival process, topology, fault plan, replication protocol — and
compiles to the experiment engine's sweep specs, so every catalog entry
runs through the same executors, cache and statistics as the paper's
figures.

Scenarios are *data*: the built-in catalog is a set of committed
``.yaml`` files under ``scenarios/library/`` in the schema of
:mod:`repro.scenarios.schema`, loaded and registered on import by
:mod:`repro.scenarios.builtin`; ``voodb scenario run path/to/file.yaml``
runs any file in the same format with no registry edit.  ``python -m
repro scenario list|describe|run|validate`` is the command-line face,
and each built-in's report is pinned byte-for-byte under
``results/scenario_*.txt``.
"""

from repro.scenarios.catalog import (
    DEFAULT_METRICS,
    Scenario,
    UnknownScenarioError,
    all_scenarios,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_names,
)
from repro.scenarios.schema import (
    SCENARIO_FORMAT,
    ScenarioSchemaError,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.scenarios.loader import (
    dump_scenario,
    load_scenario_file,
    load_scenario_text,
    looks_like_scenario_path,
    save_scenario_file,
)
from repro.scenarios import builtin as _builtin  # noqa: F401  (registers the catalog)

__all__ = [
    "DEFAULT_METRICS",
    "SCENARIO_FORMAT",
    "Scenario",
    "ScenarioSchemaError",
    "UnknownScenarioError",
    "all_scenarios",
    "dump_scenario",
    "get_scenario",
    "load_scenario_file",
    "load_scenario_text",
    "looks_like_scenario_path",
    "register_scenario",
    "run_scenario",
    "save_scenario_file",
    "scenario_from_dict",
    "scenario_names",
    "scenario_to_dict",
]
