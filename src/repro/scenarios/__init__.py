"""scenarios — the declarative scenario catalog.

A :class:`Scenario` names a complete usage study — workload mix,
arrival process, topology, fault plan, replication protocol — and
compiles to the experiment engine's sweep specs, so every catalog entry
runs through the same executors, cache and statistics as the paper's
figures.  Importing this package loads the built-in catalog
(:mod:`repro.scenarios.builtin`); ``python -m repro scenario
list|describe|run`` is the command-line face, and each built-in's
report is pinned byte-for-byte under ``results/scenario_*.txt``.
"""

from repro.scenarios.catalog import (
    DEFAULT_METRICS,
    Scenario,
    UnknownScenarioError,
    all_scenarios,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_names,
)
from repro.scenarios import builtin as _builtin  # noqa: F401  (registers the catalog)

__all__ = [
    "DEFAULT_METRICS",
    "Scenario",
    "UnknownScenarioError",
    "all_scenarios",
    "get_scenario",
    "register_scenario",
    "run_scenario",
    "scenario_names",
]
