"""Loading and saving scenario files (YAML / TOML).

The file layer is deliberately thin: parse the text into a plain
mapping, then hand it to :mod:`repro.scenarios.schema` — every rule
about what a scenario *is* lives there, so a YAML file, a TOML file and
a Python-registered scenario compile through one code path.

``load_scenario_file`` is what ``voodb scenario run path/to/file.yaml``
calls: no registry edit, no Python, just a committed data file.  The
built-in catalog itself loads through here (see
:mod:`repro.scenarios.builtin`), which keeps the schema honest — if the
file format cannot express a scenario, the catalog breaks loudly.

``dump_scenario`` writes the canonical minimal-diff form
(:func:`repro.scenarios.schema.scenario_to_dict`) as YAML with stable
key order, so dump -> load -> dump is byte-stable.
"""

from __future__ import annotations

import os
from typing import Any, Mapping, Union

import yaml

from repro.scenarios.catalog import Scenario
from repro.scenarios.schema import (
    ScenarioSchemaError,
    scenario_from_dict,
    scenario_to_dict,
)

#: File suffixes the loader recognizes, mapped to their parser.
SCENARIO_SUFFIXES = (".yaml", ".yml", ".toml")


def _parse_yaml(text: str, source: str) -> Mapping:
    try:
        data = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise ScenarioSchemaError(source, f"invalid YAML: {exc}") from exc
    if not isinstance(data, Mapping):
        raise ScenarioSchemaError(
            source,
            "a scenario file must hold one mapping, got "
            f"{type(data).__name__}",
        )
    return data


def _parse_toml(text: str, source: str) -> Mapping:
    import tomllib

    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ScenarioSchemaError(source, f"invalid TOML: {exc}") from exc


def load_scenario_text(
    text: str, source: str = "<string>", suffix: str = ".yaml"
) -> Scenario:
    """Compile scenario-file text (YAML by default, TOML by suffix)."""
    if suffix == ".toml":
        data = _parse_toml(text, source)
    else:
        data = _parse_yaml(text, source)
    return scenario_from_dict(data, source=source)


def load_scenario_file(path: Union[str, os.PathLike]) -> Scenario:
    """Load one scenario definition file (``.yaml``/``.yml``/``.toml``).

    Raises :class:`ScenarioSchemaError` for schema violations (the
    message carries the path) and :class:`OSError` for unreadable files.
    """
    path = os.fspath(path)
    suffix = os.path.splitext(path)[1].lower()
    if suffix not in SCENARIO_SUFFIXES:
        raise ScenarioSchemaError(
            path,
            f"unsupported scenario file suffix {suffix!r}; expected one of "
            f"{', '.join(SCENARIO_SUFFIXES)}",
        )
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return load_scenario_text(text, source=path, suffix=suffix)


def looks_like_scenario_path(name: str) -> bool:
    """Whether a CLI argument names a file rather than a catalog entry.

    A registered name is bare kebab-case; anything with a recognized
    suffix, a path separator, or an existing file at that path is a
    file reference.
    """
    if name.lower().endswith(SCENARIO_SUFFIXES):
        return True
    if os.sep in name or (os.altsep and os.altsep in name):
        return True
    return os.path.isfile(name)


def dump_scenario(scenario: Scenario) -> str:
    """The canonical YAML text of a scenario (stable under round trips)."""
    return yaml.safe_dump(
        _plain(scenario_to_dict(scenario)),
        sort_keys=False,
        default_flow_style=False,
        allow_unicode=True,
        width=72,
    )


def save_scenario_file(scenario: Scenario, path: Union[str, os.PathLike]) -> None:
    """Write the canonical YAML form of a scenario to ``path``."""
    with open(os.fspath(path), "w", encoding="utf-8") as handle:
        handle.write(dump_scenario(scenario))


def _plain(value: Any) -> Any:
    """Recursively reduce to YAML-native types (dict/list/scalars)."""
    if isinstance(value, Mapping):
        return {key: _plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    return value


__all__ = [
    "SCENARIO_SUFFIXES",
    "dump_scenario",
    "load_scenario_file",
    "load_scenario_text",
    "looks_like_scenario_path",
    "save_scenario_file",
]
