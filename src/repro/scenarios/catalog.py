"""The scenario catalog: named, declarative usage scenarios.

VOODB's point is that *one* generic model evaluates many OODB
configurations and usage patterns; the companion clustering-simulation
study packages whole experiments as reusable, named setups.  A
:class:`Scenario` captures one such setup as data — a workload mix, an
arrival process, a topology and a fault plan, all frozen inside the
:class:`~repro.core.parameters.VOODBConfig` points it carries — plus the
replication protocol that measures it.

Scenarios compile down to the experiment engine's
:class:`~repro.experiments.specs.SweepSpec` (a one-point sweep for
single-configuration scenarios), so they run through the same pluggable
executors and replication cache as the paper's figures, and the same
statistics fall out.

The registry maps scenario names to definitions; the built-in catalog
lives in :mod:`repro.scenarios.builtin` and registers itself on import.
``python -m repro scenario list|describe|run`` is the command-line face.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple, Union

from repro.core.parameters import VOODBConfig
from repro.experiments.executor import Executor
from repro.experiments.specs import SweepResult, SweepSpec, run_sweep

#: Metrics every scenario reports unless it picks its own.
DEFAULT_METRICS: Tuple[str, ...] = (
    "total_ios",
    "throughput_tps",
    "mean_response_time_ms",
)

_NAME_RE = re.compile(r"^[a-z0-9]+(-[a-z0-9]+)*$")


class UnknownScenarioError(ValueError):
    """Raised when a scenario name is not in the registry."""


@dataclass(frozen=True)
class Scenario:
    """One named usage scenario: configuration points + protocol.

    ``points`` is the scenario's x axis — ``(label, config)`` pairs, a
    single pair for non-sweep scenarios.  Everything the knowledge model
    varies (transaction mix, arrival process, Client-Server topology,
    fault plan) is frozen inside the configs; the scenario adds the
    name, the human description, the metrics worth reporting, and the
    pinned replication protocol that makes its golden output
    reproducible byte-for-byte.
    """

    name: str
    title: str
    description: str
    points: Tuple[Tuple[Any, VOODBConfig], ...]
    x_label: str = "point"
    metrics: Tuple[str, ...] = DEFAULT_METRICS
    #: Pinned replication count — deliberately *not* read from
    #: ``VOODB_REPLICATIONS`` so the committed golden outputs are stable.
    replications: int = 3
    base_seed: int = 1

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValueError(
                f"scenario name must be kebab-case, got {self.name!r}"
            )
        if not self.points:
            raise ValueError(f"scenario {self.name!r} has no configuration points")
        if self.replications < 1:
            raise ValueError(
                f"replications must be >= 1, got {self.replications}"
            )
        if not self.metrics:
            raise ValueError(f"scenario {self.name!r} reports no metrics")

    # ------------------------------------------------------------------
    @property
    def arrival_mode(self) -> str:
        """Arrival mode of the scenario (from its first point).

        ``"aggregated"`` when the flow-aggregated source tier is on —
        the tier replaces the closed loop with a calibrated open
        stream, so open-system reporting (steady-state statistics)
        applies.
        """
        config = self.points[0][1]
        if config.aggregation.enabled:
            return "aggregated"
        return config.arrivals.mode.value

    @property
    def golden_name(self) -> str:
        """Stem of the committed golden output under ``results/``."""
        return "scenario_" + self.name.replace("-", "_")

    def compile(
        self,
        replications: Optional[int] = None,
        base_seed: Optional[int] = None,
    ) -> SweepSpec:
        """Lower this scenario to an experiment-engine sweep spec."""
        return SweepSpec(
            name=f"scenario/{self.name}",
            points=self.points,
            replications=(
                self.replications if replications is None else replications
            ),
            base_seed=self.base_seed if base_seed is None else base_seed,
        )

    def scaled(self, hotn: int) -> "Scenario":
        """A copy with every point's workload shrunk to ``hotn``
        transactions (cold runs shrink proportionally) — the knob the
        round-trip tests use to stay fast."""
        if hotn < 1:
            raise ValueError(f"hotn must be >= 1, got {hotn}")
        points = []
        for x, config in self.points:
            ocb = config.ocb
            coldn = min(ocb.coldn, hotn) if ocb.coldn else 0
            points.append(
                (x, config.with_changes(ocb=ocb.with_changes(hotn=hotn, coldn=coldn)))
            )
        return replace(self, points=tuple(points))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario to the catalog (name collisions are errors)."""
    if scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def scenario_names() -> Tuple[str, ...]:
    """All registered names, in catalog (registration) order."""
    return tuple(_REGISTRY)


def all_scenarios() -> Tuple[Scenario, ...]:
    """All registered scenarios, in catalog order."""
    return tuple(_REGISTRY.values())


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(scenario_names()) or "<none>"
        raise UnknownScenarioError(
            f"unknown scenario {name!r}; known scenarios: {known}"
        ) from None


def run_scenario(
    scenario: Union[Scenario, str],
    executor: Optional[Executor] = None,
    replications: Optional[int] = None,
    base_seed: Optional[int] = None,
) -> SweepResult:
    """Compile and execute a scenario through the experiment engine."""
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    spec = scenario.compile(replications=replications, base_seed=base_seed)
    return run_sweep(spec, executor=executor)
