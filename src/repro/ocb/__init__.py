"""ocb — the Object Clustering Benchmark workload substrate.

VOODB does not define its own workload: it embeds the OCB generic
benchmark (Darmont et al., EDBT '98), "tunable through a thorough set of
26 parameters" (paper §3.3).  This package reproduces OCB's two halves:

* a **database generator** — a schema of ``NC`` interlinked classes and a
  graph of ``NO`` objects whose inter-object references the transactions
  navigate (``schema``, ``database``);
* a **workload generator** — the four transaction types of paper
  Table 5 (set-oriented access, simple traversal, hierarchy traversal,
  stochastic traversal) drawn with probabilities PSET/PSIMPLE/PHIER/
  PSTOCH (``transactions``).

The VOODB paper only prints the OCB parameters its experiments vary
(Table 5 plus NC/NO); the remaining generator knobs are reconstructed and
documented field-by-field in :class:`~repro.ocb.parameters.OCBConfig`.
"""

from repro.ocb.database import Database, ObjectInstance
from repro.ocb.parameters import OCBConfig
from repro.ocb.presets import (
    hypermodel_workload,
    oo1_workload,
    oo7_workload,
    preset_workload,
)
from repro.ocb.schema import ClassReference, OCBClass, Schema
from repro.ocb.transactions import (
    HierarchyTraversal,
    SetOrientedAccess,
    SimpleTraversal,
    StochasticTraversal,
    Transaction,
    TransactionGenerator,
)

__all__ = [
    "OCBConfig",
    "Schema",
    "OCBClass",
    "ClassReference",
    "Database",
    "ObjectInstance",
    "Transaction",
    "TransactionGenerator",
    "SetOrientedAccess",
    "SimpleTraversal",
    "HierarchyTraversal",
    "StochasticTraversal",
    "preset_workload",
    "oo1_workload",
    "oo7_workload",
    "hypermodel_workload",
]
