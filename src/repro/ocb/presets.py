"""Workload presets approximating classic OODB benchmarks.

Paper §2: "We also propose that the workload model be separately
characterized.  It is then possible to reuse workload models from
existing benchmarks (like HyperModel [And90], OO1 [Cat91] or OO7
[Car93]) or establish a specific model."  OCB was designed to subsume
those benchmarks through its parameters; these presets are the
corresponding parameterizations.

They are *approximations by construction* — each maps the cited
benchmark's database shape and operation mix onto OCB's knobs, the same
move the OCB paper makes when arguing genericity:

* **OO1** ("the Cattell benchmark"): 20 000 small parts, exactly 3
  connections each, connections biased to "nearby" parts (1% locality),
  lookup + traversal (depth 7) operations;
* **OO7**: a composition hierarchy (assemblies → composite parts →
  atomic parts) exercised by deep traversals (T1 raw traversal depth 7)
  over a 3-connected atomic-part graph;
* **HyperModel**: a hypertext document graph with five relation types
  and heavy recursive closure operations (depth 5 on every relation).
"""

from __future__ import annotations

from repro.ocb.parameters import OCBConfig


def oo1_workload(no: int = 20_000, hotn: int = 1000) -> OCBConfig:
    """OO1/Cattell: small parts, 3 connections, strong locality.

    OO1's parts weigh ~50 bytes plus three (to, type, length)
    connections; 90% of connections land within the 1% of parts closest
    by id — OCB's object-locality window at 1% of NO.  The measured mix
    is lookup-and-traverse: depth-7 traversals (OO1's "traversal" op)
    and single-object reads approximated by depth-0 set accesses.
    """
    return OCBConfig(
        nc=2,                      # OO1's schema: parts + connections
        no=no,
        maxnref=3,                 # exactly-3 modelled as uniform 1..3
        basesize=50,
        maxsizemult=2,             # parts are uniformly small
        object_locality=max(1, no // 100),  # the 1% locality rule
        inheritance_weight=1.0,    # one connection type dominates
        hotn=hotn,
        pset=0.5,                  # lookups
        psimple=0.0,
        phier=0.5,                 # traversals over the connection type
        pstoch=0.0,
        setdepth=0,                # lookup touches the object itself
        hiedepth=7,                # OO1 traversal depth
    )


def oo7_workload(no: int = 10_000, hotn: int = 500) -> OCBConfig:
    """OO7-like: composition hierarchy swept by deep raw traversals.

    OO7's module → assemblies → composite parts → atomic parts shape is
    approximated by a 30-class schema whose instance sizes grow down the
    hierarchy, fanout 3 (atomic parts are 3-connected), and a T1-style
    depth-7 traversal as the dominant operation, with stochastic walks
    standing in for the T6 "random path" operations.
    """
    return OCBConfig(
        nc=30,
        no=no,
        maxnref=3,
        basesize=100,
        maxsizemult=20,
        object_locality=max(1, no // 20),
        inheritance_weight=0.6,    # composition links dominate
        hotn=hotn,
        pset=0.1,
        psimple=0.6,               # T1 raw traversal: visit everything
        phier=0.2,
        pstoch=0.1,
        simdepth=5,
        hiedepth=7,
        stodepth=20,
    )


def hypermodel_workload(no: int = 15_000, hotn: int = 500) -> OCBConfig:
    """HyperModel-like: hypertext nodes, five relations, closures.

    HyperModel's document graph carries parent/child (1-N),
    partOf/parts (M-N) and refTo/refFrom relations — five reference
    types in OCB terms — and its heaviest operations are transitive
    closures over one relation (hierarchy traversals, depth 5) mixed
    with neighborhood reads (set accesses).
    """
    return OCBConfig(
        nc=10,
        no=no,
        maxnref=5,
        nreft=5,
        basesize=128,              # text nodes with attributes
        maxsizemult=8,
        object_locality=max(1, no // 10),
        inheritance_weight=0.4,    # parent/child is the hot relation
        hotn=hotn,
        pset=0.3,
        psimple=0.1,
        phier=0.5,                 # closure operations dominate
        pstoch=0.1,
        setdepth=1,
        hiedepth=5,
        stodepth=10,
    )


#: Registry for lookups by name.
PRESETS = {
    "oo1": oo1_workload,
    "oo7": oo7_workload,
    "hypermodel": hypermodel_workload,
}


def preset_workload(name: str, **overrides) -> OCBConfig:
    """Build a preset workload by name (``oo1``, ``oo7``, ``hypermodel``)."""
    key = name.strip().lower()
    if key not in PRESETS:
        raise ValueError(f"unknown preset {name!r}; known: {sorted(PRESETS)}")
    return PRESETS[key](**overrides)
