"""The OCB parameter set.

OCB is "tunable through a thorough set of 26 parameters" (paper §3.3).
The VOODB paper itself prints only the ones its experiments set: NC, NO
(§4.3) and the Table 5 workload (COLDN, HOTN, PSET/SETDEPTH,
PSIMPLE/SIMDEPTH, PHIER/HIEDEPTH, PSTOCH/STODEPTH); everything else is
"set up to their default values".  This module reconstructs the full set.

Provenance legend used in the field comments:

* ``[paper]``      — value printed in the VOODB paper;
* ``[ocb]``        — parameter named by the OCB benchmark, default chosen
  to reproduce derived quantities the VOODB paper prints (database sizes
  of ~20–28 MB at NC=50/NO=20 000, I/O counts in the figures' ranges);
* ``[reconstructed]`` — knob needed by the generator with no printed
  value anywhere; the default and its rationale are given.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class OCBConfig:
    """Complete parameterization of an OCB database + workload.

    Instances are immutable; use :meth:`with_changes` to derive variants
    (experiments sweep NC/NO/workload without touching the rest).
    """

    # ------------------------------------------------------------------
    # Database (generator) parameters
    # ------------------------------------------------------------------
    #: [paper] NC — number of classes in the schema (§4.3 uses 20 and 50).
    nc: int = 50
    #: [paper] NO — number of object instances (§4.3 sweeps 500..20 000).
    no: int = 20_000
    #: [ocb] MAXNREF — max references per class; per-class count is drawn
    #: uniformly in [1, MAXNREF].  Default 4 keeps the mean all-references
    #: fan-out at 2.5, which puts the Table 5 mix's object counts (and
    #: hence simulated I/O counts) in the figures' ranges.
    maxnref: int = 4
    #: [ocb] BASESIZE — base instance size in bytes.
    basesize: int = 50
    #: [ocb] NREFT — number of reference types (inheritance, aggregation,
    #: association, other).  Hierarchy traversals follow a single type.
    nreft: int = 4
    #: [reconstructed] probability that a reference is of type 0
    #: (inheritance); remaining types share the rest uniformly.  Weighting
    #: type 0 makes depth-HIEDEPTH hierarchy traversals non-trivial (the
    #: §4.4 DSTC workload needs multi-object traversals) without inflating
    #: the all-references fan-out that set/simple traversals see.
    inheritance_weight: float = 0.5
    #: [reconstructed] instance size = BASESIZE × (1 + cid % maxsizemult):
    #: later classes are bigger, modelling attribute accumulation down the
    #: inheritance DAG.  40 gives a ~17.5 MB base at NC=50/NO=20 000
    #: (paper: ~20 MB in Texas) and a ~10.5 MB base at NC=20 — which is
    #: what separates the 20-class from the 50-class I/O curves in
    #: Figures 6/7 and 9/10.
    maxsizemult: int = 40
    #: [ocb] CLOCREF — class locality of reference: a class references
    #: classes within this window of its own id.  NC (default) = none.
    class_locality: int = 50
    #: [ocb] OLOCREF — object reference locality: an object references
    #: instances within this window of its own position inside the target
    #: class extent.  100 (default) gives traversals the page-level
    #: locality that makes the paper's pre-clustering I/O counts (~1.9
    #: I/Os per depth-3 hierarchy traversal, Table 6) reachable at all;
    #: set it to NO to disable locality.
    object_locality: int = 100
    #: [reconstructed] Zipf skew of reference-target choice inside the
    #: locality window (0 = uniform, like OCB's default).
    reference_skew: float = 0.0
    #: [reconstructed] how instances are spread over classes: uniform by
    #: default; >0 skews instance counts toward low class ids.
    class_instance_skew: float = 0.0

    # ------------------------------------------------------------------
    # Workload parameters (Table 5)
    # ------------------------------------------------------------------
    #: [paper] COLDN — transactions of the cold run (not measured).
    coldn: int = 0
    #: [paper] HOTN — transactions of the warm run (measured).
    hotn: int = 1000
    #: [paper] PSET — set-oriented access occurrence probability.
    pset: float = 0.25
    #: [paper] PSIMPLE — simple traversal occurrence probability.
    psimple: float = 0.25
    #: [paper] PHIER — hierarchy traversal occurrence probability.
    phier: float = 0.25
    #: [paper] PSTOCH — stochastic traversal occurrence probability.
    pstoch: float = 0.25
    #: [ocb] object insertion occurrence probability (OCB's workload also
    #: covers dynamic operations; 0 in every validation experiment).
    pinsert: float = 0.0
    #: [ocb] object deletion occurrence probability (includes the
    #: reference-cleanup writes a real store performs on delete).
    pdelete: float = 0.0
    #: [paper] SETDEPTH — set-oriented access depth.
    setdepth: int = 3
    #: [paper] SIMDEPTH — simple traversal depth.
    simdepth: int = 3
    #: [paper] HIEDEPTH — hierarchy traversal depth.
    hiedepth: int = 5
    #: [paper] STODEPTH — stochastic traversal depth (walk length).
    stodepth: int = 50

    # ------------------------------------------------------------------
    # Workload parameters (remaining OCB knobs)
    # ------------------------------------------------------------------
    #: [ocb] think time between two transactions of one user (seconds of
    #: simulated time; the validation experiments use 0).
    thinktime: float = 0.0
    #: [reconstructed] Zipf skew of root-object selection (0 = uniform).
    root_skew: float = 0.0
    #: [reconstructed] hot root region: when > 0, transaction roots are
    #: drawn uniformly from the first ``root_region`` OIDs only.  This is
    #: how §4.4's "favorable conditions" workload (characteristic
    #: transactions whose traversals repeat) is modelled; 0 disables it.
    root_region: int = 0
    #: [ocb] probability that an individual object access is a write
    #: (read/write ratio; the validation experiments are read-only).
    pwrite: float = 0.0
    #: [ocb] RSEED — seed of the database-generation random stream.  The
    #: *workload* stream is seeded per replication by the simulation.
    rseed: int = 1

    def __post_init__(self) -> None:
        if self.nc < 1:
            raise ValueError(f"nc must be >= 1, got {self.nc}")
        if self.no < 1:
            raise ValueError(f"no must be >= 1, got {self.no}")
        if self.maxnref < 1:
            raise ValueError(f"maxnref must be >= 1, got {self.maxnref}")
        if self.basesize < 1:
            raise ValueError(f"basesize must be >= 1, got {self.basesize}")
        if self.nreft < 1:
            raise ValueError(f"nreft must be >= 1, got {self.nreft}")
        if self.maxsizemult < 1:
            raise ValueError(f"maxsizemult must be >= 1, got {self.maxsizemult}")
        if not 0 < self.class_locality:
            raise ValueError("class_locality must be positive")
        if not 0 < self.object_locality:
            raise ValueError("object_locality must be positive")
        if self.coldn < 0 or self.hotn < 0:
            raise ValueError("coldn/hotn must be >= 0")
        if self.coldn + self.hotn == 0:
            raise ValueError("workload needs at least one transaction")
        total = (
            self.pset
            + self.psimple
            + self.phier
            + self.pstoch
            + self.pinsert
            + self.pdelete
        )
        if not 0.999 <= total <= 1.001:
            raise ValueError(
                f"transaction probabilities sum to {total}, expected 1.0"
            )
        if not 0.0 <= self.inheritance_weight <= 1.0:
            raise ValueError(
                f"inheritance_weight must be in [0, 1], got {self.inheritance_weight}"
            )
        for name in (
            "pset",
            "psimple",
            "phier",
            "pstoch",
            "pinsert",
            "pdelete",
            "pwrite",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in ("setdepth", "simdepth", "hiedepth", "stodepth"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.thinktime < 0:
            raise ValueError("thinktime must be >= 0")
        if self.root_region < 0:
            raise ValueError("root_region must be >= 0")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def transaction_probabilities(
        self,
    ) -> Tuple[float, float, float, float, float, float]:
        """(PSET, PSIMPLE, PHIER, PSTOCH, PINSERT, PDELETE) in generator order."""
        return (
            self.pset,
            self.psimple,
            self.phier,
            self.pstoch,
            self.pinsert,
            self.pdelete,
        )

    @property
    def mean_instance_size(self) -> float:
        """Mean object size in bytes under the size model.

        Sizes are ``basesize × (1 + cid % maxsizemult)`` with instances
        spread uniformly over classes, so the mean follows the mean of
        ``cid % maxsizemult`` over the NC class ids.
        """
        mean_mod = sum(cid % self.maxsizemult for cid in range(self.nc)) / self.nc
        return self.basesize * (1 + mean_mod)

    @property
    def expected_database_bytes(self) -> float:
        """Expected total object payload of the generated base."""
        return self.no * self.mean_instance_size

    @property
    def total_transactions(self) -> int:
        return self.coldn + self.hotn

    def with_changes(self, **changes) -> "OCBConfig":
        """Return a copy with the given fields replaced (validated).

        Unknown keys raise :class:`ValueError` naming the key and the
        closest valid field (see :mod:`repro.core.overrides`).
        """
        # Imported here: repro.core depends on this module at import
        # time (VOODBConfig embeds OCBConfig), so the reverse import
        # must wait until call time.
        from repro.core.overrides import checked_replace

        return checked_replace(self, changes)
