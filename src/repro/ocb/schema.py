"""OCB schema generation: NC interlinked classes.

The schema is the class-level half of the OCB database.  Each class gets

* an **instance size** — ``BASESIZE × uniform-int[1, maxsizemult]`` bytes
  (see the provenance notes in :mod:`repro.ocb.parameters`);
* a **reference list** — ``uniform-int[1, MAXNREF]`` references, each with
  a target class drawn inside the class-locality window and a reference
  type in ``[0, NREFT)``.

Reference types matter to the workload: a *hierarchy traversal* (Table 5)
follows only references of one type, whereas set-oriented accesses and
simple traversals follow them all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.despy.randomstream import RandomStream
from repro.ocb.parameters import OCBConfig

#: Conventional names of the four default reference types ([Dar98] models
#: inheritance, aggregation and association links between classes).
REFERENCE_TYPE_NAMES = ("inheritance", "aggregation", "association", "other")


def reference_type_name(ref_type: int) -> str:
    """Human-readable name of a reference type index."""
    if 0 <= ref_type < len(REFERENCE_TYPE_NAMES):
        return REFERENCE_TYPE_NAMES[ref_type]
    return f"type-{ref_type}"


def _draw_ref_type(config: OCBConfig, rng: RandomStream) -> int:
    """Draw a reference type: type 0 with ``inheritance_weight``, rest uniform."""
    if config.nreft == 1:
        return 0
    if rng.bernoulli(config.inheritance_weight):
        return 0
    return rng.randint(1, config.nreft - 1)


@dataclass(frozen=True)
class ClassReference:
    """One class-level reference: this class points at ``target_cid``."""

    target_cid: int
    ref_type: int


@dataclass(frozen=True)
class OCBClass:
    """One class of the OCB schema."""

    cid: int
    instance_size: int
    references: tuple[ClassReference, ...]

    @property
    def nrefs(self) -> int:
        return len(self.references)

    def references_of_type(self, ref_type: int) -> List[ClassReference]:
        return [r for r in self.references if r.ref_type == ref_type]


class Schema:
    """An immutable generated OCB schema.

    Build one with :meth:`generate`; the constructor is for tests that
    need hand-crafted schemas.
    """

    def __init__(self, classes: List[OCBClass], config: OCBConfig) -> None:
        if len(classes) != config.nc:
            raise ValueError(
                f"schema has {len(classes)} classes, config.nc={config.nc}"
            )
        self.classes = classes
        self.config = config

    @classmethod
    def generate(cls, config: OCBConfig, rng: RandomStream) -> "Schema":
        """Generate the NC classes of the schema.

        Instance sizes follow ``BASESIZE × (1 + cid % maxsizemult)`` —
        later classes accumulate more attributes (see the provenance note
        in :mod:`repro.ocb.parameters`).

        The class-locality window (CLOCREF) bounds how far a reference may
        point: class ``i`` references classes ``(i + d) % NC`` with ``d``
        drawn in ``[0, window)``, optionally Zipf-skewed toward nearby
        classes.  A window of NC (the default) reproduces OCB's default
        "any class may reference any class".

        Reference types are drawn with ``inheritance_weight`` probability
        of type 0 and the remaining mass split over types ``1..NREFT-1``.
        """
        window = min(config.class_locality, config.nc)
        classes: List[OCBClass] = []
        for cid in range(config.nc):
            size = config.basesize * (1 + cid % config.maxsizemult)
            nrefs = rng.randint(1, config.maxnref)
            refs = []
            for __ in range(nrefs):
                if config.reference_skew > 0:
                    delta = rng.zipf_index(window, config.reference_skew)
                else:
                    delta = rng.randint(0, window - 1)
                target = (cid + delta) % config.nc
                refs.append(ClassReference(target, _draw_ref_type(config, rng)))
            classes.append(OCBClass(cid, size, tuple(refs)))
        return cls(classes, config)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.classes)

    def __getitem__(self, cid: int) -> OCBClass:
        return self.classes[cid]

    def __iter__(self):
        return iter(self.classes)

    def total_references(self) -> int:
        return sum(c.nrefs for c in self.classes)

    def mean_references(self) -> float:
        return self.total_references() / len(self.classes)

    def mean_instance_size(self) -> float:
        return sum(c.instance_size for c in self.classes) / len(self.classes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Schema nc={len(self.classes)} "
            f"refs/class={self.mean_references():.2f}>"
        )
