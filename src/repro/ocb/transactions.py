"""The four OCB transaction types and the workload generator.

Paper Table 5 defines the workload as a mix of four transaction types
drawn with probabilities PSET/PSIMPLE/PHIER/PSTOCH, each with its own
depth.  A transaction's *trace* is the ordered list of object accesses it
performs; the Transaction Manager replays that trace against the Object /
Buffering managers.

The four types navigate the object graph differently:

* :class:`SetOrientedAccess` — breadth-first over **all** references,
  each object accessed **once** (set semantics), depth SETDEPTH.
* :class:`SimpleTraversal` — depth-first over all references, objects
  re-accessed on every encounter (naive pointer chasing), depth SIMDEPTH.
* :class:`HierarchyTraversal` — follows only references of **one type**
  (e.g. the inheritance links), depth HIEDEPTH.  This is the clustering-
  friendly access pattern §4.4 uses to showcase DSTC.
* :class:`StochasticTraversal` — a random walk choosing one reference at
  each step, STODEPTH steps.

Each access is a ``(oid, is_write)`` pair; writes are drawn per access
with probability PWRITE (read-only in the validation experiments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.despy.randomstream import RandomStream
from repro.ocb.database import Database
from repro.ocb.parameters import OCBConfig

#: One object access: (oid, is_write).
Access = Tuple[int, bool]


@dataclass(frozen=True)
class Transaction:
    """A fully materialized transaction: its type, root, and trace."""

    kind: str
    root: int
    accesses: tuple[Access, ...]

    @property
    def objects(self) -> List[int]:
        """OIDs in access order (possibly with repeats)."""
        return [oid for oid, __ in self.accesses]

    @property
    def distinct_objects(self) -> set:
        return {oid for oid, __ in self.accesses}

    @property
    def writes(self) -> int:
        return sum(1 for __, is_write in self.accesses if is_write)

    def __len__(self) -> int:
        return len(self.accesses)


def _with_writes(
    oids: List[int], pwrite: float, rng: RandomStream
) -> tuple[Access, ...]:
    if pwrite <= 0.0:
        return tuple([(oid, False) for oid in oids])
    bernoulli = rng.bernoulli
    return tuple([(oid, bernoulli(pwrite)) for oid in oids])


class SetOrientedAccess:
    """Breadth-first set access: every reachable object once, per level."""

    kind = "set"

    @staticmethod
    def trace(db: Database, root: int, depth: int) -> List[int]:
        visited = {root}
        order = [root]
        frontier = [root]
        # The flat reference lists, accessed directly: traversals visit
        # millions of objects per sweep and the ``refs()`` accessor
        # frame is the single biggest cost of workload materialization.
        obj_refs = db._obj_refs
        add = visited.add
        push = order.append
        for __ in range(depth):
            next_frontier: List[int] = []
            grow = next_frontier.append
            for oid in frontier:
                for target in obj_refs[oid]:
                    if target not in visited:
                        add(target)
                        push(target)
                        grow(target)
            if not next_frontier:
                break
            frontier = next_frontier
        return order


class SimpleTraversal:
    """Depth-first traversal re-accessing objects on every encounter."""

    kind = "simple"

    @staticmethod
    def trace(db: Database, root: int, depth: int) -> List[int]:
        order: List[int] = []
        # Explicit stack of (oid, remaining_depth); children pushed in
        # reverse so the visit order matches the recursive formulation.
        stack = [(root, depth)]
        pop = stack.pop
        push = stack.append
        grow = order.append
        obj_refs = db._obj_refs
        while stack:
            oid, remaining = pop()
            grow(oid)
            if remaining > 0:
                remaining -= 1
                for target in reversed(obj_refs[oid]):
                    push((target, remaining))
        return order


class HierarchyTraversal:
    """Follows all references of a single type, depth-limited."""

    kind = "hierarchy"

    @staticmethod
    def trace(db: Database, root: int, depth: int, ref_type: int) -> List[int]:
        visited = {root}
        order = [root]
        frontier = [root]
        obj_refs = db._obj_refs
        obj_ref_types = db._obj_ref_types
        add = visited.add
        push = order.append
        for __ in range(depth):
            next_frontier: List[int] = []
            grow = next_frontier.append
            for oid in frontier:
                # refs_of_type, fused: iterate the parallel lists
                # without materializing the filtered list per object.
                types = obj_ref_types[oid]
                for index, target in enumerate(obj_refs[oid]):
                    if types[index] == ref_type and target not in visited:
                        add(target)
                        push(target)
                        grow(target)
            if not next_frontier:
                break
            frontier = next_frontier
        return order


class StochasticTraversal:
    """Random walk: one randomly chosen reference per step."""

    kind = "stochastic"

    @staticmethod
    def trace(
        db: Database, root: int, depth: int, rng: RandomStream
    ) -> List[int]:
        order = [root]
        current = root
        obj_refs = db._obj_refs
        randint = rng.randint
        push = order.append
        for __ in range(depth):
            refs = obj_refs[current]
            if not refs:
                break
            current = refs[randint(0, len(refs) - 1)]
            push(current)
        return order


class TransactionGenerator:
    """Draws transactions according to the Table 5 mix.

    One generator per simulated user; the random stream determines both
    the mix and the root objects, so two replications with the same
    stream see the same workload (common random numbers).
    """

    KINDS = ("set", "simple", "hierarchy", "stochastic")

    def __init__(
        self, db: Database, config: OCBConfig, rng: RandomStream
    ) -> None:
        self.db = db
        self.config = config
        self.rng = rng
        self.generated = 0

    def next_root(self) -> int:
        """Draw a live root object.

        Uniform over the base by default; restricted to the hot
        ``root_region`` when set; Zipf-hot under ``root_skew``.  Deleted
        objects (dynamic workloads) are resampled away.
        """
        population = len(self.db)
        if self.config.root_region > 0:
            population = min(self.config.root_region, population)
        for __ in range(200):
            if self.config.root_skew > 0:
                root = self.rng.zipf_index(population, self.config.root_skew)
            else:
                root = self.rng.randint(0, population - 1)
            if not self.db.is_deleted(root):
                return root
        # Degenerate fallback (hot region wiped out): first live object.
        for oid in range(len(self.db)):
            if not self.db.is_deleted(oid):
                return oid
        raise RuntimeError("database has no live objects left")

    def next_transaction(self) -> Transaction:
        """Draw type + root, materialize the access trace.

        Dynamic operations (insert/delete) mutate the database at draw
        time — generators are consumed lazily by the user processes, so
        the mutation happens in execution order.
        """
        config = self.config
        choice = self.rng.discrete(config.transaction_probabilities)
        if choice == 4:
            return self._insert_transaction()
        if choice == 5:
            return self._delete_transaction()
        root = self.next_root()
        if choice == 0:
            oids = SetOrientedAccess.trace(self.db, root, config.setdepth)
            kind = SetOrientedAccess.kind
        elif choice == 1:
            oids = SimpleTraversal.trace(self.db, root, config.simdepth)
            kind = SimpleTraversal.kind
        elif choice == 2:
            ref_type = self.rng.randint(0, config.nreft - 1)
            oids = HierarchyTraversal.trace(
                self.db, root, config.hiedepth, ref_type
            )
            kind = HierarchyTraversal.kind
        else:
            oids = StochasticTraversal.trace(
                self.db, root, config.stodepth, self.rng
            )
            kind = StochasticTraversal.kind
        self.generated += 1
        return Transaction(
            kind=kind,
            root=root,
            accesses=_with_writes(oids, config.pwrite, self.rng),
        )

    def _insert_transaction(self) -> Transaction:
        """Create one object of a random class, wired like the generator.

        The trace writes the new object and reads every object it now
        references (pointer wiring touches them).
        """
        db, config = self.db, self.config
        cid = self.rng.randint(0, config.nc - 1)
        refs: List[int] = []
        ref_types: List[int] = []
        for class_ref in db.schema[cid].references:
            extent = db.instances_of(class_ref.target_cid)
            if not extent:
                continue
            refs.append(extent[self.rng.randint(0, len(extent) - 1)])
            ref_types.append(class_ref.ref_type)
        oid = db.insert_object(cid, refs, ref_types)
        self.generated += 1
        accesses = ((oid, True),) + tuple((target, False) for target in refs)
        return Transaction(kind="insert", root=oid, accesses=accesses)

    def _delete_transaction(self) -> Transaction:
        """Delete one live object, paying the reference-cleanup writes."""
        root = self.next_root()
        dirty = self.db.delete_object(root)
        self.generated += 1
        accesses = ((root, True),) + tuple((other, True) for other in dirty)
        return Transaction(kind="delete", root=root, accesses=accesses)

    def transactions(self, count: int) -> Iterator[Transaction]:
        """Yield ``count`` freshly drawn transactions."""
        for __ in range(count):
            yield self.next_transaction()

    def hierarchy_only(
        self, count: int, ref_type: int, depth: int
    ) -> Iterator[Transaction]:
        """The §4.4 DSTC workload: pure depth-``depth`` hierarchy traversals."""
        for __ in range(count):
            root = self.next_root()
            oids = HierarchyTraversal.trace(self.db, root, depth, ref_type)
            self.generated += 1
            yield Transaction(
                kind=HierarchyTraversal.kind,
                root=root,
                accesses=_with_writes(oids, self.config.pwrite, self.rng),
            )
