"""OCB object-graph generation: NO interlinked instances.

The object graph is what the workload navigates and what the Clustering
Manager reorganizes, so its representation is optimized for the two hot
operations:

* ``refs(oid)`` — the ordered list of OIDs an object references (used by
  every traversal step);
* ``size(oid)`` / ``class_of(oid)`` — for the Object Manager's page
  mapping.

Internally the graph is flat lists indexed by OID — the simulation runs
hundreds of thousands of accesses per replication, and attribute-heavy
object wrappers would dominate the profile.  :class:`ObjectInstance` is a
convenience view for user code and tests, materialized on demand.

OIDs are **logical** (0..NO-1): the paper's §4.4 discussion of Texas'
physical OIDs explicitly notes simulation models "necessarily use logical
OIDs", and the page mapping lives in the Object Manager, not here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

from repro.despy.randomstream import RandomStream
from repro.ocb.schema import Schema


@dataclass(frozen=True)
class ObjectInstance:
    """A materialized view of one object (convenience, not the hot path)."""

    oid: int
    cid: int
    size: int
    refs: tuple[int, ...]
    ref_types: tuple[int, ...]


class Database:
    """A generated OCB object base.

    Build one with :meth:`generate`.  All per-object state is held in
    parallel lists indexed by OID.
    """

    def __init__(
        self,
        schema: Schema,
        obj_class: List[int],
        obj_refs: List[List[int]],
        obj_ref_types: List[List[int]],
        instances_by_class: List[List[int]],
    ) -> None:
        self.schema = schema
        self.config = schema.config
        self._obj_class = obj_class
        self._obj_refs = obj_refs
        self._obj_ref_types = obj_ref_types
        self._instances_by_class = instances_by_class
        #: reverse reference index (target -> referrers), built lazily on
        #: the first delete and maintained by insert/delete afterwards
        self._referrers: dict[int, set[int]] | None = None
        #: bumped on every graph mutation (insert/delete) so derived
        #: caches (e.g. the Object Manager's swizzle-cascade cache) can
        #: detect staleness cheaply
        self.mutations = 0

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    @classmethod
    def generate(cls, schema: Schema, rng: RandomStream) -> "Database":
        """Instantiate NO objects of the schema's classes.

        Each object belongs to one class (uniform by default, Zipf-skewed
        by ``class_instance_skew``) and carries one reference per
        class-level reference.  Targets are instances of the referenced
        class drawn inside the object-locality window (OLOCREF) around the
        object's own position in the class extent — locality is what makes
        clustering worthwhile, so the knob matters to the DSTC experiments.
        """
        config = schema.config
        no, nc = config.no, config.nc

        # 1. Assign classes round-robin over a shuffled template so every
        #    class has at least one instance when NO >= NC (uniform), or
        #    Zipf-draw when skewed.  (Same draw sequence as the obvious
        #    per-object loop — zipf_block consumes identical draws.)
        if config.class_instance_skew > 0:
            obj_class = rng.zipf_block(nc, config.class_instance_skew, no)
        else:
            obj_class = [oid % nc for oid in range(no)]
            rng.shuffle(obj_class)

        instances_by_class: List[List[int]] = [[] for __ in range(nc)]
        position_in_class: List[int] = [0] * no
        for oid in range(no):
            cid = obj_class[oid]
            extent = instances_by_class[cid]
            position_in_class[oid] = len(extent)
            extent.append(oid)

        # 2. Wire references.  The per-class reference plan — target
        #    extent, its length, the locality span — is invariant across
        #    objects, so it is resolved once per class instead of once
        #    per (object, reference); empty extents are skipped at plan
        #    time exactly as the inner loop skipped them.
        window = min(config.object_locality, no)
        obj_refs: List[List[int]] = [[] for __ in range(no)]
        obj_ref_types: List[List[int]] = [[] for __ in range(no)]
        plans: List[list] = []
        for cid in range(nc):
            plan = []
            for class_ref in schema[cid].references:
                extent = instances_by_class[class_ref.target_cid]
                if not extent:
                    continue
                span = min(window, len(extent))
                plan.append((extent, len(extent), span, class_ref.ref_type))
            plans.append(plan)
        skew = config.reference_skew
        zipf_index = rng.zipf_index
        randint = rng.randint
        for oid in range(no):
            own_position = position_in_class[oid]
            refs = obj_refs[oid]
            ref_types = obj_ref_types[oid]
            for extent, extent_len, span, ref_type in plans[obj_class[oid]]:
                if skew > 0:
                    delta = zipf_index(span, skew)
                else:
                    delta = randint(0, span - 1)
                refs.append(extent[(own_position + delta) % extent_len])
                ref_types.append(ref_type)
        return cls(schema, obj_class, obj_refs, obj_ref_types, instances_by_class)

    # ------------------------------------------------------------------
    # Dynamic operations (OCB's insert/delete workload half)
    # ------------------------------------------------------------------
    def clone(self) -> "Database":
        """Deep-copy the object graph.

        Workloads with inserts/deletes mutate the database; the model
        clones the cached base per replication so replications stay
        independent.
        """
        return Database(
            self.schema,
            self._obj_class.copy(),
            [refs.copy() for refs in self._obj_refs],
            [types.copy() for types in self._obj_ref_types],
            [extent.copy() for extent in self._instances_by_class],
        )

    def insert_object(
        self, cid: int, refs: List[int], ref_types: List[int]
    ) -> int:
        """Create one instance of class ``cid``; returns its new OID."""
        if not 0 <= cid < self.config.nc:
            raise ValueError(f"class id {cid} out of range")
        if len(refs) != len(ref_types):
            raise ValueError("refs and ref_types must have equal length")
        for target in refs:
            if not 0 <= target < len(self._obj_class):
                raise ValueError(f"reference target {target} out of range")
        oid = len(self._obj_class)
        self._obj_class.append(cid)
        self._obj_refs.append(list(refs))
        self._obj_ref_types.append(list(ref_types))
        self._instances_by_class[cid].append(oid)
        self.mutations += 1
        if self._referrers is not None:
            for target in refs:
                self._referrers.setdefault(target, set()).add(oid)
        return oid

    def delete_object(self, oid: int) -> List[int]:
        """Remove one object; returns the OIDs whose references changed.

        The object becomes a tombstone (its OID stays allocated so the
        flat lists keep their indexing); every reference *to* it is
        dropped from the referencing objects, which is the reference-
        cleanup work a real store performs on delete.
        """
        if self.is_deleted(oid):
            raise ValueError(f"object {oid} is already deleted")
        cid = self._obj_class[oid]
        self._instances_by_class[cid].remove(oid)
        self.mutations += 1
        referrers = self._reverse_index()
        own_refs = list(self._obj_refs[oid])
        self._obj_class[oid] = -1  # tombstone
        self._obj_refs[oid] = []
        self._obj_ref_types[oid] = []
        for target in own_refs:
            referrers.get(target, set()).discard(oid)
        dirty = sorted(referrers.pop(oid, ()))
        for other in dirty:
            kept = [
                (t, rt)
                for t, rt in zip(self._obj_refs[other], self._obj_ref_types[other])
                if t != oid
            ]
            self._obj_refs[other] = [t for t, __ in kept]
            self._obj_ref_types[other] = [rt for __, rt in kept]
        return dirty

    def _reverse_index(self) -> dict:
        if self._referrers is None:
            referrers: dict[int, set[int]] = {}
            for oid, refs in enumerate(self._obj_refs):
                for target in refs:
                    referrers.setdefault(target, set()).add(oid)
            self._referrers = referrers
        return self._referrers

    def is_deleted(self, oid: int) -> bool:
        return self._obj_class[oid] == -1

    def live_objects(self) -> int:
        return sum(len(extent) for extent in self._instances_by_class)

    # ------------------------------------------------------------------
    # Hot-path accessors
    # ------------------------------------------------------------------
    def class_of(self, oid: int) -> int:
        return self._obj_class[oid]

    def refs(self, oid: int) -> Sequence[int]:
        return self._obj_refs[oid]

    def ref_types(self, oid: int) -> Sequence[int]:
        return self._obj_ref_types[oid]

    def refs_of_type(self, oid: int, ref_type: int) -> List[int]:
        return [
            target
            for target, t in zip(self._obj_refs[oid], self._obj_ref_types[oid])
            if t == ref_type
        ]

    def size(self, oid: int) -> int:
        cid = self._obj_class[oid]
        if cid < 0:
            return 0  # tombstone: its disk slot is garbage, not payload
        return self.schema[cid].instance_size

    def instances_of(self, cid: int) -> Sequence[int]:
        return self._instances_by_class[cid]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._obj_class)

    def __iter__(self) -> Iterator[ObjectInstance]:
        for oid in range(len(self)):
            yield self.instance(oid)

    def instance(self, oid: int) -> ObjectInstance:
        """Materialize the convenience view of one object."""
        return ObjectInstance(
            oid=oid,
            cid=self._obj_class[oid],
            size=self.size(oid),
            refs=tuple(self._obj_refs[oid]),
            ref_types=tuple(self._obj_ref_types[oid]),
        )

    def total_bytes(self) -> int:
        """Total object payload (what the placement maps onto pages)."""
        sizes = [c.instance_size for c in self.schema.classes]
        return sum(sizes[cid] for cid in self._obj_class)

    def total_references(self) -> int:
        return sum(len(refs) for refs in self._obj_refs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Database no={len(self)} nc={self.config.nc} "
            f"bytes={self.total_bytes()}>"
        )
