"""clustering — the Clustering Manager's pluggable policies.

Figure 4's Clustering Manager is the only component that changes when two
clustering algorithms are compared: "The only treatments that differ when
two distinct clustering algorithms are tested are those performed by the
Clustering Manager.  Other treatments in the model remain the same."

This package supplies:

* **initial placement** policies (Table 3 INITPL: Sequential, Optimized
  Sequential) that lay the generated object base onto disk pages
  (`placement`);
* the **clustering policy** interface and the trivial ``NoClustering``
  (`base`);
* **DSTC** — the Dynamic, Statistical, Tunable Clustering technique of
  Bullat & Schneider the paper evaluates in §4.4 (`dstc`);
* a **greedy static graph clustering** baseline in the spirit of the
  Tsangaris & Naughton comparisons the paper cites, used by the ablation
  benches (`greedy`).
"""

from repro.clustering.base import ClusteringPolicy, NoClustering, make_clustering_policy
from repro.clustering.dstc import DSTC, DSTCParameters
from repro.clustering.greedy import GreedyGraphClustering
from repro.clustering.placement import (
    PageMap,
    make_placement,
    optimized_sequential_placement,
    sequential_placement,
)

__all__ = [
    "ClusteringPolicy",
    "NoClustering",
    "DSTC",
    "DSTCParameters",
    "GreedyGraphClustering",
    "make_clustering_policy",
    "PageMap",
    "make_placement",
    "sequential_placement",
    "optimized_sequential_placement",
]
