"""DSTC — Dynamic, Statistical, Tunable Clustering (Bullat & Schneider).

The clustering technique the paper evaluates in §4.4 ([Bul96], ECOOP '96,
"Dynamic Clustering in Object Database Exploiting Effective Use of
Relationships Between Objects"), implemented in Texas and mirrored here
inside VOODB's Clustering Manager.

DSTC runs in phases:

1. **Observation** — during an observation period, count object accesses
   and the use of inter-object links (consecutive accesses within one
   transaction approximate reference traversals).
2. **Selection** — at period end, keep only significant statistics:
   objects accessed at least ``tfa`` times, links used at least ``tfe``
   times.
3. **Consolidation** — merge the selected statistics into the persistent
   matrices with an aging factor ``w`` (old knowledge decays, so the
   clustering adapts when the workload drifts).
4. **Dynamic cluster building** — objects connected by consolidated
   links of weight ≥ ``tfc`` form clustering units; each unit is ordered
   by descending object weight (hottest first) and capped at
   ``max_cluster_size``.
5. **Reorganization** — the Clustering Manager physically rewrites the
   clustered objects (automatically when ``auto_trigger`` is set, or on
   the external demand of Figure 4).

All five thresholds are the "tunable" in DSTC's name; the paper's future
work — "know the right value for DSTC's parameters in various
conditions" — is exercised by the sensitivity ablation bench.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.clustering.base import ClusteringPolicy


@dataclass(frozen=True)
class DSTCParameters:
    """The tunable knobs of DSTC (defaults calibrated on §4.4)."""

    #: Transactions per observation period.
    observation_period: int = 200
    #: Selection threshold on object access counts (Tfa).
    tfa: float = 2.0
    #: Selection threshold on link usage counts (Tfe).
    tfe: float = 2.0
    #: Clustering threshold on consolidated link weights (Tfc).
    tfc: float = 2.0
    #: Aging factor applied to persistent statistics at consolidation.
    w: float = 0.5
    #: Hard cap on objects per clustering unit.
    max_cluster_size: int = 50
    #: Reorganize automatically at observation-period boundaries.
    auto_trigger: bool = False

    def __post_init__(self) -> None:
        if self.observation_period < 1:
            raise ValueError("observation_period must be >= 1")
        if self.tfa < 0 or self.tfe < 0 or self.tfc < 0:
            raise ValueError("thresholds must be >= 0")
        if not 0.0 <= self.w <= 1.0:
            raise ValueError(f"aging factor w must be in [0, 1], got {self.w}")
        if self.max_cluster_size < 2:
            raise ValueError("max_cluster_size must be >= 2")


class DSTC(ClusteringPolicy):
    """The DSTC policy object plugged into the Clustering Manager."""

    name = "dstc"

    def __init__(self, parameters: Optional[DSTCParameters] = None) -> None:
        self.parameters = parameters or DSTCParameters()
        # Observation-period statistics
        self._obj_counts: Dict[int, float] = {}
        self._link_counts: Dict[Tuple[int, int], float] = {}
        # Persistent (consolidated) statistics
        self._obj_weights: Dict[int, float] = {}
        self._link_weights: Dict[Tuple[int, int], float] = {}
        self._transactions = 0
        self._periods_closed = 0
        self._installed_signature: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Phase 1: observation
    # ------------------------------------------------------------------
    def on_object_access(self, oid: int, previous_oid: Optional[int]) -> None:
        counts = self._obj_counts
        counts[oid] = counts.get(oid, 0.0) + 1.0
        if previous_oid is not None and previous_oid != oid:
            link = (previous_oid, oid) if previous_oid < oid else (oid, previous_oid)
            links = self._link_counts
            links[link] = links.get(link, 0.0) + 1.0

    def on_transaction_end(self) -> bool:
        self._transactions += 1
        if self._transactions % self.parameters.observation_period == 0:
            self.close_observation_period()
            if self.parameters.auto_trigger:
                return self._clusters_would_change()
        return False

    # ------------------------------------------------------------------
    # Phases 2-3: selection + consolidation
    # ------------------------------------------------------------------
    def close_observation_period(self) -> None:
        """Select significant stats and fold them into the persistent
        matrices with aging (phases 2 and 3)."""
        p = self.parameters
        selected_objects = {
            oid: count for oid, count in self._obj_counts.items() if count >= p.tfa
        }
        selected_links = {
            link: count
            for link, count in self._link_counts.items()
            if count >= p.tfe
            and link[0] in selected_objects
            and link[1] in selected_objects
        }
        # Aging: every persistent entry decays, then new evidence adds in.
        self._obj_weights = {
            oid: weight * p.w for oid, weight in self._obj_weights.items()
        }
        self._link_weights = {
            link: weight * p.w for link, weight in self._link_weights.items()
        }
        for oid, count in selected_objects.items():
            self._obj_weights[oid] = self._obj_weights.get(oid, 0.0) + count
        for link, count in selected_links.items():
            self._link_weights[link] = self._link_weights.get(link, 0.0) + count
        self._obj_counts.clear()
        self._link_counts.clear()
        self._periods_closed += 1

    def flush_observations(self) -> None:
        """Close the current (possibly partial) observation period.

        The external-demand path (§4.4 measures "before and after
        clustering") calls this so statistics gathered since the last
        period boundary are not lost.
        """
        if self._obj_counts or self._link_counts:
            self.close_observation_period()

    # ------------------------------------------------------------------
    # Phase 4: dynamic cluster building
    # ------------------------------------------------------------------
    def build_clusters(self) -> List[List[int]]:
        """Union significant links into clustering units.

        Members are ordered by walking the link graph from the hottest
        object, always crossing the strongest available link — so a
        cluster's on-disk order mirrors the traversal order that produced
        the statistics, which is what makes the cluster pay off page-wise.
        """
        p = self.parameters
        weights = self._obj_weights
        # Adjacency restricted to significant links between kept objects.
        adjacency: Dict[int, List[Tuple[float, int]]] = {}
        for (a, b), weight in self._link_weights.items():
            if weight < p.tfc:
                continue
            if a not in weights or b not in weights:
                continue
            adjacency.setdefault(a, []).append((weight, b))
            adjacency.setdefault(b, []).append((weight, a))

        visited: set[int] = set()
        clusters: List[List[int]] = []
        # Deterministic seed order: hottest objects first.
        seeds = sorted(adjacency, key=lambda oid: (-weights[oid], oid))
        for seed in seeds:
            if seed in visited:
                continue
            members = self._walk_component(seed, adjacency, visited)
            if len(members) < 2:
                continue
            for start in range(0, len(members), p.max_cluster_size):
                chunk = members[start : start + p.max_cluster_size]
                if len(chunk) >= 2:
                    clusters.append(chunk)
        clusters.sort(key=lambda c: c[0])
        return clusters

    @staticmethod
    def _walk_component(
        seed: int,
        adjacency: Dict[int, List[Tuple[float, int]]],
        visited: set,
    ) -> List[int]:
        """Best-first walk of one component, strongest links first."""
        order: List[int] = []
        visited.add(seed)
        heap: List[Tuple[float, int, int]] = []
        tie = 0

        def push_edges(oid: int) -> None:
            nonlocal tie
            for weight, target in adjacency[oid]:
                if target not in visited:
                    heapq.heappush(heap, (-weight, tie, target))
                    tie += 1

        order.append(seed)
        push_edges(seed)
        while heap:
            __, __, current = heapq.heappop(heap)
            if current in visited:
                continue
            visited.add(current)
            order.append(current)
            push_edges(current)
        return order

    def notify_reorganized(self, clusters: List[List[int]]) -> None:
        self._installed_signature = self._signature(clusters)

    # ------------------------------------------------------------------
    # Introspection / trigger support
    # ------------------------------------------------------------------
    def _clusters_would_change(self) -> bool:
        return self._signature(self.build_clusters()) != self._installed_signature

    @staticmethod
    def _signature(clusters: List[List[int]]) -> tuple:
        return tuple(tuple(c) for c in clusters)

    @property
    def observed_transactions(self) -> int:
        return self._transactions

    @property
    def periods_closed(self) -> int:
        return self._periods_closed

    @property
    def tracked_objects(self) -> int:
        """Objects with persistent weight (post-selection survivors)."""
        return len(self._obj_weights)

    @property
    def tracked_links(self) -> int:
        return len(self._link_weights)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DSTC txns={self._transactions} objects={self.tracked_objects} "
            f"links={self.tracked_links}>"
        )
