"""Object placement: laying the object base onto disk pages.

Table 3's INITPL parameter offers **Sequential** (objects in OID order)
and **Optimized Sequential** (the Table 4 default for both O2 and Texas:
objects grouped by class, so each class extent is contiguous on disk).

The product is a :class:`PageMap` — the OID→page mapping the Object
Manager consults on every access and the Clustering Manager rebuilds when
it reorganizes the base.  Objects never share a page with a partial
object; an object larger than a page spans consecutive pages (its page
span is returned by :meth:`PageMap.pages_of`).

Page capacity accounts for the system's storage overhead (callers pass
``VOODBConfig.usable_page_bytes``) — this is how the same OCB base
occupies ~28 MB under O2 and ~21 MB under Texas (§4.3/§4.4).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.ocb.database import Database


class PageMap:
    """An immutable assignment of every object to its page(s)."""

    def __init__(
        self,
        first_page: List[int],
        span: List[int],
        page_objects: List[List[int]],
    ) -> None:
        self._first_page = first_page
        self._span = span
        self._page_objects = page_objects
        #: per-oid page ranges, materialized once — ``pages_of`` is the
        #: single hottest lookup in the model (one call per object
        #: access), and rebuilding the range object each time costs more
        #: than this map's whole construction
        self._ranges: List[range] = [
            range(first, first + width)
            for first, width in zip(first_page, span)
        ]
        #: (page, used bytes) of the current insert-append page, if any
        self._append_cursor: tuple[int, int] | None = None

    @classmethod
    def build(
        cls,
        order: Sequence[int],
        sizes: Sequence[int],
        usable_page_bytes: int,
        page_aligned_groups: Sequence[int] | None = None,
    ) -> "PageMap":
        """Pack objects onto pages in the given order.

        ``order`` is a permutation of OIDs; ``sizes[oid]`` the object
        payload.  ``page_aligned_groups`` optionally marks OIDs that must
        start on a fresh page (cluster starts, class-extent starts) so
        groups never straddle a shared page boundary.
        """
        total = len(sizes)
        first_page = [0] * total
        span = [1] * total
        page_objects: List[List[int]] = []
        aligned = set(page_aligned_groups or ())
        current: List[int] = []
        used = 0

        def close_page() -> None:
            nonlocal current, used
            page_objects.append(current)
            current = []
            used = 0

        for oid in order:
            size = sizes[oid]
            if oid in aligned and current:
                close_page()
            if size > usable_page_bytes:
                # Large object: dedicated consecutive pages.
                if current:
                    close_page()
                pages_needed = -(-size // usable_page_bytes)
                first_page[oid] = len(page_objects)
                span[oid] = pages_needed
                page_objects.append([oid])
                for __ in range(pages_needed - 1):
                    page_objects.append([])
                continue
            if used + size > usable_page_bytes:
                close_page()
            first_page[oid] = len(page_objects)
            span[oid] = 1
            current.append(oid)
            used += size
        if current:
            close_page()
        return cls(first_page, span, page_objects)

    def append_object(self, oid: int, size: int, usable_page_bytes: int) -> int:
        """Place a newly created object (OCB insert) at the extent's end.

        New objects fill the current append page until it overflows, then
        open a fresh page — heap-file append semantics.  Returns the
        first page of the new object.  ``oid`` must be the next unmapped
        OID (inserts allocate OIDs densely).
        """
        if oid != len(self._first_page):
            raise ValueError(
                f"append_object expects oid {len(self._first_page)}, got {oid}"
            )
        if size > usable_page_bytes:
            pages_needed = -(-size // usable_page_bytes)
            first = len(self._page_objects)
            self._page_objects.append([oid])
            for __ in range(pages_needed - 1):
                self._page_objects.append([])
            self._first_page.append(first)
            self._span.append(pages_needed)
            self._ranges.append(range(first, first + pages_needed))
            self._append_cursor = None
            return first
        if (
            self._append_cursor is None
            or self._append_cursor[1] + size > usable_page_bytes
        ):
            self._page_objects.append([])
            self._append_cursor = (len(self._page_objects) - 1, 0)
        page, used = self._append_cursor
        self._page_objects[page].append(oid)
        self._append_cursor = (page, used + size)
        self._first_page.append(page)
        self._span.append(1)
        self._ranges.append(range(page, page + 1))
        return page

    # ------------------------------------------------------------------
    # Hot-path accessors
    # ------------------------------------------------------------------
    def page_of(self, oid: int) -> int:
        """First page of the object (its only page for small objects)."""
        return self._first_page[oid]

    def pages_of(self, oid: int) -> range:
        """Every page the object occupies."""
        return self._ranges[oid]

    def objects_on(self, page: int) -> Sequence[int]:
        return self._page_objects[page]

    @property
    def total_pages(self) -> int:
        return len(self._page_objects)

    def __len__(self) -> int:
        return len(self._first_page)

    def occupancy(self) -> float:
        """Mean objects per non-empty page."""
        non_empty = [p for p in self._page_objects if p]
        if not non_empty:
            return 0.0
        return sum(len(p) for p in non_empty) / len(non_empty)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PageMap objects={len(self)} pages={self.total_pages}>"


def sequential_placement(db: Database, usable_page_bytes: int) -> PageMap:
    """INITPL = Sequential: objects packed in OID (creation) order."""
    sizes = [db.size(oid) for oid in range(len(db))]
    return PageMap.build(range(len(db)), sizes, usable_page_bytes)


def optimized_sequential_placement(db: Database, usable_page_bytes: int) -> PageMap:
    """INITPL = Optimized Sequential: class extents contiguous on disk.

    Objects of one class sit together (in extent order), and each class
    starts on a fresh page.  Combined with OCB's object-locality window
    this gives related objects page proximity from the start — the
    baseline DSTC has to beat.
    """
    sizes = [db.size(oid) for oid in range(len(db))]
    order: List[int] = []
    group_starts: List[int] = []
    for cid in range(db.config.nc):
        extent = db.instances_of(cid)
        if extent:
            group_starts.append(extent[0])
            order.extend(extent)
    return PageMap.build(order, sizes, usable_page_bytes, group_starts)


def clustered_placement(
    db: Database,
    usable_page_bytes: int,
    clusters: Sequence[Sequence[int]],
    previous_order: Sequence[int],
) -> PageMap:
    """Rebuild placement with ``clusters`` packed first, page-aligned.

    Used by clustering policies at reorganization time: each cluster is
    laid out contiguously starting on a fresh page; every object not in a
    cluster keeps its relative order from ``previous_order``.
    """
    sizes = [db.size(oid) for oid in range(len(db))]
    clustered: set[int] = set()
    order: List[int] = []
    group_starts: List[int] = []
    for cluster in clusters:
        if not cluster:
            continue
        group_starts.append(cluster[0])
        for oid in cluster:
            if oid in clustered:
                raise ValueError(f"object {oid} appears in two clusters")
            clustered.add(oid)
            order.append(oid)
    remaining = [oid for oid in previous_order if oid not in clustered]
    if remaining:
        group_starts.append(remaining[0])
    order.extend(remaining)
    if len(order) != len(db):
        raise ValueError(
            f"placement order covers {len(order)} of {len(db)} objects"
        )
    return PageMap.build(order, sizes, usable_page_bytes, group_starts)


def relocation_placement(
    db: Database,
    usable_page_bytes: int,
    clusters: Sequence[Sequence[int]],
    current: PageMap,
) -> PageMap:
    """Relocate clustered objects to fresh pages; everything else stays.

    This is how a real store reorganizes: moved objects leave holes in
    their old pages and land on newly allocated pages appended after the
    current extent (each cluster page-aligned, members contiguous in
    cluster order).  Non-moved objects keep their exact page ids, so
    buffer frames for untouched pages remain valid — only the old pages
    of moved objects (stale images) and the fresh cluster pages are
    affected.  Freed hole space is not reclaimed, matching the
    storage-growth behaviour of relocation-based reorganizers.
    """
    moved: set[int] = set()
    for cluster in clusters:
        for oid in cluster:
            if oid in moved:
                raise ValueError(f"object {oid} appears in two clusters")
            moved.add(oid)

    first_page = [current.page_of(oid) for oid in range(len(db))]
    span = [len(current.pages_of(oid)) for oid in range(len(db))]
    page_objects: List[List[int]] = [
        [oid for oid in current.objects_on(page) if oid not in moved]
        for page in range(current.total_pages)
    ]

    current_page: List[int] = []
    used = 0

    def close_page() -> None:
        nonlocal current_page, used
        if current_page:
            page_objects.append(current_page)
        current_page = []
        used = 0

    for cluster in clusters:
        close_page()  # each cluster starts on a fresh page
        for oid in cluster:
            size = db.size(oid)
            if size > usable_page_bytes:
                close_page()
                pages_needed = -(-size // usable_page_bytes)
                first_page[oid] = len(page_objects)
                span[oid] = pages_needed
                page_objects.append([oid])
                for __ in range(pages_needed - 1):
                    page_objects.append([])
                continue
            if used + size > usable_page_bytes:
                close_page()
                current_page = []
            first_page[oid] = len(page_objects)
            span[oid] = 1
            current_page.append(oid)
            used += size
    close_page()
    return PageMap(first_page, span, page_objects)


#: Table 3 INITPL registry.
_PLACEMENTS = {
    "sequential": sequential_placement,
    "optimized_sequential": optimized_sequential_placement,
}


def make_placement(db: Database, initpl: str, usable_page_bytes: int) -> PageMap:
    """Build the initial placement selected by the INITPL code."""
    key = initpl.strip().lower()
    if key not in _PLACEMENTS:
        raise ValueError(
            f"unknown initial placement {initpl!r}; known: {sorted(_PLACEMENTS)}"
        )
    return _PLACEMENTS[key](db, usable_page_bytes)
