"""The clustering-policy interface and the no-clustering default.

Figure 4 confines algorithm-specific behaviour to two activities of the
Clustering Manager: "Perform treatment related to clustering (statistics
collection, etc.)" — the per-access hook — and "Perform Clustering" —
the reorganization.  A :class:`ClusteringPolicy` supplies exactly those
two behaviours; the Clustering Manager
(:mod:`repro.core.clustering_manager`) owns everything else (trigger
plumbing, physical reorganization I/O, cache invalidation), so swapping
policies swaps *only* what the paper says should differ.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

from repro.ocb.database import Database


class ClusteringPolicy(ABC):
    """Strategy plugged into the Clustering Manager (Table 3 CLUSTP)."""

    name: str = "abstract"

    #: False only for policies whose :meth:`on_object_access` is a no-op;
    #: lets the Transaction Manager skip the per-access hook call.
    tracks_accesses: bool = True

    def attach(self, db: Database) -> None:
        """Called once, before the workload starts."""
        self.db = db

    @abstractmethod
    def on_object_access(self, oid: int, previous_oid: Optional[int]) -> None:
        """Statistics-collection hook, called for every object access.

        ``previous_oid`` is the previously accessed object of the same
        transaction (None at the transaction's first access) — the
        navigational link usage-based policies feed on.
        """

    @abstractmethod
    def on_transaction_end(self) -> bool:
        """Called after each transaction; True requests a reorganization
        (Figure 4 "automatic triggering")."""

    @abstractmethod
    def build_clusters(self) -> List[List[int]]:
        """Produce the cluster set to install at reorganization time.

        Each cluster is an ordered list of OIDs (placement order); an
        object may appear in at most one cluster.  Returning an empty
        list cancels the reorganization.
        """

    def notify_reorganized(self, clusters: List[List[int]]) -> None:
        """Called after the physical reorganization completed."""


class NoClustering(ClusteringPolicy):
    """Table 3 default (CLUSTP = None): collect nothing, never trigger."""

    name = "none"
    tracks_accesses = False

    def on_object_access(self, oid: int, previous_oid: Optional[int]) -> None:
        pass

    def on_transaction_end(self) -> bool:
        return False

    def build_clusters(self) -> List[List[int]]:
        return []


def make_clustering_policy(name: str, **kwargs) -> ClusteringPolicy:
    """Build a policy from its Table 3 CLUSTP code.

    Imports locally to keep the policy modules optional at import time.
    """
    key = name.strip().lower()
    if key in ("none", ""):
        return NoClustering()
    if key == "dstc":
        from repro.clustering.dstc import DSTC, DSTCParameters

        params = kwargs.pop("dstc_parameters", None) or DSTCParameters(**kwargs)
        return DSTC(params)
    if key == "greedy":
        from repro.clustering.greedy import GreedyGraphClustering

        return GreedyGraphClustering(**kwargs)
    raise ValueError(
        f"unknown clustering policy {name!r}; known: none, dstc, greedy"
    )
