"""A static greedy graph-partitioning clustering baseline.

The paper situates DSTC among *graph partitioning* approaches compared by
Tsangaris & Naughton's CLAB ([Tsa92]) and evaluated in the authors' own
survey ([Dar96]); §5 plans to pit DSTC against other techniques inside
VOODB.  This policy is that comparison partner: a classic *static*,
structure-driven clusterer in the WOR/greedy-traversal family.

Unlike DSTC it ignores usage statistics entirely — it walks the
database's reference graph at reorganization time, greedily growing a
cluster from each unvisited object by following references breadth-first
(weighted by reference count when ``use_weights``).  It therefore models
the "a priori placement optimizer" class of techniques: zero runtime
statistics overhead, but blind to the actual access pattern.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.clustering.base import ClusteringPolicy


class GreedyGraphClustering(ClusteringPolicy):
    """Static breadth-first greedy clustering over the reference graph."""

    name = "greedy"

    def __init__(self, max_cluster_size: int = 50, use_weights: bool = True) -> None:
        if max_cluster_size < 2:
            raise ValueError("max_cluster_size must be >= 2")
        self.max_cluster_size = max_cluster_size
        self.use_weights = use_weights
        self._transactions = 0
        self._reference_degree: Optional[Dict[int, int]] = None

    # ------------------------------------------------------------------
    # No statistics: the hooks are no-ops.
    # ------------------------------------------------------------------
    def on_object_access(self, oid: int, previous_oid: Optional[int]) -> None:
        pass

    def on_transaction_end(self) -> bool:
        self._transactions += 1
        return False  # static technique: external trigger only

    # ------------------------------------------------------------------
    def _in_degrees(self) -> Dict[int, int]:
        if self._reference_degree is None:
            degrees: Dict[int, int] = {}
            for oid in range(len(self.db)):
                for target in self.db.refs(oid):
                    degrees[target] = degrees.get(target, 0) + 1
            self._reference_degree = degrees
        return self._reference_degree

    def build_clusters(self) -> List[List[int]]:
        """Greedy BFS partition of the whole reference graph.

        Seeds are taken in descending in-degree order (hub objects
        first) when ``use_weights``, else in OID order.
        """
        db = self.db
        total = len(db)
        visited = [False] * total
        if self.use_weights:
            degrees = self._in_degrees()
            seeds = sorted(range(total), key=lambda o: (-degrees.get(o, 0), o))
        else:
            seeds = list(range(total))
        clusters: List[List[int]] = []
        for seed in seeds:
            if visited[seed]:
                continue
            cluster = [seed]
            visited[seed] = True
            queue = deque([seed])
            while queue and len(cluster) < self.max_cluster_size:
                current = queue.popleft()
                for target in db.refs(current):
                    if len(cluster) >= self.max_cluster_size:
                        break
                    if not visited[target]:
                        visited[target] = True
                        cluster.append(target)
                        queue.append(target)
            if len(cluster) >= 2:
                clusters.append(cluster)
        return clusters
