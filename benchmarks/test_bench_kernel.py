"""Kernel event-loop microbench: measure the fast paths, don't assert them.

Runs one standard replication on the default (Table 4 centralized)
config and reports where its events went: the calendar wheel vs the
far-future overflow heap for timed events, the immediate queue and the
merged continuations for the zero-delay traffic, the timed holds the
warp lane absorbed without any queue at all, and how many Event
objects the free-list pool recycled instead of allocating.

The published counters are deterministic for a given config and seed, so
``results/kernel.txt`` is a golden output like the paper tables; the
wall-clock side lives in pytest-benchmark's timing (and the JSON export,
see conftest).  The test also guards each speedup's mechanism: if a
kernel change silently reroutes the zero-delay continuations back
through the timed tiers, or stops recycling events, the counters
collapse and this fails before anyone needs a stopwatch.
"""

from conftest import fmt_rows
from repro.core.model import VOODBSimulation
from repro.core.parameters import VOODBConfig


def test_bench_kernel_fast_path(regenerate):
    state = {}

    def run():
        model = VOODBSimulation(VOODBConfig(), seed=0)
        model.run()
        sim = model.sim
        state["sim"] = sim
        executed = sim.events_executed
        fast = sim.events_fast_dispatched
        wheel = sim.events_wheel_pushed
        heap = sim.events_heap_pushed
        merged = sim.events_merged_continuations
        pooled = sim.events_pooled_reused
        warped = sim.events_holds_warped
        continuations = fast + merged
        rows = [
            ["events executed", executed],
            ["events wheel pushed", wheel],
            ["events heap pushed", heap],
            ["events fast dispatched", fast],
            ["continuations merged in place", merged],
            ["timed holds warped in place", warped],
            ["events pooled reused", pooled],
            ["ticks overflowed", sim.events_ticks_overflowed],
            ["wheel recalibrations", sim.events_wheel_recalibrations],
            [
                "queue bypass share",
                f"{(continuations + warped) / (continuations + warped + wheel + heap):.3f}",
            ],
            ["transactions", model.tm.transactions_executed],
        ]
        return fmt_rows(
            "Kernel event-loop fast paths (default config, seed 0)",
            ["counter", "value"],
            rows,
        )

    regenerate("kernel", run)
    sim = state["sim"]
    # The point of the fast paths: zero-delay continuations dominate
    # VOODB traffic and must bypass the timed tiers entirely, and on
    # this single-user config the warp lane must absorb the timed holds
    # too — the whole replication runs without a single queue round
    # trip, so the wheel, heap and pool all sit idle.
    bypassed = sim.events_fast_dispatched + sim.events_merged_continuations
    assert bypassed > sim.events_heap_pushed
    assert sim.events_holds_warped > sim.events_wheel_pushed
    assert sim.events_heap_pushed == 0
