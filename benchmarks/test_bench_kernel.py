"""Kernel event-loop microbench: measure the fast path, don't assert it.

Runs one standard replication on the default (Table 4 centralized)
config and reports where its events went: how many paid the O(log n)
binary-heap push versus how many were dispatched straight off the
immediate run queue (resource grants, gate openings, process wake-ups).

The published counters are deterministic for a given config and seed, so
``results/kernel.txt`` is a golden output like the paper tables; the
wall-clock side lives in pytest-benchmark's timing (and the JSON export,
see conftest).  The test also guards the speedup's mechanism: if a
kernel change silently reroutes the zero-delay continuations back
through the heap, the fast-dispatch share collapses and this fails
before anyone needs a stopwatch.
"""

from conftest import fmt_rows
from repro.core.model import VOODBSimulation
from repro.core.parameters import VOODBConfig


def test_bench_kernel_fast_path(regenerate):
    state = {}

    def run():
        model = VOODBSimulation(VOODBConfig(), seed=0)
        model.run()
        sim = model.sim
        state["sim"] = sim
        executed = sim.events_executed
        fast = sim.events_fast_dispatched
        heap = sim.events_heap_pushed
        merged = sim.events_merged_continuations
        continuations = fast + merged
        rows = [
            ["events executed", executed],
            ["events heap pushed", heap],
            ["events fast dispatched", fast],
            ["continuations merged in place", merged],
            ["heap bypass share", f"{continuations / (continuations + heap):.3f}"],
            ["transactions", model.tm.transactions_executed],
        ]
        return fmt_rows(
            "Kernel event-loop fast path (default config, seed 0)",
            ["counter", "value"],
            rows,
        )

    regenerate("kernel", run)
    sim = state["sim"]
    # The whole point of the fast path: zero-delay continuations dominate
    # VOODB traffic, so most of them must bypass the heap — either
    # dispatched off the immediate queue or merged into the running step.
    bypassed = sim.events_fast_dispatched + sim.events_merged_continuations
    assert bypassed > sim.events_heap_pushed
