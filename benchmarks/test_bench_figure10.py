"""Regenerate paper Figure 10 — Texas: mean I/Os vs number of instances (50 classes).

Same sweep as Figure 9 with the 50-class schema.
"""

from conftest import bench_executor, bench_hotn, bench_replications
from repro.experiments.figures import figure10
from repro.experiments.report import format_series


def test_bench_figure10(regenerate):
    def run():
        series = figure10(
            replications=bench_replications(),
            hotn=bench_hotn(),
            executor=bench_executor(),
        )
        return format_series(series)

    regenerate("figure10", run)
