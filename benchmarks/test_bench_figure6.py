"""Regenerate paper Figure 6 — O2: mean I/Os vs number of instances (20 classes).

Sweeps NO over {500..20000} on the Table 4 O2 page-server config.
"""

from conftest import bench_executor, bench_hotn, bench_replications
from repro.experiments.figures import figure6
from repro.experiments.report import format_series


def test_bench_figure6(regenerate):
    def run():
        series = figure6(
            replications=bench_replications(),
            hotn=bench_hotn(),
            executor=bench_executor(),
        )
        return format_series(series)

    regenerate("figure6", run)
