"""Unit tests for the slow-test budget gate (check_durations.py)."""

import pytest

from check_durations import check_durations, load_case_times, main


def junit(tmp_path, cases):
    body = "".join(
        f'<testcase classname="tests.demo" name="{name}" time="{seconds}"/>'
        for name, seconds in cases
    )
    path = tmp_path / "junit.xml"
    path.write_text(
        f'<?xml version="1.0"?><testsuites><testsuite>{body}'
        "</testsuite></testsuites>",
        encoding="utf-8",
    )
    return str(path)


class TestLoadCaseTimes:
    def test_reads_names_and_times(self, tmp_path):
        path = junit(tmp_path, [("test_fast", 0.01), ("test_slow", 3.5)])
        cases = load_case_times(path)
        assert ("tests.demo::test_slow", 3.5) in cases
        assert len(cases) == 2

    def test_rejects_non_xml(self, tmp_path):
        path = tmp_path / "junit.xml"
        path.write_text("{not xml}", encoding="utf-8")
        with pytest.raises(ValueError, match="JUnit"):
            load_case_times(str(path))

    def test_rejects_empty_suite(self, tmp_path):
        path = tmp_path / "junit.xml"
        path.write_text(
            "<testsuites><testsuite/></testsuites>", encoding="utf-8"
        )
        with pytest.raises(ValueError, match="no test cases"):
            load_case_times(str(path))

    def test_bad_time_attribute_skipped(self, tmp_path):
        path = tmp_path / "junit.xml"
        path.write_text(
            '<testsuite><testcase name="a" time="oops"/>'
            '<testcase name="b" time="1.0"/></testsuite>',
            encoding="utf-8",
        )
        assert load_case_times(str(path)) == [("b", 1.0)]


class TestCheckDurations:
    def test_within_budget_reports_nothing(self, capsys):
        problems = check_durations([("a", 1.0), ("b", 2.0)], budget=10.0)
        assert problems == []
        out = capsys.readouterr().out
        assert "slowest" in out and "suite total" in out

    def test_over_budget_test_flagged(self, capsys):
        problems = check_durations([("a", 1.0), ("slow", 9.0)], budget=5.0)
        assert len(problems) == 1
        assert "slow" in problems[0]
        assert "OVER" in capsys.readouterr().out

    def test_zero_budget_is_report_only(self, capsys):
        assert check_durations([("slow", 99.0)], budget=0.0) == []

    def test_total_budget_flagged(self, capsys):
        problems = check_durations(
            [("a", 4.0), ("b", 4.0)], budget=10.0, total_budget=5.0
        )
        assert len(problems) == 1
        assert "suite total" in problems[0]

    def test_top_limits_the_report(self, capsys):
        check_durations([(f"t{i}", float(i)) for i in range(20)], 0.0, top=3)
        out = capsys.readouterr().out
        assert "slowest 3 of 20" in out


class TestMain:
    def test_green_run_exits_zero(self, tmp_path, capsys):
        path = junit(tmp_path, [("test_fast", 0.5)])
        assert main(["--junit", path, "--budget", "10"]) == 0

    def test_over_budget_exits_one(self, tmp_path, capsys):
        path = junit(tmp_path, [("test_slow", 20.0)])
        assert main(["--junit", path, "--budget", "10"]) == 1
        assert "BUDGET EXCEEDED" in capsys.readouterr().err

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["--junit", str(tmp_path / "nope.xml")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_total_budget_flag(self, tmp_path, capsys):
        path = junit(tmp_path, [("a", 4.0), ("b", 4.0)])
        assert (
            main(["--junit", path, "--budget", "10", "--total-budget", "5"])
            == 1
        )
