"""Regenerate paper Table 6 — effects of DSTC on Texas, mid-sized base.

The §4.4 protocol at 64 MB: 1000 depth-3 hierarchy traversals
(pre-clustering usage), an externally demanded DSTC reorganization
(clustering overhead), and a replay of the same transactions
(post-clustering usage); the gain row is pre/post.
"""

from conftest import bench_executor, bench_replications
from repro.experiments.report import format_dstc_table
from repro.experiments.tables import table6


def test_bench_table6(regenerate):
    def run():
        result = table6(
            replications=bench_replications(), executor=bench_executor()
        )
        return format_dstc_table(result)

    regenerate("table6", run)
