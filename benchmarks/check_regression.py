"""Bench-drift gate: fail CI when a bench's mean wall time regresses.

Compares a *current* benchmark timing summary against a *baseline* and
exits non-zero when any bench shared by both regresses more than the
threshold.  Three baseline shapes are understood:

* the ``VOODB_BENCH_JSON`` summary the bench conftest writes
  (``{"benches": {name: seconds}, "total_wall_s": ...}``) — this is
  also what the CI workflow uploads as the ``benchmark-json`` artifact,
  so the previous main run's ``bench.json`` drops straight in;
* the committed ``BENCH_*.json`` trajectory snapshots (the
  ``post_pr_*`` section's ``benches`` dict is used);
* pytest-benchmark's ``--benchmark-json`` output
  (``{"benchmarks": [{"name": ..., "stats": {"mean": ...}}]}``).

Tiny benches are pure scheduling noise on shared CI runners, so means
below ``--min-seconds`` (on both sides) are skipped; benches present in
only one file are reported but never fail the gate (the suite is
allowed to grow).

Usage::

    python benchmarks/check_regression.py \
        --baseline BENCH_2.json --current bench.json --threshold 0.25
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional


def _from_conftest_summary(payload: dict) -> Optional[Dict[str, float]]:
    benches = payload.get("benches")
    if isinstance(benches, dict) and benches:
        return {str(name): float(secs) for name, secs in benches.items()}
    return None


def _from_trajectory_snapshot(payload: dict) -> Optional[Dict[str, float]]:
    # BENCH_*.json: prefer the post-PR section (the state the snapshot
    # records); fall back to any section carrying a benches dict.
    sections = [
        value
        for _key, value in sorted(payload.items())
        if isinstance(value, dict) and isinstance(value.get("benches"), dict)
    ]
    post = [
        value
        for key, value in sorted(payload.items())
        if key.startswith("post") and isinstance(value, dict)
    ]
    for section in post + sections:
        benches = _from_conftest_summary(section)
        if benches:
            return benches
    return None


def _from_pytest_benchmark(payload: dict) -> Optional[Dict[str, float]]:
    records = payload.get("benchmarks")
    if not isinstance(records, list):
        return None
    means: Dict[str, float] = {}
    for record in records:
        try:
            means[str(record["name"])] = float(record["stats"]["mean"])
        except (KeyError, TypeError, ValueError):
            continue
    return means or None


def load_bench_means(path: str) -> Dict[str, float]:
    """Per-bench mean seconds from any of the supported JSON shapes."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: expected a JSON object")
    for parse in (
        _from_conftest_summary,
        _from_trajectory_snapshot,
        _from_pytest_benchmark,
    ):
        means = parse(payload)
        if means:
            return means
    raise ValueError(f"{path}: no per-bench timings found")


def check_regression(
    baseline: Dict[str, float],
    current: Dict[str, float],
    threshold: float = 0.25,
    min_seconds: float = 0.5,
) -> list:
    """Benches whose mean regressed by more than ``threshold``.

    Returns ``(name, baseline_s, current_s, ratio)`` tuples, worst
    first.  A bench is judged only when present in both summaries and at
    least ``min_seconds`` on one side (sub-noise benches are skipped).
    """
    regressions = []
    for name, base_mean in baseline.items():
        cur_mean = current.get(name)
        if cur_mean is None:
            continue
        if base_mean < min_seconds and cur_mean < min_seconds:
            continue
        if base_mean <= 0:
            continue
        ratio = cur_mean / base_mean
        if ratio > 1.0 + threshold:
            regressions.append((name, base_mean, cur_mean, ratio))
    regressions.sort(key=lambda item: item[3], reverse=True)
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when any per-bench mean regresses past the threshold."
    )
    parser.add_argument("--baseline", required=True, help="baseline timings JSON")
    parser.add_argument("--current", required=True, help="current timings JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed relative regression (0.25 = +25%%)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.5,
        help="ignore benches faster than this on both sides (noise floor)",
    )
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="exit 0 (with a notice) when the baseline file does not exist",
    )
    args = parser.parse_args(argv)
    if args.threshold <= 0:
        parser.error("--threshold must be > 0")

    try:
        baseline = load_bench_means(args.baseline)
    except FileNotFoundError:
        if args.allow_missing:
            print(f"no baseline at {args.baseline}; skipping the bench gate")
            return 0
        print(f"error: baseline {args.baseline} not found", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        current = load_bench_means(args.current)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    shared = sorted(set(baseline) & set(current))
    new = sorted(set(current) - set(baseline))
    gone = sorted(set(baseline) - set(current))
    print(
        f"bench gate: {len(shared)} shared benches, threshold "
        f"+{args.threshold:.0%}, noise floor {args.min_seconds}s"
    )
    if new:
        print(f"  new benches (not gated): {', '.join(new)}")
    if gone:
        print(f"  benches missing from current run: {', '.join(gone)}")

    regressions = check_regression(
        baseline, current, threshold=args.threshold, min_seconds=args.min_seconds
    )
    if not regressions:
        print("  no regressions past the threshold")
        return 0
    print(f"  {len(regressions)} bench(es) regressed:")
    for name, base_mean, cur_mean, ratio in regressions:
        print(
            f"    {name}: {base_mean:.3f}s -> {cur_mean:.3f}s "
            f"({(ratio - 1.0):+.0%})"
        )
    return 1


if __name__ == "__main__":
    sys.exit(main())
