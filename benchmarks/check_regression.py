"""Bench-drift gate: fail CI when the bench suite's wall time regresses.

Compares a *current* benchmark timing summary against a *baseline* and
exits non-zero when either

* the **geomean** of the per-bench current/baseline ratios drifts past
  ``--threshold`` (the suite as a whole got slower — a geomean weights
  every bench equally, so a regression spread thinly across many benches
  is caught even though no single bench trips a per-bench limit), or
* any **single bench** regresses past the ``--per-bench-threshold`` hard
  gate (+150% by default — a localized blow-up fails even when the rest
  of the suite's improvements would hide it from the geomean).

When the ``--baseline`` file does not exist (e.g. the first CI run on a
branch with no previous artifact), the committed trajectory snapshot
given by ``--fallback`` (default: the repo's ``BENCH_9.json``) is used
instead.  Three baseline shapes are understood:

* the ``VOODB_BENCH_JSON`` summary the bench conftest writes
  (``{"benches": {name: seconds}, "total_wall_s": ...}``) — this is
  also what the CI workflow uploads as the ``benchmark-json`` artifact,
  so the previous main run's ``bench.json`` drops straight in;
* the committed ``BENCH_*.json`` trajectory snapshots (the
  ``post_pr_*`` section's ``benches`` dict is used);
* pytest-benchmark's ``--benchmark-json`` output
  (``{"benchmarks": [{"name": ..., "stats": {"mean": ...}}]}``).

Tiny benches are pure scheduling noise on shared CI runners, so means
below ``--min-seconds`` (on both sides) are skipped; benches present in
only one file are reported but never fail the gate (the suite is
allowed to grow).

Usage::

    python benchmarks/check_regression.py \
        --baseline BENCH_2.json --current bench.json --threshold 0.25
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import Dict, Optional

#: Committed trajectory snapshot used when the baseline artifact is
#: missing (first run on a branch, expired CI artifact...).
DEFAULT_FALLBACK = str(Path(__file__).resolve().parent.parent / "BENCH_9.json")


def _from_conftest_summary(payload: dict) -> Optional[Dict[str, float]]:
    benches = payload.get("benches")
    if isinstance(benches, dict) and benches:
        return {str(name): float(secs) for name, secs in benches.items()}
    return None


def _from_trajectory_snapshot(payload: dict) -> Optional[Dict[str, float]]:
    # BENCH_*.json: prefer the post-PR section (the state the snapshot
    # records); fall back to any section carrying a benches dict.
    sections = [
        value
        for _key, value in sorted(payload.items())
        if isinstance(value, dict) and isinstance(value.get("benches"), dict)
    ]
    post = [
        value
        for key, value in sorted(payload.items())
        if key.startswith("post") and isinstance(value, dict)
    ]
    for section in post + sections:
        benches = _from_conftest_summary(section)
        if benches:
            return benches
    return None


def _from_pytest_benchmark(payload: dict) -> Optional[Dict[str, float]]:
    records = payload.get("benchmarks")
    if not isinstance(records, list):
        return None
    means: Dict[str, float] = {}
    for record in records:
        try:
            means[str(record["name"])] = float(record["stats"]["mean"])
        except (KeyError, TypeError, ValueError):
            continue
    return means or None


def load_bench_means(path: str) -> Dict[str, float]:
    """Per-bench mean seconds from any of the supported JSON shapes."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: expected a JSON object")
    for parse in (
        _from_conftest_summary,
        _from_trajectory_snapshot,
        _from_pytest_benchmark,
    ):
        means = parse(payload)
        if means:
            return means
    raise ValueError(f"{path}: no per-bench timings found")


def check_regression(
    baseline: Dict[str, float],
    current: Dict[str, float],
    threshold: float = 0.25,
    min_seconds: float = 0.5,
) -> list:
    """Benches whose mean regressed by more than ``threshold``.

    Returns ``(name, baseline_s, current_s, ratio)`` tuples, worst
    first.  A bench is judged only when present in both summaries and at
    least ``min_seconds`` on one side (sub-noise benches are skipped).
    """
    regressions = []
    for name, base_mean in baseline.items():
        cur_mean = current.get(name)
        if cur_mean is None:
            continue
        if base_mean < min_seconds and cur_mean < min_seconds:
            continue
        if base_mean <= 0:
            continue
        ratio = cur_mean / base_mean
        if ratio > 1.0 + threshold:
            regressions.append((name, base_mean, cur_mean, ratio))
    regressions.sort(key=lambda item: item[3], reverse=True)
    return regressions


def geomean_drift(
    baseline: Dict[str, float],
    current: Dict[str, float],
    min_seconds: float = 0.5,
) -> Optional[float]:
    """Geometric mean of the current/baseline ratios above the floor.

    > 1.0 means the suite got slower overall.  ``None`` when no bench is
    shared and above the noise floor.
    """
    logs = []
    for name, base_mean in baseline.items():
        cur_mean = current.get(name)
        if cur_mean is None or base_mean <= 0 or cur_mean <= 0:
            continue
        if base_mean < min_seconds and cur_mean < min_seconds:
            continue
        logs.append(math.log(cur_mean / base_mean))
    if not logs:
        return None
    return math.exp(sum(logs) / len(logs))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when the bench suite regresses past the thresholds."
    )
    parser.add_argument("--baseline", required=True, help="baseline timings JSON")
    parser.add_argument("--current", required=True, help="current timings JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed relative geomean regression (0.25 = +25%%)",
    )
    parser.add_argument(
        "--per-bench-threshold",
        type=float,
        default=1.5,
        help="hard per-bench gate: any single bench past this relative "
        "regression fails outright (1.5 = +150%%)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.5,
        help="ignore benches faster than this on both sides (noise floor)",
    )
    parser.add_argument(
        "--fallback",
        default=DEFAULT_FALLBACK,
        help="committed snapshot used when --baseline does not exist "
        "(default: the repo's BENCH_9.json)",
    )
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="exit 0 (with a notice) when neither the baseline file nor "
        "the fallback exists",
    )
    args = parser.parse_args(argv)
    if args.threshold <= 0:
        parser.error("--threshold must be > 0")
    if args.per_bench_threshold <= 0:
        parser.error("--per-bench-threshold must be > 0")

    try:
        baseline = load_bench_means(args.baseline)
    except FileNotFoundError:
        try:
            baseline = load_bench_means(args.fallback)
            print(
                f"no baseline at {args.baseline}; using committed fallback "
                f"{args.fallback}"
            )
        except (FileNotFoundError, ValueError):
            if args.allow_missing:
                print(
                    f"no baseline at {args.baseline} and no fallback at "
                    f"{args.fallback}; skipping the bench gate"
                )
                return 0
            print(f"error: baseline {args.baseline} not found", file=sys.stderr)
            return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        current = load_bench_means(args.current)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    shared = sorted(set(baseline) & set(current))
    new = sorted(set(current) - set(baseline))
    gone = sorted(set(baseline) - set(current))
    print(
        f"bench gate: {len(shared)} shared benches, geomean threshold "
        f"+{args.threshold:.0%}, per-bench hard gate "
        f"+{args.per_bench_threshold:.0%}, noise floor {args.min_seconds}s"
    )
    if new:
        print(f"  new benches (not gated): {', '.join(new)}")
    if gone:
        print(f"  benches missing from current run: {', '.join(gone)}")

    failed = False
    drift = geomean_drift(baseline, current, min_seconds=args.min_seconds)
    if drift is None:
        print("  geomean: no benches above the noise floor to compare")
    else:
        print(f"  geomean drift: {(drift - 1.0):+.1%}")
        if drift > 1.0 + args.threshold:
            failed = True
            print(
                f"  geomean regressed past the +{args.threshold:.0%} "
                "threshold"
            )

    regressions = check_regression(
        baseline,
        current,
        threshold=args.per_bench_threshold,
        min_seconds=args.min_seconds,
    )
    if regressions:
        failed = True
        print(f"  {len(regressions)} bench(es) regressed past the hard gate:")
        for name, base_mean, cur_mean, ratio in regressions:
            print(
                f"    {name}: {base_mean:.3f}s -> {cur_mean:.3f}s "
                f"({(ratio - 1.0):+.0%})"
            )
    if not failed:
        print("  no regressions past the thresholds")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
