"""Ablation: prefetching policies (Table 3 PREFETCH; §5 extension).

The paper ships PREFETCH=None and names prefetching as a planned
extension that influences performance "a lot".  This bench compares
none / one-ahead / cluster-span prefetch on the O2 configuration with a
tight cache: prefetching adds reads (some wasted) but converts future
random misses into cheap sequential transfers.
"""

from conftest import bench_replications, fmt_rows
from repro.core import build_database, run_replication
from repro.systems.o2 import o2_config


def run_ablation() -> str:
    base = o2_config(nc=50, no=8000, cache_mb=6, hotn=500)
    build_database(base.ocb)
    replications = bench_replications()
    rows = []
    for prefetch in ("none", "one_ahead", "cluster"):
        config = base.with_changes(prefetch=prefetch)
        ios = fetched = hits = elapsed = 0.0
        for r in range(replications):
            result = run_replication(config, seed=1 + r)
            ios += result.total_ios
            fetched += result.phase.prefetched_pages
            hits += result.phase.prefetch_hits
            elapsed += result.phase.elapsed_ms
        rows.append(
            [
                prefetch,
                f"{ios / replications:.0f}",
                f"{fetched / replications:.0f}",
                f"{hits / replications:.0f}",
                f"{elapsed / replications:.0f}",
            ]
        )
    return fmt_rows(
        "Ablation: prefetching policy (O2, 6 MB cache, NC=50/NO=8000)",
        ["prefetch", "mean I/Os", "prefetched", "prefetch hits", "elapsed ms"],
        rows,
    )


def test_bench_ablation_prefetch(regenerate):
    regenerate("ablation_prefetch", run_ablation)
