"""Regenerate paper Figure 7 — O2: mean I/Os vs number of instances (50 classes).

Same sweep as Figure 6 with the 50-class schema (bigger objects,
bigger base, more I/Os at every point).
"""

from conftest import bench_executor, bench_hotn, bench_replications
from repro.experiments.figures import figure7
from repro.experiments.report import format_series


def test_bench_figure7(regenerate):
    def run():
        series = figure7(
            replications=bench_replications(),
            hotn=bench_hotn(),
            executor=bench_executor(),
        )
        return format_series(series)

    regenerate("figure7", run)
