"""Ablation: clustering policies — none vs DSTC vs greedy static.

The paper's "ultimate goal is to compare different clustering
strategies, to determine which one performs best in a given set of
conditions" (§5).  This bench runs the §4.4 hot-traversal workload under
three Clustering Manager policies and reports post-reorganization usage
I/Os and the reorganization bill.

The usage-blind greedy partitioner moves *every* connected object —
orders of magnitude more overhead than DSTC's statistics-selected
clusters, for a payoff that only sometimes matches.

Unlike the Table 6 protocol (which keeps the cache warm across the
reorganization, as the paper's Texas runs did), this comparison empties
memory before each usage phase so the three policies are measured from
an equally cold start.
"""

from conftest import fmt_rows
from repro.core import VOODBSimulation, build_database
from repro.systems.dstc_experiment import (
    DSTC_EXPERIMENT_PARAMETERS,
    HIERARCHY_DEPTH,
    HIERARCHY_REF_TYPE,
    texas_dstc_config,
)


def run_policy(clustp: str, seed: int = 1) -> dict:
    config = texas_dstc_config(memory_mb=64).with_changes(clustp=clustp)
    kwargs = {}
    if clustp == "dstc":
        kwargs["dstc_parameters"] = DSTC_EXPERIMENT_PARAMETERS
    elif clustp == "greedy":
        kwargs["max_cluster_size"] = 50
    model = VOODBSimulation(config, seed=seed, clustering_kwargs=kwargs)
    pre = model.run_phase(
        config.ocb.hotn,
        workload="hierarchy",
        stream_label="usage",
        hierarchy_type=HIERARCHY_REF_TYPE,
        hierarchy_depth=HIERARCHY_DEPTH,
    )
    report = model.demand_clustering()
    model.memory.invalidate_all()  # cold start for the fair comparison
    post = model.run_phase(
        config.ocb.hotn,
        workload="hierarchy",
        stream_label="usage",
        hierarchy_type=HIERARCHY_REF_TYPE,
        hierarchy_depth=HIERARCHY_DEPTH,
    )
    return {
        "pre": pre.total_ios,
        "overhead": report.overhead_ios,
        "post": post.total_ios,
        "clusters": report.clusters,
    }


def run_ablation() -> str:
    build_database(texas_dstc_config().ocb)
    rows = []
    for clustp in ("none", "dstc", "greedy"):
        outcome = run_policy(clustp)
        gain = outcome["pre"] / outcome["post"] if outcome["post"] else float("inf")
        rows.append(
            [
                clustp,
                outcome["pre"],
                outcome["overhead"],
                outcome["post"],
                f"{gain:.2f}",
                outcome["clusters"],
            ]
        )
    return fmt_rows(
        "Ablation: clustering policy (Texas 64 MB, §4.4 workload)",
        ["policy", "pre I/Os", "overhead I/Os", "post I/Os", "gain", "clusters"],
        rows,
    )


def test_bench_ablation_clustering_policies(regenerate):
    regenerate("ablation_clustering_policies", run_ablation)
