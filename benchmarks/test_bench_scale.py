"""Bench: the users-vs-cost ramp of the flow-aggregated tier.

One bench walks the population ladder 10^2 -> 10^6 on the scale
scenarios' config (O2, NC=20, NO=2000, 300 hot transactions, think
time ``population * 25 ms`` so the offered load stays ~40 tps at every
rung) and publishes the deterministic per-rung summary — calibrated
rate, pilot iterations, transaction split, I/Os, throughput — under
``results/scale.txt``.  The point of the table is what does *not*
appear in it: the simulated work is population-independent, so the
file proves the tier's cost scales with transactions, not users.

Wall-clock seconds are machine facts, not simulation facts, so they
stay out of the golden: the per-rung timings are printed to stdout and
the bench's total lands in the ``VOODB_BENCH_JSON`` summary (the
``BENCH_9.json`` trajectory snapshot), where the CI bench-drift gate
watches them.
"""

import time

from repro.core.aggregation import clear_calibration_cache
from repro.core.model import run_replication
from repro.core.parameters import AggregationConfig
from repro.systems.o2 import o2_config

#: The population ladder, 10^2 -> 10^6 users.
POPULATIONS = (100, 1_000, 10_000, 100_000, 1_000_000)
PROBE_COHORT = 40
SEED = 1

HEADER = (
    "users",
    "think_s",
    "rate_tps",
    "iters",
    "converged",
    "agg_txns",
    "probe_txns",
    "total_ios",
    "throughput_tps",
)


def scale_config(population: int):
    """The scale scenarios' recipe at an arbitrary population rung."""
    return o2_config(
        nc=20,
        no=2000,
        cache_mb=2.0,
        hotn=300,
        thinktime=population * 25.0,
    ).with_changes(
        aggregation=AggregationConfig(
            population=population, probe_cohort=PROBE_COHORT
        )
    )


def format_scale_ramp() -> str:
    from conftest import fmt_rows

    rows = []
    for population in POPULATIONS:
        clear_calibration_cache()
        started = time.perf_counter()
        phase = run_replication(scale_config(population), seed=SEED).phase
        wall_s = time.perf_counter() - started
        # stdout only — wall clock is not deterministic content.
        print(f"population {population:>9,}: {wall_s:.2f} s wall")
        rows.append(
            (
                population,
                f"{population * 25.0 / 1000.0:g}",
                f"{phase.calibrated_rate_tps:.2f}",
                phase.calibration_iterations,
                "yes" if phase.calibration_converged else "no",
                phase.aggregate_transactions,
                phase.probe_transactions,
                phase.total_ios,
                f"{phase.throughput_tps:.2f}",
            )
        )
    return fmt_rows(
        "Flow-aggregated population ramp (O2, hotn=300, offered ~40 tps, "
        f"seed {SEED}):",
        list(HEADER),
        rows,
    )


def test_bench_scale(regenerate):
    regenerate("scale", format_scale_ramp)
