"""Bench: regenerate the scenario catalog's golden reports.

One bench per built-in scenario: each runs its pinned replication
protocol through the shared executor and publishes the same report
``python -m repro scenario run <name>`` prints, under
``results/scenario_<name>.txt``.  The CI drift gate then enforces that
every catalog entry stays deterministic byte-for-byte — across
executors, Python versions and kernel changes.

Unlike the figure/table benches, scenarios pin their own replication
count (``VOODB_REPLICATIONS`` is deliberately ignored) so the goldens
don't depend on the environment that regenerated them.
"""

import pytest

from conftest import bench_executor
from repro.experiments.report import format_scenario
from repro.scenarios import all_scenarios, run_scenario


@pytest.mark.parametrize("scenario", all_scenarios(), ids=lambda s: s.name)
def test_bench_scenario(regenerate, scenario):
    def regen() -> str:
        result = run_scenario(scenario, executor=bench_executor())
        return format_scenario(scenario, result)

    regenerate(scenario.golden_name, regen)
