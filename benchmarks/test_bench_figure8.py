"""Regenerate paper Figure 8 — O2: mean I/Os vs server cache size.

Sweeps the cache over {8..64} MB at NC=50/NO=20000; the paper's
claim is a roughly linear degradation once the ~28 MB base stops
fitting, flat once it fits.
"""

from conftest import bench_executor, bench_hotn, bench_replications
from repro.experiments.figures import figure8
from repro.experiments.report import format_series


def test_bench_figure8(regenerate):
    def run():
        series = figure8(
            replications=bench_replications(),
            hotn=bench_hotn(),
            executor=bench_executor(),
        )
        return format_series(series)

    regenerate("figure8", run)
