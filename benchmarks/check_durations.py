"""Slow-test budget gate: fail CI when a single test exceeds its budget.

``pytest --durations=N`` reports the slowest tests but never fails on
them, so suite latency creeps until somebody notices.  This gate parses
the JUnit XML pytest already writes (``--junitxml``) and exits non-zero
when any test case runs longer than ``--budget`` seconds, or when the
whole suite exceeds ``--total-budget``.

Usage (what the CI matrix job runs)::

    python -m pytest --junitxml=junit.xml --durations=20 ...
    python benchmarks/check_durations.py --junit junit.xml --budget 60

The JUnit time attribute covers setup+call+teardown per test case —
exactly the wall-clock a contributor waits on — and class-scoped
fixture time is billed to the first test of the class, which is the
right place to flag it.
"""

from __future__ import annotations

import argparse
import sys
import xml.etree.ElementTree as ElementTree
from typing import List, Tuple


def load_case_times(path: str) -> List[Tuple[str, float]]:
    """``(test id, seconds)`` for every test case in a JUnit XML file."""
    try:
        root = ElementTree.parse(path).getroot()
    except ElementTree.ParseError as exc:
        raise ValueError(f"{path}: not valid JUnit XML ({exc})") from None
    cases: List[Tuple[str, float]] = []
    for case in root.iter("testcase"):
        name = case.get("name", "?")
        classname = case.get("classname", "")
        label = f"{classname}::{name}" if classname else name
        try:
            seconds = float(case.get("time", "0"))
        except ValueError:
            continue
        cases.append((label, seconds))
    if not cases:
        raise ValueError(f"{path}: no test cases found")
    return cases


def check_durations(
    cases: List[Tuple[str, float]],
    budget: float,
    total_budget: float = 0.0,
    top: int = 10,
) -> List[str]:
    """Problems found (empty = within budget); prints a short report."""
    problems: List[str] = []
    slowest = sorted(cases, key=lambda item: item[1], reverse=True)[:top]
    print(f"slowest {len(slowest)} of {len(cases)} tests:")
    for label, seconds in slowest:
        marker = "  OVER" if budget > 0 and seconds > budget else ""
        print(f"  {seconds:8.2f}s  {label}{marker}")
    if budget > 0:
        for label, seconds in cases:
            if seconds > budget:
                problems.append(
                    f"{label}: {seconds:.2f}s exceeds the {budget:.0f}s "
                    f"per-test budget"
                )
    total = sum(seconds for _label, seconds in cases)
    print(f"suite total: {total:.2f}s")
    if total_budget > 0 and total > total_budget:
        problems.append(
            f"suite total {total:.2f}s exceeds the {total_budget:.0f}s budget"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--junit", required=True, help="JUnit XML from pytest")
    parser.add_argument(
        "--budget",
        type=float,
        default=60.0,
        help="per-test wall-clock budget in seconds (0 = report only)",
    )
    parser.add_argument(
        "--total-budget",
        type=float,
        default=0.0,
        help="whole-suite budget in seconds (0 = no limit)",
    )
    parser.add_argument(
        "--top", type=int, default=10, help="how many slowest tests to print"
    )
    args = parser.parse_args(argv)
    try:
        cases = load_case_times(args.junit)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    problems = check_durations(cases, args.budget, args.total_budget, args.top)
    for problem in problems:
        print(f"BUDGET EXCEEDED: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
