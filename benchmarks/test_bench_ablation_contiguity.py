"""Ablation: the Figure 5 contiguous-page disk shortcut.

The "Access Disk" rule skips search+latency when the requested page
follows the previously loaded one.  Two measurements:

* **transaction processing** — OCB's traversals jump across the base,
  so consecutive page numbers are rare and the shortcut buys almost
  nothing (the table's near-identical elapsed times are the finding);
* **bulk reorganization** — DSTC's reorganization reads sorted batches
  and writes freshly appended (hence contiguous) cluster pages, where
  the shortcut collapses the time bill by an order of magnitude.

I/O *counts* are identical in both cases by construction — contiguity
is a time optimization, which is exactly how Figure 5 draws it.
"""

from conftest import bench_replications, fmt_rows
from repro.core import VOODBSimulation, build_database, run_replication
from repro.despy import MS_PER_TICK
from repro.systems.dstc_experiment import (
    DSTC_EXPERIMENT_PARAMETERS,
    HIERARCHY_DEPTH,
    HIERARCHY_REF_TYPE,
    texas_dstc_config,
)
from repro.systems.o2 import o2_config


def transaction_rows(replications: int) -> list:
    base = o2_config(nc=50, no=8000, cache_mb=6, hotn=500)
    build_database(base.ocb)
    rows = []
    for enabled in (True, False):
        config = base.with_changes(sequential_optimization=enabled)
        ios = seq = elapsed = 0.0
        for r in range(replications):
            result = run_replication(config, seed=1 + r)
            ios += result.total_ios
            seq += result.phase.sequential_reads
            elapsed += result.phase.elapsed_ms
        rows.append(
            [
                "transactions",
                "on" if enabled else "off",
                f"{ios / replications:.0f}",
                f"{seq / replications:.0f}",
                f"{elapsed / replications:.0f}",
            ]
        )
    return rows


def reorganization_rows() -> list:
    rows = []
    for enabled in (True, False):
        config = texas_dstc_config(memory_mb=64).with_changes(
            sequential_optimization=enabled
        )
        model = VOODBSimulation(
            config,
            seed=1,
            clustering_kwargs={"dstc_parameters": DSTC_EXPERIMENT_PARAMETERS},
        )
        model.run_phase(
            config.ocb.hotn,
            workload="hierarchy",
            stream_label="usage",
            hierarchy_type=HIERARCHY_REF_TYPE,
            hierarchy_depth=HIERARCHY_DEPTH,
        )
        before = model.sim.now
        seq_before = model.io.sequential_accesses
        report = model.demand_clustering()
        rows.append(
            [
                "reorganization",
                "on" if enabled else "off",
                f"{report.overhead_ios}",
                f"{model.io.sequential_accesses - seq_before}",
                f"{(model.sim.now - before) * MS_PER_TICK:.0f}",
            ]
        )
    return rows


def run_ablation() -> str:
    rows = transaction_rows(bench_replications()) + reorganization_rows()
    return fmt_rows(
        "Ablation: Figure 5 contiguity shortcut",
        ["workload", "shortcut", "I/Os", "sequential", "elapsed ms"],
        rows,
    )


def test_bench_ablation_contiguity(regenerate):
    regenerate("ablation_contiguity", run_ablation)
