"""Ablation: random hazards (the §5 failures extension module).

"VOODB could also take into account random hazards, like benign or
serious system failures, in order to observe how the studied OODB
behaves and recovers in critical conditions."  This bench injects
transient I/O faults and system crashes of increasing violence into the
O2 configuration and reports the damage: I/Os (crashes cool the cache),
throughput and downtime.
"""

from conftest import fmt_rows
from repro.core import FailureConfig, build_database, run_replication
from repro.systems.o2 import o2_config

SCENARIOS = (
    ("healthy", FailureConfig()),
    ("transients", FailureConfig(transient_mtbf_ms=500.0)),
    ("rare crashes", FailureConfig(crash_mtbf_ms=60_000.0)),
    ("crash storm", FailureConfig(crash_mtbf_ms=8_000.0)),
    (
        "both",
        FailureConfig(transient_mtbf_ms=500.0, crash_mtbf_ms=8_000.0),
    ),
)


def run_ablation() -> str:
    base = o2_config(nc=20, no=4000, hotn=400)
    build_database(base.ocb)
    rows = []
    for label, failures in SCENARIOS:
        config = base.with_changes(failures=failures)
        result = run_replication(config, seed=1)
        phase = result.phase
        rows.append(
            [
                label,
                result.total_ios,
                phase.transient_faults,
                phase.crashes,
                f"{phase.downtime_ms:.0f}",
                f"{phase.throughput_tps:.2f}",
            ]
        )
    return fmt_rows(
        "Ablation: failure injection (O2, NC=20/NO=4000, HOTN=400)",
        ["scenario", "I/Os", "transients", "crashes", "downtime ms", "txn/s"],
        rows,
    )


def test_bench_ablation_failures(regenerate):
    regenerate("ablation_failures", run_ablation)
