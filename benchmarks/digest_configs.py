"""Kernel-equivalence digests: 15 pinned configs, one hex digest each.

The PR-5/PR-6 equivalence methodology: run one replication of each
pinned configuration, flatten its full metric dictionary (kernel
counters included) to canonical JSON, and hash it.  Two kernels are
*equivalent* exactly when every digest matches — the check that lets
the compiled (mypyc) kernel, the pure-Python kernel, and any future
event-list rewrite be swapped with confidence::

    # pure-Python side
    PYTHONPATH=src python benchmarks/digest_configs.py --out pure.json
    # compiled side (after pip install -e .[compiled] with VOODB_MYPYC=1)
    VOODB_COMPILED=1 PYTHONPATH=src python benchmarks/digest_configs.py \
        --compare pure.json

``--compare`` exits 1 on the first mismatch, printing both digests per
config.  The config set deliberately crosses every subsystem the tick
refactor touched: system classes, replacement policies, clustering,
cluster topologies, virtual memory, prefetching, failure injection,
lock contention and write traffic.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys

from repro.core import run_replication
from repro.core.failures import FailureConfig
from repro.core.parameters import ClusterConfig, SystemClass, VOODBConfig
from repro.ocb.parameters import OCBConfig
from repro.systems.o2 import o2_config
from repro.systems.texas import texas_config

#: Transactions per pinned run: small enough for seconds-per-config,
#: large enough to exercise reorganizations, evictions and contention.
_HOTN = 300


def _ocb(**overrides) -> OCBConfig:
    overrides.setdefault("hotn", _HOTN)
    return OCBConfig(nc=20, no=5000, **overrides)


def pinned_configs() -> dict:
    """The 15 pinned (name -> config) equivalence points."""
    base = VOODBConfig(ocb=_ocb())
    return {
        "default": base,
        # nusers > multilvl so the multiprogramming cap actually binds.
        "mpl-2": base.with_changes(multilvl=2, nusers=8),
        "object-server": base.with_changes(sysclass=SystemClass.OBJECT_SERVER),
        "db-server": base.with_changes(sysclass=SystemClass.DB_SERVER),
        "lfu": base.with_changes(pgrep="LFU"),
        "mru": base.with_changes(pgrep="MRU"),
        "fifo": base.with_changes(pgrep="FIFO"),
        "prefetch-cluster": base.with_changes(prefetch="cluster"),
        "writes": VOODBConfig(ocb=_ocb(pwrite=0.3)),
        "contended-locks": VOODBConfig(
            ocb=_ocb(pwrite=0.3), multilvl=10, nusers=10
        ),
        "timed-locks": base.with_changes(getlock=5.0, rellock=2.5),
        "failures": base.with_changes(
            failures=FailureConfig(
                transient_mtbf_ms=500.0, crash_mtbf_ms=8_000.0
            )
        ),
        "cluster-3": base.with_changes(
            cluster=ClusterConfig(servers=3, placement="hash")
        ),
        "texas-vm": texas_config(nc=20, no=5000, memory_mb=16, hotn=_HOTN),
        "o2-dstc": o2_config(
            nc=20, no=5000, cache_mb=4, hotn=_HOTN
        ).with_changes(clustp="dstc"),
    }


def digest_config(config: VOODBConfig, seed: int = 1) -> str:
    """Hex digest of one replication's complete metric dictionary."""
    metrics = run_replication(config, seed=seed).to_metrics()
    canonical = json.dumps(metrics, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def run_digests(seed: int = 1) -> dict:
    digests = {}
    for name, config in pinned_configs().items():
        digests[name] = digest_config(config, seed=seed)
        print(f"{name:>18}  {digests[name]}")
    return digests


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Hex-digest the 15 pinned kernel-equivalence configs."
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", help="write the digests JSON here")
    parser.add_argument(
        "--compare",
        help="digests JSON from another kernel; exit 1 on any mismatch",
    )
    args = parser.parse_args(argv)

    from repro.despy import KERNEL_BACKEND

    print(f"kernel backend: {KERNEL_BACKEND}")
    digests = run_digests(seed=args.seed)
    if args.out:
        payload = {"seed": args.seed, "digests": digests}
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"digests written to {args.out}")
    if args.compare:
        with open(args.compare, encoding="utf-8") as handle:
            other = json.load(handle)["digests"]
        mismatched = sorted(
            name
            for name in set(digests) | set(other)
            if digests.get(name) != other.get(name)
        )
        if mismatched:
            print(f"\nFAIL: {len(mismatched)} digest mismatch(es):")
            for name in mismatched:
                print(f"  {name}:")
                print(f"    this run: {digests.get(name, '<missing>')}")
                print(f"    compare:  {other.get(name, '<missing>')}")
            return 1
        print(f"\nOK: all {len(digests)} digests match {args.compare}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
