"""Ablation: system classes (Table 3 SYSCLASS; §3.3 genericity).

Reruns one workload under all four Client-Server organizations with a
*finite* network (1 MB/s, the Table 3 default — the O2 validation used
+inf) to expose what the organization itself costs: message counts,
bytes shipped, and response time.  Server-side disk I/Os stay identical
by construction, which is the §3.3 design point.
"""

from conftest import bench_replications, fmt_rows
from repro.core import SystemClass, VOODBConfig, build_database, run_replication
from repro.ocb import OCBConfig


def run_ablation() -> str:
    ocb = OCBConfig(nc=20, no=4000, hotn=300)
    build_database(ocb)
    replications = bench_replications()
    rows = []
    for sysclass in SystemClass:
        config = VOODBConfig(
            sysclass=sysclass, netthru=1.0, buffsize=1024, ocb=ocb
        )
        ios = msgs = mbytes = resp = 0.0
        for r in range(replications):
            result = run_replication(config, seed=1 + r)
            ios += result.total_ios
            msgs += result.phase.network_messages
            mbytes += result.phase.network_bytes
            resp += result.mean_response_time_ms
        rows.append(
            [
                sysclass.value,
                f"{ios / replications:.0f}",
                f"{msgs / replications:.0f}",
                f"{mbytes / replications / 2**20:.2f}",
                f"{resp / replications:.2f}",
            ]
        )
    return fmt_rows(
        "Ablation: system class at 1 MB/s network (NC=20/NO=4000, HOTN=300)",
        ["system class", "mean I/Os", "messages", "MB shipped", "resp ms"],
        rows,
    )


def test_bench_ablation_architectures(regenerate):
    regenerate("ablation_architectures", run_ablation)
