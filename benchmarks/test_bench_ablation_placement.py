"""Ablation: initial placement (Table 3 INITPL).

Sequential (creation order) vs Optimized Sequential (class extents
contiguous, the Table 4 default for both O2 and Texas).  With OCB's
object-locality window, extent contiguity translates reference locality
into page proximity — fewer distinct pages per traversal, fewer I/Os.
"""

from conftest import bench_replications, fmt_rows
from repro.core import build_database, run_replication
from repro.systems.o2 import o2_config
from repro.systems.texas import texas_config


def run_ablation() -> str:
    replications = bench_replications()
    rows = []
    for system, base in (
        ("O2", o2_config(nc=50, no=8000, hotn=500)),
        ("Texas", texas_config(nc=50, no=8000, hotn=500)),
    ):
        build_database(base.ocb)
        for initpl in ("sequential", "optimized_sequential"):
            config = base.with_changes(initpl=initpl)
            ios = seq = 0.0
            for r in range(replications):
                result = run_replication(config, seed=1 + r)
                ios += result.total_ios
                seq += result.phase.sequential_reads
            rows.append(
                [
                    system,
                    initpl,
                    f"{ios / replications:.0f}",
                    f"{seq / replications:.0f}",
                ]
            )
    return fmt_rows(
        "Ablation: initial placement (NC=50/NO=8000, HOTN=500)",
        ["system", "placement", "mean I/Os", "sequential reads"],
        rows,
    )


def test_bench_ablation_placement(regenerate):
    regenerate("ablation_placement", run_ablation)
