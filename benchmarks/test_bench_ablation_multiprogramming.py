"""Ablation: users and multiprogramming level (Table 3 MULTILVL/NUSERS).

The validation experiments run a single user; Table 1's database
scheduler only matters beyond that.  This bench sweeps concurrent users
at two multiprogramming levels and reports throughput, lock waits and
response time — the concurrency half of VOODB the paper's §5 extensions
(concurrency control) would build on.
"""

from conftest import fmt_rows
from repro.core import build_database, run_replication
from repro.systems.o2 import o2_config

USER_SWEEP = (1, 2, 4, 8)
MPL_SWEEP = (1, 10)


def run_ablation() -> str:
    rows = []
    for multilvl in MPL_SWEEP:
        for nusers in USER_SWEEP:
            config = o2_config(nc=20, no=4000, hotn=240).with_changes(
                nusers=nusers, multilvl=multilvl
            )
            build_database(config.ocb)
            result = run_replication(config, seed=1)
            phase = result.phase
            rows.append(
                [
                    multilvl,
                    nusers,
                    f"{phase.throughput_tps:.2f}",
                    phase.lock_waits,
                    f"{phase.lock_wait_time_ms:.0f}",
                    f"{result.mean_response_time_ms:.1f}",
                ]
            )
    return fmt_rows(
        "Ablation: multiprogramming (O2, NC=20/NO=4000, HOTN=240)",
        ["MPL", "users", "txn/s", "lock waits", "wait ms", "resp ms"],
        rows,
    )


def test_bench_ablation_multiprogramming(regenerate):
    regenerate("ablation_multiprogramming", run_ablation)
