"""Regenerate paper Table 7 — DSTC clustering statistics.

Cluster count and mean objects per cluster from the same §4.4 run as
Table 6 (the paper validates DSTC's *behaviour*, not only its I/Os, by
checking the simulated clusters match the real system's).
"""

from conftest import bench_executor, bench_replications
from repro.experiments.report import format_table7
from repro.experiments.tables import table7


def test_bench_table7(regenerate):
    def run():
        result = table7(
            replications=bench_replications(), executor=bench_executor()
        )
        return format_table7(result)

    regenerate("table7", run)
