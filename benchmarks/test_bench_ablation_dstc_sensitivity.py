"""Ablation: DSTC parameter sensitivity (the paper's §5 future work).

"Future work [...] is first performing intensive simulation experiments
with DSTC.  It would be interesting to know the right value for DSTC's
parameters in various conditions."  This bench sweeps the selection
threshold Tfa and the observation period around the calibrated §4.4
values and reports the resulting gain, overhead and cluster statistics.
"""

from conftest import fmt_rows
from repro.clustering import DSTCParameters
from repro.core import VOODBSimulation, build_database
from repro.systems.dstc_experiment import (
    DSTC_EXPERIMENT_PARAMETERS,
    HIERARCHY_DEPTH,
    HIERARCHY_REF_TYPE,
    texas_dstc_config,
)

TFA_SWEEP = (2.0, 4.0, 8.0)
PERIOD_SWEEP = (250, 1000)


def run_protocol(params: DSTCParameters, seed: int = 1) -> dict:
    config = texas_dstc_config(memory_mb=64)
    model = VOODBSimulation(
        config, seed=seed, clustering_kwargs={"dstc_parameters": params}
    )
    pre = model.run_phase(
        config.ocb.hotn,
        workload="hierarchy",
        stream_label="usage",
        hierarchy_type=HIERARCHY_REF_TYPE,
        hierarchy_depth=HIERARCHY_DEPTH,
    )
    report = model.demand_clustering()
    post = model.run_phase(
        config.ocb.hotn,
        workload="hierarchy",
        stream_label="usage",
        hierarchy_type=HIERARCHY_REF_TYPE,
        hierarchy_depth=HIERARCHY_DEPTH,
    )
    # Cold re-run: empties memory so the gain reflects placement quality
    # alone (the warm Table 6 protocol under-reports poor cluster
    # coverage, since un-reorganized pages stay cached).
    model.memory.invalidate_all()
    cold = model.run_phase(
        config.ocb.hotn,
        workload="hierarchy",
        stream_label="usage",
        hierarchy_type=HIERARCHY_REF_TYPE,
        hierarchy_depth=HIERARCHY_DEPTH,
    )
    return {
        "gain": pre.total_ios / post.total_ios if post.total_ios else float("inf"),
        "cold_gain": pre.total_ios / cold.total_ios if cold.total_ios else float("inf"),
        "overhead": report.overhead_ios,
        "clusters": report.clusters,
        "objects": report.clustered_objects,
    }


def run_ablation() -> str:
    build_database(texas_dstc_config().ocb)
    rows = []
    for period in PERIOD_SWEEP:
        for tfa in TFA_SWEEP:
            params = DSTCParameters(
                observation_period=period,
                tfa=tfa,
                tfe=DSTC_EXPERIMENT_PARAMETERS.tfe,
                tfc=DSTC_EXPERIMENT_PARAMETERS.tfc,
                w=DSTC_EXPERIMENT_PARAMETERS.w,
                max_cluster_size=DSTC_EXPERIMENT_PARAMETERS.max_cluster_size,
            )
            outcome = run_protocol(params)
            rows.append(
                [
                    period,
                    f"{tfa:.0f}",
                    f"{outcome['gain']:.2f}",
                    f"{outcome['cold_gain']:.2f}",
                    outcome["overhead"],
                    outcome["clusters"],
                    outcome["objects"],
                ]
            )
    return fmt_rows(
        "Ablation: DSTC sensitivity (Texas 64 MB, §4.4 workload)",
        [
            "period",
            "tfa",
            "warm gain",
            "cold gain",
            "overhead I/Os",
            "clusters",
            "clustered objects",
        ],
        rows,
    )


def test_bench_ablation_dstc_sensitivity(regenerate):
    regenerate("ablation_dstc_sensitivity", run_ablation)
