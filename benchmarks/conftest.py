"""Shared plumbing for the benchmark harness.

Every bench regenerates one paper table or figure: it runs the real
experiment (replications included), prints the paper-vs-reproduction
rows, and writes the same report under ``results/``.  pytest-benchmark
wraps the run in ``benchmark.pedantic(rounds=1)`` so the experiment
executes exactly once while its wall-clock time is still recorded.

The benches run on the experiment engine, so the executor knobs apply:
with ``VOODB_JOBS=4`` each regeneration fans its replication jobs over
four worker processes, and with ``VOODB_CACHE_DIR`` set a re-run reuses
every already-computed ``(config, seed)`` point.  Statistics are
bit-identical across executors for the same seeds.

Scaling knobs (environment):

* ``VOODB_REPLICATIONS`` — replications per experiment point
  (default 3 for benches; the paper used 100);
* ``VOODB_BENCH_HOTN`` — transactions per replication (default 1000,
  the Table 5 value);
* ``VOODB_JOBS`` — worker processes per experiment (default 1 = serial);
* ``VOODB_CACHE_DIR`` — on-disk replication cache directory (unset =
  recompute everything).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.executor import make_executor

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def bench_replications() -> int:
    """Replications per point for benches (smaller default than tests)."""
    return int(os.environ.get("VOODB_REPLICATIONS", "3"))


def bench_hotn() -> int:
    """Transactions per replication (Table 5 default: 1000)."""
    return int(os.environ.get("VOODB_BENCH_HOTN", "1000"))


def bench_executor():
    """The executor benches share: ``VOODB_JOBS`` workers (default 1 =
    serial) with a ``VOODB_CACHE_DIR`` replication cache when set."""
    return make_executor()


def publish(name: str, report: str) -> None:
    """Print the regenerated rows and persist them under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(report + "\n", encoding="utf-8")
    print()
    print(report)


def fmt_rows(title: str, header: list, rows: list) -> str:
    """Small aligned-table formatter for the ablation benches."""
    table = [header] + [[str(c) for c in row] for row in rows]
    widths = [max(len(str(r[i])) for r in table) for i in range(len(header))]
    lines = [title]
    for row in table:
        lines.append("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@pytest.fixture
def regenerate(benchmark):
    """Run ``fn`` exactly once under timing; print/persist its report.

    Usage::

        def test_bench_figure6(regenerate):
            regenerate("figure6", lambda: format_series(figure6(...)))
    """

    def _run(name: str, fn):
        report = benchmark.pedantic(fn, rounds=1, iterations=1)
        publish(name, report)
        return report

    return _run
