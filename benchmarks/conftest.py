"""Shared plumbing for the benchmark harness.

Every bench regenerates one paper table or figure: it runs the real
experiment (replications included), prints the paper-vs-reproduction
rows, and writes the same report under ``results/``.  pytest-benchmark
wraps the run in ``benchmark.pedantic(rounds=1)`` so the experiment
executes exactly once while its wall-clock time is still recorded.

The benches run on the experiment engine, so the executor knobs apply:
with ``VOODB_JOBS=4`` each regeneration fans its replication jobs over
four worker processes, and with ``VOODB_CACHE_DIR`` set a re-run reuses
every already-computed ``(config, seed)`` point.  Statistics are
bit-identical across executors for the same seeds.

Scaling knobs (environment):

* ``VOODB_REPLICATIONS`` — replications per experiment point
  (default 3 for benches; the paper used 100);
* ``VOODB_BENCH_HOTN`` — transactions per replication (default 1000,
  the Table 5 value);
* ``VOODB_JOBS`` — worker processes per experiment (default 1 = serial);
* ``VOODB_CACHE_DIR`` — on-disk replication cache directory (unset =
  recompute everything);
* ``VOODB_BENCH_JSON`` — path to write a machine-readable timing
  summary (per-bench wall seconds + suite total) at session end, the
  format snapshotted in ``BENCH_2.json``.  Unset = no file.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments.executor import make_executor

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: per-bench wall-clock seconds collected by the ``regenerate`` fixture,
#: exported by ``pytest_sessionfinish`` when ``VOODB_BENCH_JSON`` is set.
_TIMINGS: dict = {}


def bench_replications() -> int:
    """Replications per point for benches (smaller default than tests)."""
    return int(os.environ.get("VOODB_REPLICATIONS", "3"))


def bench_hotn() -> int:
    """Transactions per replication (Table 5 default: 1000)."""
    return int(os.environ.get("VOODB_BENCH_HOTN", "1000"))


def bench_executor():
    """The executor benches share: ``VOODB_JOBS`` workers (default 1 =
    serial) with a ``VOODB_CACHE_DIR`` replication cache when set."""
    return make_executor()


def publish(name: str, report: str) -> None:
    """Print the regenerated rows and persist them under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(report + "\n", encoding="utf-8")
    print()
    print(report)


def fmt_rows(title: str, header: list, rows: list) -> str:
    """Small aligned-table formatter for the ablation benches."""
    table = [header] + [[str(c) for c in row] for row in rows]
    widths = [max(len(str(r[i])) for r in table) for i in range(len(header))]
    lines = [title]
    for row in table:
        lines.append("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@pytest.fixture
def regenerate(benchmark):
    """Run ``fn`` exactly once under timing; print/persist its report.

    Usage::

        def test_bench_figure6(regenerate):
            regenerate("figure6", lambda: format_series(figure6(...)))
    """

    def _run(name: str, fn):
        started = time.perf_counter()
        report = benchmark.pedantic(fn, rounds=1, iterations=1)
        _TIMINGS[name] = time.perf_counter() - started
        publish(name, report)
        return report

    return _run


def pytest_sessionfinish(session, exitstatus):
    """Write the ``VOODB_BENCH_JSON`` timing summary, if requested.

    The file is the perf-trajectory record: per-bench wall seconds plus
    the suite total, in the same shape as the committed ``BENCH_2.json``
    snapshot, so successive PRs can be compared with ``json.load`` and a
    division.
    """
    path = os.environ.get("VOODB_BENCH_JSON")
    if not path or not _TIMINGS:
        return
    summary = {
        "total_wall_s": round(sum(_TIMINGS.values()), 3),
        "benches": {name: round(secs, 3) for name, secs in sorted(_TIMINGS.items())},
        "replications": bench_replications(),
        "hotn": bench_hotn(),
        "jobs": os.environ.get("VOODB_JOBS", "1"),
    }
    Path(path).write_text(json.dumps(summary, indent=2) + "\n", encoding="utf-8")
