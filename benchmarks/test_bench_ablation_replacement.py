"""Ablation: buffer page replacement strategies (Table 3 PGREP).

Table 3 makes the replacement strategy a first-class parameter and §5
lists the shipped set (RANDOM, FIFO, LFU, LRU-K, CLOCK, GCLOCK...).
This bench reruns the O2 configuration — cache deliberately smaller than
the base so the policy actually matters — once per policy and reports
mean I/Os, hit rate and elapsed simulated time.
"""

from conftest import bench_replications, fmt_rows
from repro.core import build_database, run_replication
from repro.systems.o2 import o2_config

POLICIES = ("LRU", "LRU-2", "CLOCK", "GCLOCK", "FIFO", "LFU", "MRU", "RANDOM")


def run_ablation() -> str:
    base = o2_config(nc=50, no=8000, cache_mb=6, hotn=500)
    build_database(base.ocb)
    replications = bench_replications()
    rows = []
    for policy in POLICIES:
        config = base.with_changes(pgrep=policy)
        ios, hit, elapsed = 0.0, 0.0, 0.0
        for r in range(replications):
            result = run_replication(config, seed=1 + r)
            ios += result.total_ios
            hit += result.hit_rate
            elapsed += result.phase.elapsed_ms
        rows.append(
            [
                policy,
                f"{ios / replications:.1f}",
                f"{hit / replications:.3f}",
                f"{elapsed / replications:.0f}",
            ]
        )
    rows.sort(key=lambda r: float(r[1]))
    return fmt_rows(
        "Ablation: page replacement policy (O2, 6 MB cache, NC=50/NO=8000)",
        ["policy", "mean I/Os", "hit rate", "elapsed ms"],
        rows,
    )


def test_bench_ablation_replacement(regenerate):
    regenerate("ablation_replacement", run_ablation)
