"""Interleaved A/B benchmark comparison (the PR-2 methodology, as a tool).

Runs the benchmark suite N times on each of two *sides*, strictly
alternating A, B, A, B, ... so slow load drift on a shared machine
cancels out of the ratio, then reports the per-bench mean wall seconds
of both sides, their ratio, and the suite totals.

A side is either a **git ref** (checked out into a temporary worktree;
the literal ``WORKTREE`` means the current working tree, uncommitted
changes included) or a set of **environment flags** applied to the
current tree — so the same tool answers both "is this PR faster than
main?" and "is kernel flag X faster than flag Y?"::

    # HEAD~1 vs the current working tree, 3 interleaved pairs
    python benchmarks/ab_compare.py --refs HEAD~1 WORKTREE -n 3

    # serial vs 4-way parallel executor on the current tree
    python benchmarks/ab_compare.py --envs VOODB_JOBS=1 VOODB_JOBS=4

Per-bench timings come from the ``VOODB_BENCH_JSON`` summary the bench
conftest writes (the same shape ``check_regression.py`` reads and CI
uploads).  Benches faster than ``--min-seconds`` on both sides are
reported but excluded from the headline ratio — they are scheduler noise
on shared runners.

The JSON report (``--out``) records the raw per-run timings of every
bench so a reviewer can recompute any statistic; CI uploads it as an
artifact next to the plain bench timings.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Sentinel ref meaning "the current working tree, as it is on disk".
WORKTREE = "WORKTREE"


class Side:
    """One side of the comparison: a source tree plus env overrides."""

    def __init__(self, label: str, root: Path, env: Optional[dict] = None):
        self.label = label
        self.root = root
        self.env = dict(env or {})
        #: bench name -> list of wall seconds, one per run
        self.runs: Dict[str, List[float]] = {}
        self.totals: List[float] = []

    def record(self, timings: Dict[str, float]) -> None:
        for name, secs in timings.items():
            self.runs.setdefault(name, []).append(secs)
        self.totals.append(sum(timings.values()))

    def means(self) -> Dict[str, float]:
        return {
            name: sum(vals) / len(vals)
            for name, vals in self.runs.items()
            if vals
        }


def _run_suite(side: Side, bench_args: List[str], quiet: bool) -> Dict[str, float]:
    """One full bench-suite run on a side; returns per-bench seconds."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        bench_json = handle.name
    env = os.environ.copy()
    env.update(side.env)
    env["VOODB_BENCH_JSON"] = bench_json
    src = str(side.root / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    cmd = [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider"]
    cmd += bench_args or ["benchmarks/"]
    try:
        proc = subprocess.run(
            cmd,
            cwd=side.root,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout.decode(errors="replace"))
            raise SystemExit(
                f"bench run failed on side {side.label!r} "
                f"(exit {proc.returncode})"
            )
        if not quiet:
            tail = proc.stdout.decode(errors="replace").strip().splitlines()
            print(f"    {tail[-1] if tail else '(no output)'}")
        with open(bench_json, encoding="utf-8") as fh:
            payload = json.load(fh)
        return {str(k): float(v) for k, v in payload["benches"].items()}
    finally:
        try:
            os.unlink(bench_json)
        except OSError:
            pass


def _make_ref_side(ref: str, tmpdir: Path) -> Side:
    if ref == WORKTREE:
        return Side("worktree", REPO_ROOT)
    dest = tmpdir / f"ref-{ref.replace('/', '_')}"
    subprocess.run(
        ["git", "worktree", "add", "--detach", str(dest), ref],
        cwd=REPO_ROOT,
        check=True,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    return Side(ref, dest)


def _cleanup_ref_side(side: Side) -> None:
    if side.root != REPO_ROOT:
        subprocess.run(
            ["git", "worktree", "remove", "--force", str(side.root)],
            cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        shutil.rmtree(side.root, ignore_errors=True)


def _parse_env_side(spec: str) -> Side:
    env = {}
    for assignment in spec.split(","):
        key, sep, value = assignment.partition("=")
        if not sep or not key:
            raise SystemExit(f"bad env spec {spec!r}; expected KEY=VALUE[,...]")
        env[key.strip()] = value.strip()
    return Side(spec, REPO_ROOT, env)


def geomean_ratio(a: Side, b: Side, min_seconds: float) -> Optional[float]:
    """Geometric mean of the per-bench A/B ratios above the noise floor.

    The headline number: > 1.0 means side B is faster.  A geomean (of
    ratios, not a ratio of totals) weights every bench equally, so one
    long bench cannot mask regressions — or fake speedups — in the
    others.  ``None`` when no bench clears the floor on either side.
    """
    means_a, means_b = a.means(), b.means()
    logs = []
    for name in set(means_a) & set(means_b):
        ma, mb = means_a[name], means_b[name]
        if (ma < min_seconds and mb < min_seconds) or ma <= 0 or mb <= 0:
            continue
        logs.append(math.log(ma / mb))
    if not logs:
        return None
    return math.exp(sum(logs) / len(logs))


def format_report(a: Side, b: Side, min_seconds: float) -> str:
    """Aligned per-bench table: mean A, mean B, ratio, noise marker."""
    means_a, means_b = a.means(), b.means()
    shared = sorted(set(means_a) & set(means_b))
    rows = [["bench", f"{a.label}(s)", f"{b.label}(s)", "ratio", ""]]
    gated_a = gated_b = 0.0
    for name in shared:
        ma, mb = means_a[name], means_b[name]
        noisy = ma < min_seconds and mb < min_seconds
        if not noisy:
            gated_a += ma
            gated_b += mb
        ratio = ma / mb if mb else float("inf")
        rows.append(
            [name, f"{ma:.3f}", f"{mb:.3f}", f"{ratio:.2f}x",
             "(noise floor)" if noisy else ""]
        )
    total_a = sum(means_a[n] for n in shared)
    total_b = sum(means_b[n] for n in shared)
    rows.append(["TOTAL", f"{total_a:.3f}", f"{total_b:.3f}",
                 f"{total_a / total_b:.2f}x" if total_b else "-", ""])
    if gated_b and (gated_a, gated_b) != (total_a, total_b):
        rows.append(
            ["TOTAL>floor", f"{gated_a:.3f}", f"{gated_b:.3f}",
             f"{gated_a / gated_b:.2f}x", ""]
        )
    geomean = geomean_ratio(a, b, min_seconds)
    rows.append(
        ["GEOMEAN", "-", "-",
         f"{geomean:.2f}x" if geomean is not None else "-", ""]
    )
    widths = [max(len(r[i]) for r in rows) for i in range(5)]
    lines = [
        "  ".join(cell.ljust(w) if i == 0 else cell.rjust(w)
                  for i, (cell, w) in enumerate(zip(row, widths))).rstrip()
        for row in rows
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Interleaved A/B comparison of the benchmark suite."
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--refs",
        nargs=2,
        metavar=("A", "B"),
        help=f"two git refs to compare ({WORKTREE!r} = current tree)",
    )
    group.add_argument(
        "--envs",
        nargs=2,
        metavar=("A", "B"),
        help="two KEY=VALUE[,KEY=VALUE...] env flag sets on the current tree",
    )
    parser.add_argument(
        "-n", "--pairs", type=int, default=3,
        help="interleaved A/B pairs to run (default 3)",
    )
    parser.add_argument(
        "--benches",
        help="comma-separated bench names (e.g. kernel,figure6); "
             "default: the whole benchmarks/ suite",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=0.05,
        help="noise floor: benches under this on both sides are excluded "
             "from the headline ratio (default 0.05)",
    )
    parser.add_argument(
        "--fail-below", type=float, metavar="RATIO",
        help="exit 1 unless the geomean A/B speedup is >= RATIO "
             "(e.g. 1.15 to assert side B at least 1.15x faster)",
    )
    parser.add_argument("--out", help="write the JSON report here")
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress per-run chatter"
    )
    args = parser.parse_args(argv)
    if args.pairs < 1:
        parser.error("--pairs must be >= 1")

    bench_args = []
    if args.benches:
        for name in args.benches.split(","):
            bench_args.append(f"benchmarks/test_bench_{name.strip()}.py")

    tmpdir = Path(tempfile.mkdtemp(prefix="voodb-ab-"))
    ref_sides: List[Side] = []
    try:
        if args.refs:
            side_a = _make_ref_side(args.refs[0], tmpdir)
            side_b = _make_ref_side(args.refs[1], tmpdir)
            ref_sides = [s for s in (side_a, side_b) if s.root != REPO_ROOT]
        else:
            side_a = _parse_env_side(args.envs[0])
            side_b = _parse_env_side(args.envs[1])
        for pair in range(args.pairs):
            for side in (side_a, side_b):
                if not args.quiet:
                    print(f"pair {pair + 1}/{args.pairs}: running {side.label}")
                side.record(_run_suite(side, bench_args, args.quiet))
        report = format_report(side_a, side_b, args.min_seconds)
        geomean = geomean_ratio(side_a, side_b, args.min_seconds)
        print()
        print(report)
        if args.out:
            payload = {
                "pairs": args.pairs,
                "min_seconds": args.min_seconds,
                "geomean_ratio": geomean,
                "sides": [
                    {
                        "label": side.label,
                        "env": side.env,
                        "runs": side.runs,
                        "means": side.means(),
                        "totals": side.totals,
                    }
                    for side in (side_a, side_b)
                ],
                "table": report,
            }
            Path(args.out).write_text(
                json.dumps(payload, indent=2) + "\n", encoding="utf-8"
            )
            print(f"\nreport written to {args.out}")
        if args.fail_below is not None:
            if geomean is None:
                print(
                    f"\nFAIL: no benches above the {args.min_seconds}s noise "
                    f"floor — cannot assert the {args.fail_below:.2f}x target",
                    file=sys.stderr,
                )
                return 1
            if geomean < args.fail_below:
                print(
                    f"\nFAIL: geomean speedup {geomean:.2f}x is below the "
                    f"{args.fail_below:.2f}x target",
                    file=sys.stderr,
                )
                return 1
            print(
                f"\nOK: geomean speedup {geomean:.2f}x meets the "
                f"{args.fail_below:.2f}x target"
            )
        return 0
    finally:
        for side in ref_sides:
            _cleanup_ref_side(side)
        shutil.rmtree(tmpdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
