"""Regenerate paper Table 8 — effects of DSTC, "large" base (8 MB).

The §4.4 protocol with memory reduced to 8 MB so the ~21 MB base is
large relative to memory: pre-clustering usage is dominated by
reservation/swap thrash and the clustering gain grows from ~5x to ~30x
(the paper's key scarcity result).  No overhead row — the paper reuses
the already-clustered base.
"""

from conftest import bench_executor, bench_replications
from repro.experiments.report import format_dstc_table
from repro.experiments.tables import table8


def test_bench_table8(regenerate):
    def run():
        result = table8(
            replications=bench_replications(), executor=bench_executor()
        )
        return format_dstc_table(result)

    regenerate("table8", run)
