"""Regenerate paper Figure 9 — Texas: mean I/Os vs number of instances (20 classes).

Sweeps NO on the Table 4 Texas centralized/virtual-memory config.
"""

from conftest import bench_executor, bench_hotn, bench_replications
from repro.experiments.figures import figure9
from repro.experiments.report import format_series


def test_bench_figure9(regenerate):
    def run():
        series = figure9(
            replications=bench_replications(),
            hotn=bench_hotn(),
            executor=bench_executor(),
        )
        return format_series(series)

    regenerate("figure9", run)
