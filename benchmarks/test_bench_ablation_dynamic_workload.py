"""Ablation: dynamic workloads (OCB's insert/delete operations).

OCB's workload model also covers dynamic operations; the validation
experiments run read-only, but a clustering is only useful if it
survives churn.  Protocol:

1. observe + reorganize exactly like the Table 6 protocol;
2. run a churn phase of pure inserts/deletes (0 / 500 / 2000
   transactions, uniform over the base);
3. cold-measure the hierarchy workload again.

The headline finding is *graceful degradation*: relocation-style
reorganization keeps surviving cluster members co-located, so uniform
churn punches holes (lower page utilization, shorter traversals — watch
the accesses column shrink) without breaking the hot working set's
locality.  Inserts land unclustered at the extent's end and stay
invisible to the measured traversals until DSTC observes them again —
the adaptivity loop its observation periods and aging factor implement.
"""

from conftest import fmt_rows
from repro.core import VOODBSimulation, build_database
from repro.systems.dstc_experiment import (
    DSTC_EXPERIMENT_PARAMETERS,
    HIERARCHY_DEPTH,
    HIERARCHY_REF_TYPE,
    texas_dstc_config,
)

CHURN_TRANSACTIONS = (0, 500, 2000)


def run_level(churn_txns: int, seed: int = 1) -> dict:
    config = texas_dstc_config(memory_mb=64)
    model = VOODBSimulation(
        config,
        seed=seed,
        clustering_kwargs={"dstc_parameters": DSTC_EXPERIMENT_PARAMETERS},
        clone_database=True,  # the churn phase mutates the graph
    )

    def usage_phase():
        return model.run_phase(
            config.ocb.hotn,
            workload="hierarchy",
            stream_label="usage",
            hierarchy_type=HIERARCHY_REF_TYPE,
            hierarchy_depth=HIERARCHY_DEPTH,
        )

    pre = usage_phase()
    report = model.demand_clustering()
    if churn_txns:
        # Churn hits the whole base uniformly (root_region=0), not the
        # hot region the measured traversals live in.
        churn_ocb = config.ocb.with_changes(
            pset=0.0, psimple=0.0, phier=0.0, pstoch=0.0,
            pinsert=0.5, pdelete=0.5, root_region=0,
        )
        model.run_phase(
            churn_txns, stream_label="churn", ocb_override=churn_ocb
        )
    model.memory.invalidate_all()  # cold measure: placement quality only
    post = usage_phase()
    return {
        "pre": pre.total_ios,
        "post": post.total_ios,
        "post_accesses": post.object_accesses,
        "gain": pre.total_ios / post.total_ios if post.total_ios else float("inf"),
        "clusters": report.clusters,
        "live": model.db.live_objects(),
        "allocated": len(model.db),
    }


def run_ablation() -> str:
    build_database(texas_dstc_config().ocb)
    rows = []
    for churn in CHURN_TRANSACTIONS:
        outcome = run_level(churn)
        rows.append(
            [
                churn,
                outcome["pre"],
                outcome["post"],
                outcome["post_accesses"],
                f"{outcome['gain']:.2f}",
                outcome["clusters"],
                outcome["live"],
                outcome["allocated"],
            ]
        )
    return fmt_rows(
        "Ablation: insert/delete churn after clustering (Texas 64 MB)",
        [
            "churn txns",
            "pre I/Os",
            "cold post I/Os",
            "post accesses",
            "gain",
            "clusters",
            "live objects",
            "allocated OIDs",
        ],
        rows,
    )


def test_bench_ablation_dynamic_workload(regenerate):
    regenerate("ablation_dynamic_workload", run_ablation)
