"""Regenerate paper Figure 11 — Texas: mean I/Os vs available main memory.

Sweeps memory over {8..64} MB at NC=50/NO=20000; the paper's
claim is a super-linear (reservation/swap driven) collapse once the
~21 MB base exceeds memory — far steeper than O2's Figure 8.
"""

from conftest import bench_executor, bench_hotn, bench_replications
from repro.experiments.figures import figure11
from repro.experiments.report import format_series


def test_bench_figure11(regenerate):
    def run():
        series = figure11(
            replications=bench_replications(),
            hotn=bench_hotn(),
            executor=bench_executor(),
        )
        return format_series(series)

    regenerate("figure11", run)
