"""Unit tests for the bench-drift gate (``check_regression.py``)."""

import json

import pytest

from check_regression import (
    check_regression,
    geomean_drift,
    load_bench_means,
    main,
)


def write(path, payload) -> str:
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


class TestLoadBenchMeans:
    def test_conftest_summary_shape(self, tmp_path):
        path = write(
            tmp_path / "bench.json",
            {"total_wall_s": 3.0, "benches": {"figure6": 2.0, "table6": 1.0}},
        )
        assert load_bench_means(path) == {"figure6": 2.0, "table6": 1.0}

    def test_trajectory_snapshot_prefers_post_section(self, tmp_path):
        path = write(
            tmp_path / "BENCH_X.json",
            {
                "pre_pr_baseline": {"benches": {"figure6": 9.0}},
                "post_pr_fast_path": {"benches": {"figure6": 2.0}},
            },
        )
        assert load_bench_means(path) == {"figure6": 2.0}

    def test_pytest_benchmark_shape(self, tmp_path):
        path = write(
            tmp_path / "bench_pytest.json",
            {
                "benchmarks": [
                    {"name": "test_bench_figure6", "stats": {"mean": 1.5}},
                    {"name": "broken", "stats": {}},
                ]
            },
        )
        assert load_bench_means(path) == {"test_bench_figure6": 1.5}

    def test_rejects_shapeless_json(self, tmp_path):
        path = write(tmp_path / "nope.json", {"hello": "world"})
        with pytest.raises(ValueError, match="no per-bench timings"):
            load_bench_means(path)


class TestCheckRegression:
    def test_no_regression_within_threshold(self):
        assert (
            check_regression({"a": 1.0, "b": 2.0}, {"a": 1.2, "b": 2.4}) == []
        )

    def test_flags_regression_past_threshold(self):
        flagged = check_regression({"a": 1.0}, {"a": 1.6}, threshold=0.25)
        assert len(flagged) == 1
        name, base, cur, ratio = flagged[0]
        assert (name, base, cur) == ("a", 1.0, 1.6)
        assert ratio == pytest.approx(1.6)

    def test_worst_regression_first(self):
        flagged = check_regression(
            {"a": 1.0, "b": 1.0}, {"a": 1.5, "b": 3.0}, threshold=0.25
        )
        assert [name for name, *_ in flagged] == ["b", "a"]

    def test_ignores_benches_only_on_one_side(self):
        assert check_regression({"a": 1.0}, {"b": 99.0}) == []

    def test_noise_floor_skips_tiny_benches(self):
        # 0.01s -> 0.04s is a 4x "regression" but pure scheduling noise.
        assert (
            check_regression({"a": 0.01}, {"a": 0.04}, min_seconds=0.5) == []
        )
        flagged = check_regression({"a": 0.01}, {"a": 0.8}, min_seconds=0.5)
        assert len(flagged) == 1

    def test_improvements_never_flag(self):
        assert check_regression({"a": 10.0}, {"a": 0.5}) == []


class TestGeomeanDrift:
    def test_balanced_suite_drifts_one(self):
        drift = geomean_drift({"a": 1.0, "b": 2.0}, {"a": 2.0, "b": 1.0})
        assert drift == pytest.approx(1.0)

    def test_uniform_slowdown(self):
        drift = geomean_drift({"a": 1.0, "b": 4.0}, {"a": 1.5, "b": 6.0})
        assert drift == pytest.approx(1.5)

    def test_none_when_nothing_clears_the_floor(self):
        assert geomean_drift({"a": 0.01}, {"a": 0.02}, min_seconds=0.5) is None


class TestMain:
    def test_green_path_exit_zero(self, tmp_path, capsys):
        baseline = write(tmp_path / "base.json", {"benches": {"a": 1.0}})
        current = write(tmp_path / "cur.json", {"benches": {"a": 1.1}})
        assert main(["--baseline", baseline, "--current", current]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_geomean_regression_exit_one(self, tmp_path, capsys):
        baseline = write(tmp_path / "base.json", {"benches": {"a": 1.0}})
        current = write(tmp_path / "cur.json", {"benches": {"a": 2.0}})
        assert main(["--baseline", baseline, "--current", current]) == 1
        out = capsys.readouterr().out
        assert "geomean regressed" in out

    def test_thin_spread_regression_caught_by_geomean(self, tmp_path, capsys):
        # Every bench +40%: under the +150% hard gate, over the +25%
        # geomean threshold — the failure mode per-bench gating misses.
        baseline = write(
            tmp_path / "base.json",
            {"benches": {"a": 1.0, "b": 2.0, "c": 3.0}},
        )
        current = write(
            tmp_path / "cur.json",
            {"benches": {"a": 1.4, "b": 2.8, "c": 4.2}},
        )
        assert main(["--baseline", baseline, "--current", current]) == 1
        assert "geomean regressed" in capsys.readouterr().out

    def test_single_blowup_trips_the_hard_gate(self, tmp_path, capsys):
        # Geomean stays under +25% because the other benches improved,
        # but one bench past +150% fails outright.
        baseline = write(
            tmp_path / "base.json",
            {"benches": {"a": 1.0, "b": 4.0, "c": 4.0}},
        )
        current = write(
            tmp_path / "cur.json",
            {"benches": {"a": 3.0, "b": 2.0, "c": 2.0}},
        )
        assert main(["--baseline", baseline, "--current", current]) == 1
        out = capsys.readouterr().out
        assert "hard gate" in out
        assert "a: 1.000s -> 3.000s" in out

    def test_missing_baseline_uses_fallback(self, tmp_path, capsys):
        current = write(tmp_path / "cur.json", {"benches": {"a": 1.0}})
        fallback = write(tmp_path / "BENCH_X.json", {"benches": {"a": 1.0}})
        missing = str(tmp_path / "absent.json")
        assert (
            main(
                [
                    "--baseline",
                    missing,
                    "--current",
                    current,
                    "--fallback",
                    fallback,
                ]
            )
            == 0
        )
        assert "using committed fallback" in capsys.readouterr().out

    def test_missing_baseline_and_fallback_fails_by_default(
        self, tmp_path, capsys
    ):
        current = write(tmp_path / "cur.json", {"benches": {"a": 1.0}})
        missing = str(tmp_path / "absent.json")
        gone = str(tmp_path / "no-fallback.json")
        assert (
            main(
                [
                    "--baseline",
                    missing,
                    "--current",
                    current,
                    "--fallback",
                    gone,
                ]
            )
            == 2
        )

    def test_allow_missing_baseline(self, tmp_path, capsys):
        current = write(tmp_path / "cur.json", {"benches": {"a": 1.0}})
        missing = str(tmp_path / "absent.json")
        gone = str(tmp_path / "no-fallback.json")
        assert (
            main(
                [
                    "--baseline",
                    missing,
                    "--current",
                    current,
                    "--fallback",
                    gone,
                    "--allow-missing",
                ]
            )
            == 0
        )
        assert "skipping the bench gate" in capsys.readouterr().out

    def test_real_committed_baseline_parses(self, capsys):
        from pathlib import Path

        bench2 = Path(__file__).resolve().parent.parent / "BENCH_2.json"
        means = load_bench_means(str(bench2))
        assert "figure6" in means and all(v > 0 for v in means.values())
