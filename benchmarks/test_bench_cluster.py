"""Cluster throughput bench: a sharded 4-node cluster under open load.

Measures the wall-clock of one full cluster replication (the hot path
the scenario catalog's cluster quartet exercises: per-node buffers and
disks, the shard router, replica write propagation, the sharded lock
service) and publishes its deterministic counters as the
``results/cluster.txt`` golden.  The wall-clock lands in the
``VOODB_BENCH_JSON`` export under the name ``cluster``, so
``check_regression.py`` guards cluster throughput like every other
bench once CI has a baseline.
"""

from conftest import bench_hotn, fmt_rows
from repro.core.model import VOODBSimulation
from repro.core.parameters import ArrivalConfig, ClusterConfig
from repro.systems.o2 import o2_config


def cluster_bench_config():
    return o2_config(
        nc=20,
        no=2000,
        cache_mb=0.5,
        hotn=min(bench_hotn(), 1000),
        pwrite=0.2,
    ).with_changes(
        cluster=ClusterConfig(
            servers=4,
            placement="hash",
            replication=2,
            interconnect_mbps=50.0,
        ),
        arrivals=ArrivalConfig(mode="poisson", rate_tps=60.0),
        multilvl=8,
    )


def test_bench_cluster_throughput(regenerate):
    state = {}

    def run():
        model = VOODBSimulation(cluster_bench_config(), seed=0)
        results = model.run()
        state["phase"] = phase = results.phase
        rows = [
            ["transactions", phase.transactions],
            ["total I/Os", phase.total_ios],
            ["per-server I/Os", " ".join(str(n) for n in phase.server_ios)],
            [
                "per-server accesses",
                " ".join(str(n) for n in phase.server_accesses),
            ],
            ["imbalance (max/mean I/Os)", f"{phase.cluster_imbalance:.3f}"],
            ["replica reads", phase.replica_reads],
            ["replica writes", phase.replica_writes],
            ["interconnect messages", phase.interconnect_messages],
            ["throughput (tps)", f"{phase.throughput_tps:.2f}"],
        ]
        return fmt_rows(
            "Cluster throughput (4 hash shards, replication 2, seed 0)",
            ["counter", "value"],
            rows,
        )

    regenerate("cluster", run)
    phase = state["phase"]
    # The bench's whole premise: every node shares the work, replicas
    # both absorb reads and charge write propagation.
    assert all(count > 0 for count in phase.server_accesses)
    assert phase.replica_reads > 0
    assert phase.replica_writes > 0
    assert sum(phase.server_ios) == phase.total_ios
