#!/usr/bin/env python
"""A priori evaluation: sizing a system that does not exist yet.

The paper's opening use case: "A system designer may need to a priori
test the efficiency of an optimization procedure or adjust the
parameters of a buffering technique.  It is also very helpful to users
to a priori estimate whether a given system is able to handle a given
workload."  (§1)

Here we design a hypothetical object server ("NeoODB") on paper only —
faster disk, CLOCK replacement, one-ahead prefetch — and use VOODB to
answer two sizing questions before building anything:

1. how much server buffer does the target workload need?
2. which replacement policy should ship as the default?

Run:  python examples/a_priori_sizing.py
"""

from repro import OCBConfig, SystemClass, VOODBConfig, run_replication
from repro.core import build_database

# The customer's workload: a 12 000-object base, hierarchy-heavy mix.
WORKLOAD = OCBConfig(
    nc=30,
    no=12_000,
    hotn=400,
    pset=0.15,
    psimple=0.15,
    phier=0.5,
    pstoch=0.2,
)


def neoodb(buffsize: int, pgrep: str = "CLOCK") -> VOODBConfig:
    """The paper-only system: its spec sheet is enough to simulate it."""
    return VOODBConfig(
        sysclass=SystemClass.OBJECT_SERVER,
        netthru=10.0,           # planned switched LAN
        pgsize=4096,
        buffsize=buffsize,
        pgrep=pgrep,
        prefetch="one_ahead",
        disksea=4.0,            # the faster disk on the quote
        disklat=2.0,
        disktra=0.3,
        multilvl=10,
        getlock=0.2,
        rellock=0.2,
        ocb=WORKLOAD,
    )


def main() -> None:
    build_database(WORKLOAD)

    print("Question 1: how much buffer does NeoODB need for this workload?")
    print(f"{'buffer (pages)':>15} {'mean I/Os':>10} {'hit rate':>9} {'resp ms':>9}")
    sweep = (256, 512, 1024, 2048, 4096)
    knee = sweep[-1]
    previous = None
    for buffsize in sweep:
        result = run_replication(neoodb(buffsize), seed=1)
        print(
            f"{buffsize:>15} {result.total_ios:>10} "
            f"{result.hit_rate:>9.3f} {result.mean_response_time_ms:>9.2f}"
        )
        if previous is not None and knee == sweep[-1]:
            if result.total_ios > 0.9 * previous:
                knee = buffsize  # diminishing returns reached
        previous = result.total_ios
    print(
        f"-> diminishing returns around {knee} pages "
        f"(~{max(1, knee * 4096 // 2**20)} MB): quote that much RAM.\n"
    )

    print("Question 2: which replacement policy should be the default?")
    print(f"{'policy':>10} {'mean I/Os':>10} {'hit rate':>9}")
    best = None
    for pgrep in ("LRU", "CLOCK", "GCLOCK", "FIFO", "LFU", "LRU-2"):
        result = run_replication(neoodb(1024, pgrep=pgrep), seed=1)
        print(f"{pgrep:>10} {result.total_ios:>10} {result.hit_rate:>9.3f}")
        if best is None or result.total_ios < best[1]:
            best = (pgrep, result.total_ios)
    print(f"-> ship {best[0]} as the default.\n")
    print("No NeoODB was harmed (or built) in the making of this study —")
    print("that is the point of a priori evaluation (§1).")


if __name__ == "__main__":
    main()
