#!/usr/bin/env python
"""Reusing classic benchmark workloads inside VOODB (paper §2).

"It is then possible to reuse workload models from existing benchmarks
(like HyperModel, OO1 or OO7) or establish a specific model."  This
example runs OCB parameterizations of OO1, OO7 and HyperModel — plus
OCB's own default mix — against the same simulated page server, showing
how differently the classic workloads stress the same system.

Run:  python examples/benchmark_workloads.py
"""

from repro import ExperimentRunner, o2_config
from repro.ocb import OCBConfig
from repro.ocb.presets import (
    hypermodel_workload,
    oo1_workload,
    oo7_workload,
)

WORKLOADS = [
    ("OCB default", OCBConfig(nc=20, no=6000, hotn=300)),
    ("OO1 (Cattell)", oo1_workload(no=6000, hotn=300)),
    ("OO7-like", oo7_workload(no=6000, hotn=300)),
    ("HyperModel-like", hypermodel_workload(no=6000, hotn=300)),
]


def main() -> None:
    print("Same page server (Table 4 O2 config), four classic workloads")
    print("(NO=6000, 300 transactions, 3 replications each)\n")
    header = (
        f"{'workload':>16} {'mean I/Os':>10} {'hit rate':>9} "
        f"{'accesses/txn':>13} {'resp ms':>9}"
    )
    print(header)
    print("-" * len(header))
    for label, ocb in WORKLOADS:
        config = o2_config(nc=ocb.nc, no=ocb.no, hotn=ocb.hotn)
        config = config.with_changes(ocb=ocb)
        runner = ExperimentRunner(config)
        runner.run(replications=3)
        ios = runner.mean("total_ios")
        hit = runner.mean("hit_rate")
        accesses = runner.mean("object_accesses") / ocb.hotn
        resp = runner.mean("mean_response_time_ms")
        print(
            f"{label:>16} {ios:>10.0f} {hit:>9.3f} "
            f"{accesses:>13.1f} {resp:>9.2f}"
        )
    print()
    print("OO1's 1%-locality traversals cache beautifully; OO7's raw")
    print("traversals visit an order of magnitude more objects per")
    print("transaction; HyperModel's closure mix sits in between —")
    print("one simulator, four benchmark personalities (§2's reuse claim).")


if __name__ == "__main__":
    main()
