"""The scenario catalog: packaged studies on the experiment engine.

Runs the two open-system scenarios next to the paper-faithful closed
baseline and prints what the arrival process changes: the same workload,
database and topology, but response times now include queueing for
admission behind a stochastic arrival stream — steady (Poisson) or
bursty (MMPP).

Run:  PYTHONPATH=src python examples/scenario_catalog.py
"""

from repro.experiments.report import format_scenario, format_scenario_list
from repro.scenarios import all_scenarios, get_scenario, run_scenario


def main() -> None:
    print("The built-in scenario catalog:\n")
    print(format_scenario_list(all_scenarios()))
    print()

    for name in ("paper-baseline", "open-poisson", "open-bursty"):
        scenario = get_scenario(name)
        result = run_scenario(scenario)
        print(format_scenario(scenario, result))
        print()

    closed = run_scenario(get_scenario("paper-baseline"))
    bursty = run_scenario(get_scenario("open-bursty"))
    closed_ms = closed.means("mean_response_time_ms")[0]
    bursty_ms = bursty.means("mean_response_time_ms")[0]
    print(
        f"same workload, same I/Os - but bursty arrivals stretch the mean "
        f"response time {bursty_ms / closed_ms:.1f}x "
        f"({closed_ms:.1f} ms -> {bursty_ms:.1f} ms): the cost of queueing "
        f"behind a burst."
    )


if __name__ == "__main__":
    main()
