#!/usr/bin/env python
"""VOODB's genericity: one workload, four Client-Server organizations.

§3.3: "Our generic model allows simulating the behavior of different
types of OODBMSs [...] controlled by the 'System class' parameter."
This example runs the same OCB workload under all four system classes
over a realistic 1 MB/s network (the Table 3 default) and shows where
each organization spends its time: a page server ships whole pages, an
object server ships objects, a DB server ships only queries, and a
centralized system never touches the wire.

Run:  python examples/architecture_comparison.py
"""

from repro import OCBConfig, SystemClass, VOODBConfig, run_replication
from repro.experiments import SweepSpec, make_executor, run_sweep

WORKLOAD = OCBConfig(nc=20, no=4000, hotn=300)


def main() -> None:
    # The architecture axis is just another sweep for the experiment
    # engine: one point per system class, executed serially or across
    # workers depending on VOODB_JOBS.
    sweep = SweepSpec.grid(
        "architectures",
        values=tuple(SystemClass),
        config_for=lambda sysclass: VOODBConfig(
            sysclass=sysclass,
            netthru=1.0,
            buffsize=1024,
            ocb=WORKLOAD,
        ),
        replications=1,
    )
    result = run_sweep(sweep, executor=make_executor())

    print("Same workload (NC=20, NO=4000, 300 transactions), 1 MB/s network")
    header = (
        f"{'system class':>15} {'I/Os':>6} {'messages':>9} "
        f"{'MB shipped':>11} {'net ms':>9} {'resp ms':>9}"
    )
    print(header)
    print("-" * len(header))
    for sysclass, analyzer in zip(sweep.x_values, result.analyzers):
        print(
            f"{sysclass.value:>15} {analyzer.mean('total_ios'):>6.0f} "
            f"{analyzer.mean('network_messages'):>9.0f} "
            f"{analyzer.mean('network_bytes') / 2**20:>11.2f} "
            f"{analyzer.mean('network_time_ms'):>9.0f} "
            f"{analyzer.mean('mean_response_time_ms'):>9.2f}"
        )
    print()
    print("Disk I/Os match across organizations (same server-side path,")
    print("same workload) — what changes is network traffic and therefore")
    print("response time.  A client cache changes the picture:")
    print()
    for client_pages in (0, 256):
        config = VOODBConfig(
            sysclass=SystemClass.PAGE_SERVER,
            netthru=1.0,
            buffsize=1024,
            client_buffsize=client_pages,
            ocb=WORKLOAD,
        )
        result = run_replication(config, seed=1)
        print(
            f"  page server, client cache {client_pages:>4} pages: "
            f"{result.phase.network_messages:>6} messages, "
            f"{result.mean_response_time_ms:>8.2f} ms/txn"
        )


if __name__ == "__main__":
    main()
