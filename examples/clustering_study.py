#!/usr/bin/env python
"""The §4.4 DSTC clustering study, end to end.

Replays the paper's protocol on the Texas instantiation:

1. a *pre-clustering* usage phase — 1000 depth-3 hierarchy traversals
   drawn from a hot root region (the paper's "favorable conditions");
2. an external clustering demand — DSTC selects, consolidates, builds
   clusters, and the Clustering Manager physically reorganizes the base
   (its I/Os are the clustering overhead of Table 6);
3. a *post-clustering* phase replaying the same transactions.

Also demonstrates the memory-scarcity effect of Table 8 by re-running
the protocol at 8 MB.

Run:  python examples/clustering_study.py
"""

from repro import VOODBSimulation, texas_dstc_config
from repro.systems.dstc_experiment import (
    DSTC_EXPERIMENT_PARAMETERS,
    HIERARCHY_DEPTH,
    HIERARCHY_REF_TYPE,
)


def run_protocol(memory_mb: float, transactions: int = 1000) -> None:
    config = texas_dstc_config(memory_mb=memory_mb, hotn=transactions)
    model = VOODBSimulation(
        config,
        seed=1,
        clustering_kwargs={"dstc_parameters": DSTC_EXPERIMENT_PARAMETERS},
    )

    print(
        f"--- Texas with {memory_mb:.0f} MB of memory "
        f"({config.buffsize} page frames) ---"
    )
    pre = model.run_phase(
        transactions,
        workload="hierarchy",
        stream_label="usage",
        hierarchy_type=HIERARCHY_REF_TYPE,
        hierarchy_depth=HIERARCHY_DEPTH,
    )
    print(
        f"pre-clustering usage:   {pre.total_ios:6d} I/Os "
        f"({pre.swap_reads + pre.swap_writes} of them swap)"
    )

    report = model.demand_clustering()
    print(
        f"clustering overhead:    {report.overhead_ios:6d} I/Os "
        f"({report.clusters} clusters, "
        f"{report.mean_objects_per_cluster:.1f} objects/cluster)"
    )

    post = model.run_phase(
        transactions,
        workload="hierarchy",
        stream_label="usage",
        hierarchy_type=HIERARCHY_REF_TYPE,
        hierarchy_depth=HIERARCHY_DEPTH,
    )
    gain = pre.total_ios / post.total_ios if post.total_ios else float("inf")
    print(f"post-clustering usage:  {post.total_ios:6d} I/Os")
    print(f"gain:                   {gain:6.2f}x")
    print()


def main() -> None:
    print("DSTC clustering study (paper §4.4, Tables 6-8)")
    print("=" * 60)
    # Table 6/7: mid-sized base, ample memory.
    run_protocol(memory_mb=64)
    # Table 8: same base, scarce memory -> the gain explodes, because a
    # good clustering keeps the working set inside the few frames left.
    run_protocol(memory_mb=8)
    print(
        "Paper reference: gain 5.36x at 64 MB (Table 6), "
        "28.42x at 8 MB (Table 8);"
    )
    print(
        "simulated overhead is ~36x below the Texas measurement because "
        "logical OIDs"
    )
    print("need no reference-update scan after objects move (§4.4).")


if __name__ == "__main__":
    main()
