#!/usr/bin/env python
"""Quickstart: simulate the O2 OODB under the OCB workload.

Builds the paper's Table 4 O2 instantiation of VOODB, runs a few
replications of the Table 5 workload (§4.2.2 protocol: independent
replications, Student-t confidence intervals), and prints the headline
metrics plus the full parameter sheet.

Run:  python examples/quickstart.py
"""

from repro import ExperimentRunner, o2_config
from repro.experiments import make_executor


def main() -> None:
    # A mid-sized base keeps the example snappy; nc/no/cache_mb sweep
    # exactly like the paper's Figures 6-8.
    config = o2_config(nc=50, no=8000, hotn=500)

    print("VOODB instance (paper Table 3 parameters)")
    print(f"  SYSCLASS  system class            {config.sysclass.value}")
    print(f"  NETTHRU   network throughput      {config.netthru} MB/s")
    print(f"  PGSIZE    disk page size          {config.pgsize} bytes")
    print(f"  BUFFSIZE  buffer size             {config.buffsize} pages")
    print(f"  PGREP     page replacement        {config.pgrep}")
    print(f"  PREFETCH  prefetching policy      {config.prefetch}")
    print(f"  CLUSTP    clustering policy       {config.clustp}")
    print(f"  INITPL    initial placement       {config.initpl}")
    print(f"  DISKSEA   disk search time        {config.disksea} ms")
    print(f"  DISKLAT   disk latency time       {config.disklat} ms")
    print(f"  DISKTRA   disk transfer time      {config.disktra} ms")
    print(f"  MULTILVL  multiprogramming level  {config.multilvl}")
    print(f"  GETLOCK   lock acquisition time   {config.getlock} ms")
    print(f"  RELLOCK   lock release time       {config.rellock} ms")
    print(f"  NUSERS    number of users         {config.nusers}")
    print()
    print("OCB workload (paper Table 5)")
    ocb = config.ocb
    print(
        f"  {ocb.nc} classes, {ocb.no} instances "
        f"(~{ocb.expected_database_bytes / 2**20:.1f} MB of objects)"
    )
    print(
        f"  HOTN={ocb.hotn} transactions: "
        f"set/simple/hierarchy/stochastic = "
        f"{ocb.pset}/{ocb.psimple}/{ocb.phier}/{ocb.pstoch}, "
        f"depths {ocb.setdepth}/{ocb.simdepth}/{ocb.hiedepth}/{ocb.stodepth}"
    )
    print()

    # make_executor() honors VOODB_JOBS (worker processes) and
    # VOODB_CACHE_DIR (on-disk replication cache); the statistics are
    # bit-identical to a serial run either way.
    runner = ExperimentRunner(config, executor=make_executor())
    runner.run(replications=5)

    print("Results over 5 replications (95% confidence intervals)")
    for metric, label in [
        ("total_ios", "mean number of I/Os"),
        ("hit_rate", "buffer hit rate"),
        ("mean_response_time_ms", "mean response time (ms)"),
        ("throughput_tps", "throughput (transactions/s)"),
    ]:
        print(f"  {label:30s} {runner.interval(metric)}")

    # The paper's pilot-study sizing (§4.2.2): how many replications for
    # a half-width within 5% of the mean?
    needed = runner.analyzer.additional_replications_for("total_ios", 0.05)
    print()
    print(
        "Pilot study: "
        f"{needed} additional replications would reach ±5% on total_ios "
        "(the paper settled on 100 for all experiments)"
    )


if __name__ == "__main__":
    main()
