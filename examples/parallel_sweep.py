#!/usr/bin/env python
"""The experiment engine: declarative sweeps, parallel executors, cache.

Builds a :class:`SweepSpec` grid over the O2 server-cache size (the
Figure 8 axis), runs it three ways — serially, across worker processes,
and again against a warm on-disk replication cache — and shows that all
three produce bit-identical statistics for the same seed set.  That
equivalence is the engine's core contract: parallelism and caching are
pure wall-clock optimizations, never a change in results.

Run:  python examples/parallel_sweep.py
"""

import tempfile
import time

from repro import o2_config
from repro.experiments import (
    ParallelExecutor,
    ReplicationCache,
    SerialExecutor,
    SweepSpec,
    format_sweep,
    run_sweep,
)

CACHE_SIZES_MB = (1, 2, 4, 8)
REPLICATIONS = 3


def timed(label: str, executor, sweep: SweepSpec):
    start = time.perf_counter()
    result = run_sweep(sweep, executor=executor)
    elapsed = time.perf_counter() - start
    print(f"{label:28s} {elapsed:6.2f} s")
    return result


def main() -> None:
    sweep = SweepSpec.grid(
        "o2-cache-sweep",
        values=CACHE_SIZES_MB,
        config_for=lambda mb: o2_config(nc=20, no=4000, cache_mb=mb, hotn=300),
        replications=REPLICATIONS,
    )
    jobs = len(sweep.points) * REPLICATIONS
    print(
        f"{len(sweep.points)} points x {REPLICATIONS} replications "
        f"= {jobs} independent jobs\n"
    )

    serial = timed("serial executor", SerialExecutor(), sweep)
    parallel = timed("parallel executor (2 procs)", ParallelExecutor(jobs=2), sweep)

    cache = ReplicationCache(tempfile.mkdtemp(prefix="voodb-cache-"))
    timed("cold cache (computes + stores)", SerialExecutor(cache=cache), sweep)
    cached = timed("warm cache (pure replay)", SerialExecutor(cache=cache), sweep)
    print(f"cache: {cache.hits} hits / {cache.misses} misses over both runs\n")

    identical = all(
        a.observations("total_ios") == b.observations("total_ios")
        == c.observations("total_ios")
        for a, b, c in zip(serial.analyzers, parallel.analyzers, cached.analyzers)
    )
    print(
        "serial == parallel == cached, observation for observation: "
        f"{identical}\n"
    )
    print(
        format_sweep(
            serial, metrics=("total_ios", "hit_rate"), x_label="cache (MB)"
        )
    )


if __name__ == "__main__":
    main()
