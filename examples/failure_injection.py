#!/usr/bin/env python
"""Critical conditions: how a simulated OODB degrades under failures.

Implements the paper's §5 suggestion — "VOODB could also take into
account random hazards, like benign or serious system failures, in
order to observe how the studied OODB behaves and recovers in critical
conditions" — and uses it to compare how two buffer sizes ride out a
crashy environment (bigger buffers lose more on every crash).

Run:  python examples/failure_injection.py
"""

from repro.core import FailureConfig, build_database, run_replication
from repro.systems.o2 import o2_config

WORKLOAD = dict(nc=20, no=4000, hotn=400)


def main() -> None:
    build_database(o2_config(**WORKLOAD).ocb)
    print("O2 under increasing hazard levels (NC=20, NO=4000, 400 txns)")
    header = (
        f"{'scenario':>22} {'I/Os':>6} {'faults':>7} {'crashes':>8} "
        f"{'downtime ms':>12} {'txn/s':>7}"
    )
    print(header)
    print("-" * len(header))
    scenarios = [
        ("healthy", FailureConfig()),
        ("flaky disk", FailureConfig(transient_mtbf_ms=300.0)),
        ("nightly crash", FailureConfig(crash_mtbf_ms=30_000.0)),
        ("crash storm", FailureConfig(crash_mtbf_ms=5_000.0)),
    ]
    for label, failures in scenarios:
        config = o2_config(**WORKLOAD).with_changes(failures=failures)
        result = run_replication(config, seed=7)
        phase = result.phase
        print(
            f"{label:>22} {result.total_ios:>6} {phase.transient_faults:>7} "
            f"{phase.crashes:>8} {phase.downtime_ms:>12.0f} "
            f"{phase.throughput_tps:>7.2f}"
        )

    print()
    print("Does a bigger cache help as much in a crashy environment?")
    big = dict(nc=20, no=8000, hotn=400)  # ~10 MB stored base
    build_database(o2_config(**big).ocb)
    print(f"{'cache MB':>9} {'healthy I/Os':>13} {'crashy I/Os':>12} {'penalty':>8}")
    for cache_mb in (4, 8, 32):
        healthy = run_replication(o2_config(cache_mb=cache_mb, **big), seed=7)
        crashy = run_replication(
            o2_config(cache_mb=cache_mb, **big).with_changes(
                failures=FailureConfig(crash_mtbf_ms=5_000.0)
            ),
            seed=7,
        )
        penalty = crashy.total_ios / healthy.total_ios
        print(
            f"{cache_mb:>9} {healthy.total_ios:>13} "
            f"{crashy.total_ios:>12} {penalty:>8.2f}x"
        )
    print()
    print("Crashes tax exactly what caching saved: the system whose cache")
    print("was big enough to hold the base loses the most, relatively, on")
    print("every crash — a sizing trade-off only visible under hazards.")


if __name__ == "__main__":
    main()
