"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network access,
so PEP 517/660 editable installs cannot build. This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``pip install -e .`` with the pip.conf shipped in this repo) fall back to
``setup.py develop``, which works offline.
"""

from setuptools import setup

setup()
