"""Setuptools entry point.

Kept as a ``setup.py`` (rather than pyproject-only) so offline
environments without ``wheel`` can still do
``pip install -e . --no-use-pep517 --no-build-isolation``, which falls
back to ``setup.py develop``.
"""

from setuptools import find_packages, setup

setup(
    name="voodb-repro",
    version="0.1.0",
    description=(
        "Reproduction of VOODB: a generic discrete-event random simulation "
        "model to evaluate the performances of OODBs (VLDB 1999)"
    ),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["scipy"],
    extras_require={
        "dev": ["pytest", "hypothesis", "pytest-benchmark"],
    },
    entry_points={
        "console_scripts": [
            "voodb = repro.__main__:main",
        ],
    },
)
