"""Unit tests for the O2 / Texas instantiations (paper Table 4)."""

import math

import pytest

from repro.core import MemoryModel, SystemClass
from repro.systems import o2_config, texas_config, texas_dstc_config
from repro.systems.dstc_experiment import DSTC_EXPERIMENT_PARAMETERS
from repro.systems.o2 import o2_buffer_pages
from repro.systems.texas import texas_memory_frames


class TestO2Config:
    def test_table4_values(self):
        config = o2_config()
        assert config.sysclass is SystemClass.PAGE_SERVER
        assert math.isinf(config.netthru)
        assert config.pgsize == 4096
        assert config.buffsize == 3840  # 16 MB cache
        assert config.pgrep == "LRU"
        assert config.prefetch == "none"
        assert config.clustp == "none"
        assert config.initpl == "optimized_sequential"
        assert config.disksea == 6.3
        assert config.disklat == 2.99
        assert config.disktra == 0.7
        assert config.multilvl == 10
        assert config.getlock == 0.5
        assert config.rellock == 0.5
        assert config.nusers == 1

    def test_database_size_near_28mb(self):
        """§4.3.1: the default base is 'about 28 MB on an average' in O2."""
        config = o2_config()
        stored_bytes = (
            config.ocb.expected_database_bytes * config.storage_overhead
        )
        assert 24.0 <= stored_bytes / 2**20 <= 31.0

    def test_cache_sweep(self):
        assert o2_buffer_pages(16) == 3840
        assert o2_buffer_pages(8) == 1920
        assert o2_config(cache_mb=8).buffsize == 1920
        with pytest.raises(ValueError):
            o2_buffer_pages(0)

    def test_nc_no_forwarded(self):
        config = o2_config(nc=20, no=500)
        assert config.ocb.nc == 20
        assert config.ocb.no == 500

    def test_ocb_overrides_forwarded(self):
        config = o2_config(root_skew=1.5)
        assert config.ocb.root_skew == 1.5


class TestTexasConfig:
    def test_table4_values(self):
        config = texas_config()
        assert config.sysclass is SystemClass.CENTRALIZED
        assert config.memory_model is MemoryModel.VIRTUAL_MEMORY
        assert config.pgsize == 4096
        assert config.pgrep == "LRU"
        assert config.clustp == "none"
        assert config.initpl == "optimized_sequential"
        assert config.disksea == 7.4
        assert config.disklat == 4.3
        assert config.disktra == 0.5
        assert config.multilvl == 1
        assert config.getlock == 0.0
        assert config.rellock == 0.0
        assert config.nusers == 1

    def test_database_size_near_21mb(self):
        """§4.3.2/§4.4: ~21 MB stored (about 20 MB 'on an average')."""
        config = texas_config()
        stored_bytes = (
            config.ocb.expected_database_bytes * config.storage_overhead
        )
        assert 17.0 <= stored_bytes / 2**20 <= 24.0

    def test_memory_frames_subtract_os_footprint(self):
        assert texas_memory_frames(64) == 60 * 256
        assert texas_memory_frames(8) == 4 * 256
        with pytest.raises(ValueError):
            texas_memory_frames(0)

    def test_default_memory_fits_database(self):
        """At 64 MB the ~21 MB base fits: the Figure 11 flat region."""
        config = texas_config(memory_mb=64)
        stored_pages = (
            config.ocb.expected_database_bytes
            * config.storage_overhead
            / config.pgsize
        )
        assert config.buffsize > stored_pages

    def test_small_memory_below_database(self):
        config = texas_config(memory_mb=8)
        stored_pages = (
            config.ocb.expected_database_bytes
            * config.storage_overhead
            / config.pgsize
        )
        assert config.buffsize < stored_pages

    def test_clustp_forwarded(self):
        assert texas_config(clustp="dstc").clustp == "dstc"


class TestDSTCExperimentConfig:
    def test_uses_dstc_on_texas(self):
        config = texas_dstc_config()
        assert config.clustp == "dstc"
        assert config.sysclass is SystemClass.CENTRALIZED
        assert config.memory_model is MemoryModel.VIRTUAL_MEMORY

    def test_favorable_conditions_workload(self):
        config = texas_dstc_config()
        assert config.ocb.root_region > 0
        assert config.ocb.object_locality == config.ocb.no  # no locality

    def test_parameters_external_trigger(self):
        assert not DSTC_EXPERIMENT_PARAMETERS.auto_trigger

    def test_memory_sweep(self):
        large = texas_dstc_config(memory_mb=64)
        small = texas_dstc_config(memory_mb=8)
        assert large.buffsize > small.buffsize
        assert large.ocb == small.ocb  # same base, as §4.4 reuses it
