"""Unit tests for the paper's published reference data."""

import pytest

from repro.systems.reference_data import (
    ALL_FIGURES,
    FIGURE_6,
    FIGURE_7,
    FIGURE_8,
    FIGURE_9,
    FIGURE_10,
    FIGURE_11,
    INSTANCE_SWEEP,
    MEMORY_SWEEP_MB,
    TABLE_6,
    TABLE_7,
    TABLE_8,
    FigureReference,
)


class TestFigureReferences:
    def test_all_six_figures_present(self):
        assert set(ALL_FIGURES) == {"6", "7", "8", "9", "10", "11"}

    def test_series_lengths_consistent(self):
        for ref in ALL_FIGURES.values():
            assert len(ref.x_values) == len(ref.benchmark) == len(ref.simulation)

    def test_sweeps_match_paper_axes(self):
        assert FIGURE_6.x_values == INSTANCE_SWEEP
        assert FIGURE_8.x_values == MEMORY_SWEEP_MB
        assert FIGURE_11.x_values == MEMORY_SWEEP_MB

    def test_instance_figures_increase(self):
        for ref in (FIGURE_6, FIGURE_7, FIGURE_9, FIGURE_10):
            assert list(ref.simulation) == sorted(ref.simulation)
            assert list(ref.benchmark) == sorted(ref.benchmark)

    def test_memory_figures_decrease(self):
        for ref in (FIGURE_8, FIGURE_11):
            assert list(ref.simulation) == sorted(ref.simulation, reverse=True)

    def test_50_classes_above_20_classes(self):
        for a, b in ((FIGURE_7, FIGURE_6), (FIGURE_10, FIGURE_9)):
            for hi, lo in zip(a.simulation, b.simulation):
                assert hi >= lo

    def test_texas_collapse_steeper_than_o2(self):
        """Fig 11's degradation dwarfs Fig 8's at equal memory points."""
        o2_ratio = FIGURE_8.simulation[0] / FIGURE_8.simulation[-1]
        texas_ratio = FIGURE_11.simulation[0] / FIGURE_11.simulation[-1]
        assert texas_ratio > o2_ratio

    def test_mismatched_series_rejected(self):
        with pytest.raises(ValueError):
            FigureReference(
                figure="x",
                title="bad",
                x_label="x",
                x_values=(1, 2),
                benchmark=(1.0,),
                simulation=(1.0, 2.0),
            )

    def test_digitized_flag_set(self):
        assert all(ref.digitized for ref in ALL_FIGURES.values())


class TestTableReferences:
    def test_table6_exact_values(self):
        assert TABLE_6.pre_clustering_sim == 1878.80
        assert TABLE_6.overhead_sim == 354.50
        assert TABLE_6.post_clustering_sim == 350.50
        assert TABLE_6.gain_sim == 5.36

    def test_table8_exact_values(self):
        assert TABLE_8.pre_clustering_sim == 12_547.80
        assert TABLE_8.post_clustering_sim == 441.50
        assert TABLE_8.gain_sim == 28.42
        assert TABLE_8.overhead_sim is None  # not repeated in the paper

    def test_table7_exact_values(self):
        assert TABLE_7["mean_clusters_sim"] == 84.01
        assert TABLE_7["mean_objects_per_cluster_sim"] == 13.73

    def test_gain_consistent_with_rows(self):
        for table in (TABLE_6, TABLE_8):
            implied = table.pre_clustering_sim / table.post_clustering_sim
            assert implied == pytest.approx(table.gain_sim, rel=0.01)

    def test_scarce_memory_amplifies_gain(self):
        assert TABLE_8.gain_sim > TABLE_6.gain_sim

    def test_simulated_overhead_far_below_benchmarked(self):
        """§4.4's physical-vs-logical OID point: bench/sim overhead ~36x."""
        ratio = TABLE_6.overhead_bench / TABLE_6.overhead_sim
        assert 30 < ratio < 40
