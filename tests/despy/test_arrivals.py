"""Unit tests for the open-system arrival processes."""

import itertools

import pytest

from repro.despy.arrivals import (
    fixed_interarrivals,
    mmpp_interarrivals,
    poisson_interarrivals,
)
from repro.despy.randomstream import RandomStream
from repro.despy.timebase import MS_PER_TICK, ms_to_ticks


def take(iterator, n):
    return list(itertools.islice(iterator, n))


class TestFixed:
    def test_constant_gaps(self):
        tick = ms_to_ticks(25.0)
        assert take(fixed_interarrivals(25.0), 4) == [tick] * 4

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError, match="interval_ms"):
            next(fixed_interarrivals(0.0))


class TestPoisson:
    def test_gaps_are_positive(self):
        stream = RandomStream(7, "arrivals")
        assert all(gap > 0 for gap in take(poisson_interarrivals(stream, 10.0), 200))

    def test_mean_gap_matches_rate(self):
        stream = RandomStream(7, "arrivals")
        gaps = take(poisson_interarrivals(stream, 20.0), 5000)
        mean = sum(gaps) / len(gaps) * MS_PER_TICK
        # rate 20/s -> mean gap 50 ms; loose statistical bounds.
        assert 45.0 < mean < 55.0

    def test_deterministic_per_seed_and_name(self):
        first = take(poisson_interarrivals(RandomStream(3, "a"), 5.0), 50)
        second = take(poisson_interarrivals(RandomStream(3, "a"), 5.0), 50)
        other = take(poisson_interarrivals(RandomStream(3, "b"), 5.0), 50)
        assert first == second
        assert first != other

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError, match="rate_per_s"):
            next(poisson_interarrivals(RandomStream(1, "a"), 0.0))


class TestMMPP:
    def test_gaps_are_positive_and_deterministic(self):
        args = ((10.0, 200.0), (1000.0, 200.0))
        first = take(mmpp_interarrivals(RandomStream(11, "m"), *args), 300)
        second = take(mmpp_interarrivals(RandomStream(11, "m"), *args), 300)
        assert first == second
        assert all(gap > 0 for gap in first)

    def test_overall_rate_between_state_rates(self):
        stream = RandomStream(13, "m")
        gaps = take(
            mmpp_interarrivals(stream, (5.0, 100.0), (1000.0, 1000.0)), 5000
        )
        rate_per_s = 1000.0 / (sum(gaps) / len(gaps) * MS_PER_TICK)
        # Equal dwell shares -> arrival rate is the dwell-weighted mean
        # (5 + 100) / 2 = 52.5; loose statistical bounds.
        assert 40.0 < rate_per_s < 65.0

    def test_burstier_than_poisson(self):
        """Burst states bunch arrivals: gap variance far exceeds the
        exponential's at the same overall rate."""
        gaps = take(
            mmpp_interarrivals(
                RandomStream(17, "m"), (2.0, 400.0), (4000.0, 400.0)
            ),
            4000,
        )
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        # For an exponential, var == mean^2; an MMPP this asymmetric is
        # far above that.
        assert var > 2.0 * mean**2

    def test_validation(self):
        stream = RandomStream(1, "m")
        with pytest.raises(ValueError, match="pair up"):
            next(mmpp_interarrivals(stream, (1.0, 2.0), (100.0,)))
        with pytest.raises(ValueError, match="two states"):
            next(mmpp_interarrivals(stream, (1.0,), (100.0,)))
        with pytest.raises(ValueError, match="rates must be > 0"):
            next(mmpp_interarrivals(stream, (1.0, 0.0), (100.0, 100.0)))
        with pytest.raises(ValueError, match="dwell times must be > 0"):
            next(mmpp_interarrivals(stream, (1.0, 2.0), (100.0, 0.0)))
