"""Unit tests for the observation collectors."""

import math

import pytest

from repro.despy import Simulation
from repro.despy.monitor import OnlineStats, TimeWeightedStats


class TestOnlineStats:
    def test_empty_stats(self):
        stats = OnlineStats()
        assert stats.n == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    def test_mean_and_variance_match_textbook(self):
        stats = OnlineStats()
        data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        for x in data:
            stats.record(x)
        assert stats.mean == pytest.approx(5.0)
        # unbiased sample variance of the classic dataset is 32/7
        assert stats.variance == pytest.approx(32.0 / 7.0)
        assert stats.stdev == pytest.approx(math.sqrt(32.0 / 7.0))

    def test_min_max_total(self):
        stats = OnlineStats()
        for x in [3.0, -1.0, 10.0]:
            stats.record(x)
        assert stats.minimum == -1.0
        assert stats.maximum == 10.0
        assert stats.total == 12.0

    def test_single_observation_variance_zero(self):
        stats = OnlineStats()
        stats.record(5.0)
        assert stats.variance == 0.0

    def test_merge_equivalent_to_combined_stream(self):
        a, b, combined = OnlineStats(), OnlineStats(), OnlineStats()
        left = [1.0, 2.0, 3.0]
        right = [10.0, 20.0]
        for x in left:
            a.record(x)
            combined.record(x)
        for x in right:
            b.record(x)
            combined.record(x)
        merged = a.merge(b)
        assert merged.n == combined.n
        assert merged.mean == pytest.approx(combined.mean)
        assert merged.variance == pytest.approx(combined.variance)
        assert merged.minimum == combined.minimum
        assert merged.maximum == combined.maximum
        assert merged.total == pytest.approx(combined.total)

    def test_merge_with_empty(self):
        a = OnlineStats()
        a.record(4.0)
        merged = a.merge(OnlineStats())
        assert merged.n == 1
        assert merged.mean == 4.0


class TestTimeWeightedStats:
    def test_constant_signal_average_is_value(self):
        sim = Simulation()
        tw = TimeWeightedStats(sim, initial=3.0)
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert tw.time_average() == pytest.approx(3.0)

    def test_step_signal(self):
        sim = Simulation()
        tw = TimeWeightedStats(sim, initial=0.0)
        sim.schedule(4.0, lambda: tw.record(2.0))
        sim.schedule(8.0, lambda: None)
        sim.run()
        # 0 for 4 units then 2 for 4 units -> average 1
        assert tw.time_average() == pytest.approx(1.0)

    def test_zero_elapsed_returns_current(self):
        sim = Simulation()
        tw = TimeWeightedStats(sim, initial=7.0)
        assert tw.time_average() == 7.0

    def test_current_tracks_last_value(self):
        sim = Simulation()
        tw = TimeWeightedStats(sim)
        sim.schedule(1.0, lambda: tw.record(5.0))
        sim.run()
        assert tw.current == 5.0

    def test_multiple_steps(self):
        sim = Simulation()
        tw = TimeWeightedStats(sim, initial=1.0)
        sim.schedule(2.0, lambda: tw.record(3.0))
        sim.schedule(6.0, lambda: tw.record(0.0))
        sim.schedule(10.0, lambda: None)
        sim.run()
        # 1*2 + 3*4 + 0*4 = 14 over 10 units
        assert tw.time_average() == pytest.approx(1.4)

    def test_starts_at_construction_time(self):
        sim = Simulation()
        holder = {}

        def later():
            holder["tw"] = TimeWeightedStats(sim, initial=2.0)

        sim.schedule(5.0, later)
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert holder["tw"].time_average() == pytest.approx(2.0)
