"""Unit tests for the Simulation engine: clock, scheduling, streams."""

import math

import pytest

from repro.despy import Simulation
from repro.despy.errors import SchedulingError


class TestScheduling:
    def test_schedule_runs_handler_at_offset(self):
        sim = Simulation()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_schedule_passes_args(self):
        sim = Simulation()
        seen = []
        sim.schedule(1.0, lambda a, b: seen.append((a, b)), "x", 2)
        sim.run()
        assert seen == [("x", 2)]

    def test_negative_delay_rejected(self):
        sim = Simulation()
        with pytest.raises(SchedulingError):
            sim.schedule(-1.0, lambda: None)

    def test_nan_delay_rejected(self):
        sim = Simulation()
        with pytest.raises(SchedulingError):
            sim.schedule(math.nan, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulation()
        seen = []
        sim.schedule_at(3.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.0]

    def test_schedule_at_past_rejected(self):
        sim = Simulation()
        failures = []

        def try_past():
            try:
                sim.schedule_at(1.0, lambda: None)
            except SchedulingError:
                failures.append(sim.now)

        sim.schedule(2.0, try_past)
        sim.run()
        assert failures == [2.0]

    def test_drained_simulation_is_reusable(self):
        """Multi-phase experiments schedule fresh work after a drain."""
        sim = Simulation()
        seen = []
        sim.schedule(2.0, lambda: seen.append(sim.now))
        sim.run()
        sim.schedule(3.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.0, 5.0]

    def test_events_chain_from_handlers(self):
        sim = Simulation()
        seen = []

        def first():
            seen.append(("first", sim.now))
            sim.schedule(2.0, second)

        def second():
            seen.append(("second", sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == [("first", 1.0), ("second", 3.0)]


class TestRunControl:
    def test_run_until_pauses_clock_at_horizon(self):
        sim = Simulation()
        sim.schedule(10.0, lambda: None)
        end = sim.run(until=4.0)
        assert end == 4.0
        assert sim.pending_events == 1

    def test_run_resumes_after_horizon(self):
        sim = Simulation()
        seen = []
        sim.schedule(10.0, lambda: seen.append(sim.now))
        sim.run(until=4.0)
        sim.run()
        assert seen == [10.0]

    def test_run_after_drain_is_noop(self):
        sim = Simulation()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.run() == 1.0

    def test_stop_drops_pending_events(self):
        sim = Simulation()
        seen = []
        sim.schedule(1.0, lambda: (seen.append(sim.now), sim.stop()))
        sim.schedule(2.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.0]

    def test_empty_run_finishes_at_zero(self):
        sim = Simulation()
        assert sim.run() == 0.0

    def test_run_until_advances_idle_clock_to_horizon(self):
        sim = Simulation()
        sim.schedule(1.0, lambda: None)
        end = sim.run(until=9.0)
        assert end == 9.0

    def test_events_executed_counter(self):
        sim = Simulation()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 5

    def test_run_until_infinity_leaves_clock_at_last_event(self):
        """Regression: ``until is not math.inf`` let a *distinct* inf
        float slip through and park the clock at infinity, breaking the
        documented multi-phase reuse."""
        sim = Simulation()
        seen = []
        sim.schedule(2.0, lambda: seen.append(sim.now))
        end = sim.run(until=float("inf"))
        assert end == 2.0
        assert sim.now == 2.0
        # The drained simulation must still be reusable on the same clock.
        sim.schedule(3.0, lambda: seen.append(sim.now))
        sim.run(until=float("inf"))
        assert seen == [2.0, 5.0]

    def test_run_until_infinity_on_empty_list_keeps_clock(self):
        sim = Simulation()
        assert sim.run(until=float("inf")) == 0.0
        assert sim.now == 0.0

    def test_run_until_in_past_does_not_rewind_clock(self):
        sim = Simulation()
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert sim.now == 5.0
        sim.schedule(1.0, lambda: None)
        assert sim.run(until=2.0) == 5.0  # horizon already behind the clock


class TestFastDispatch:
    """The immediate-dispatch queue must be invisible except in speed."""

    def test_zero_delay_events_bypass_the_timed_tiers(self):
        sim = Simulation()
        sim.schedule(0.0, lambda: None)
        sim.run()
        assert sim.events_fast_dispatched == 1
        assert sim.events_wheel_pushed == 0
        assert sim.events_heap_pushed == 0

    def test_positive_delay_events_use_the_wheel(self):
        sim = Simulation()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_fast_dispatched == 0
        assert sim.events_wheel_pushed == 1

    def test_prioritized_zero_delay_events_use_the_timed_tiers(self):
        sim = Simulation()
        sim.schedule(0.0, lambda: None, priority=1)
        sim.run()
        assert sim.events_wheel_pushed == 1

    def test_wake_runs_at_current_time_in_seq_order(self):
        sim = Simulation()
        order = []

        def later():
            order.append("later")

        def first():
            order.append("first")
            sim.wake(lambda: order.append("woken"))
            sim.schedule(0.0, lambda: order.append("scheduled"))

        sim.schedule(1.0, first)
        sim.schedule(1.0, later)
        sim.run()
        # "later" was scheduled before the zero-delay continuations, so
        # its smaller sequence number must win the time tie.
        assert order == ["first", "later", "woken", "scheduled"]

    def test_heap_priority_preempts_pending_immediates(self):
        sim = Simulation()
        order = []

        def kick():
            sim.wake(lambda: order.append("imm"))
            sim.schedule(0.0, lambda: order.append("urgent"), priority=-5)

        sim.schedule(1.0, kick)
        sim.run()
        assert order == ["urgent", "imm"]

    def test_wake_event_can_be_cancelled(self):
        sim = Simulation()
        seen = []
        event = sim.wake(lambda: seen.append("no"))
        event.cancel()
        sim.run()
        assert seen == []

    def test_mixed_order_matches_pure_key_order(self):
        """Interleave heap and immediate events and check the dispatch
        order equals a sort by (time, priority, seq)."""
        sim = Simulation()
        order = []

        def tag(label):
            return lambda: order.append(label)

        def storm():
            sim.schedule(0.0, tag("a"))          # imm seq n
            sim.schedule(0.0, tag("b"), priority=2)   # heap, loses to prio 0
            sim.schedule(0.0, tag("c"), priority=-2)  # heap, wins over imm
            sim.wake(tag("d"))                   # imm seq n+3
            sim.schedule(1.0, tag("e"))

        sim.schedule(1.0, storm)
        sim.run()
        assert order == ["c", "a", "d", "b", "e"]

    def test_fast_path_counts_into_events_executed(self):
        sim = Simulation()
        sim.schedule(0.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 2

    def test_stop_drops_pending_immediates(self):
        sim = Simulation()
        seen = []

        def first():
            sim.wake(lambda: seen.append("no"))
            sim.stop()

        sim.schedule(1.0, first)
        sim.run()
        assert seen == []

    def test_current_tick_timed_event_keeps_seq_order(self):
        """Regression (from the float kernel's absorbed delays): a
        priority-0 event landing on the *timed* tier at the current tick
        with a seq between two queued immediates.  Integer ticks can no
        longer absorb a positive delay, so the tier mix is staged through
        the event list directly — the merge must still honor
        (time, priority, seq) order across tiers."""

        def build(trace):
            sim = Simulation(trace=trace)
            order = []

            def kick():
                sim.schedule(0, lambda: order.append("imm-first"))
                # Same tick, timed tier, seq between the two immediates.
                sim._events.push(sim.now, 0, lambda: order.append("tied"))
                sim.schedule(0, lambda: order.append("imm-second"))

            sim.schedule(10**16, kick)
            sim.run()
            return order

        expected = ["imm-first", "tied", "imm-second"]
        assert build(None) == expected
        assert build(lambda t, msg: None) == expected

    def test_traced_and_fast_loops_agree_on_order(self):
        def build(trace):
            sim = Simulation(seed=3, trace=trace)
            order = []

            def recurring(n):
                order.append((sim.now, n))
                if n < 30:
                    delay = (
                        sim.stream("d").exponential_ticks(1.0) if n % 3 else 0
                    )
                    sim.schedule(delay, recurring, n + 1)

            sim.schedule(0.0, recurring, 0)
            sim.run()
            return order

        assert build(None) == build(lambda t, msg: None)


class TestStreams:
    def test_stream_is_cached_by_name(self):
        sim = Simulation(seed=1)
        assert sim.stream("disk") is sim.stream("disk")

    def test_streams_reproducible_across_simulations(self):
        a = Simulation(seed=99).stream("disk")
        b = Simulation(seed=99).stream("disk")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_named_streams_differ(self):
        sim = Simulation(seed=99)
        a = sim.stream("disk")
        b = sim.stream("network")
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = Simulation(seed=1).stream("disk")
        b = Simulation(seed=2).stream("disk")
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


class TestTrace:
    def test_trace_callback_sees_events(self):
        lines = []
        sim = Simulation(trace=lambda t, msg: lines.append((t, msg)))
        sim.schedule(3, lambda: None)
        sim.run()
        assert len(lines) == 1
        assert lines[0][0] == 3

    def test_determinism_same_seed_same_trace(self):
        def build():
            sim = Simulation(seed=5)
            order = []

            def recurring(n):
                order.append((sim.now, n))
                if n < 20:
                    delay = sim.stream("d").exponential_ticks(1.0)
                    sim.schedule(delay, recurring, n + 1)

            sim.schedule(0.0, recurring, 0)
            sim.run()
            return order

        assert build() == build()
