"""Unit tests for the Simulation engine: clock, scheduling, streams."""

import math

import pytest

from repro.despy import Simulation
from repro.despy.errors import SchedulingError


class TestScheduling:
    def test_schedule_runs_handler_at_offset(self):
        sim = Simulation()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_schedule_passes_args(self):
        sim = Simulation()
        seen = []
        sim.schedule(1.0, lambda a, b: seen.append((a, b)), "x", 2)
        sim.run()
        assert seen == [("x", 2)]

    def test_negative_delay_rejected(self):
        sim = Simulation()
        with pytest.raises(SchedulingError):
            sim.schedule(-1.0, lambda: None)

    def test_nan_delay_rejected(self):
        sim = Simulation()
        with pytest.raises(SchedulingError):
            sim.schedule(math.nan, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulation()
        seen = []
        sim.schedule_at(3.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.0]

    def test_schedule_at_past_rejected(self):
        sim = Simulation()
        failures = []

        def try_past():
            try:
                sim.schedule_at(1.0, lambda: None)
            except SchedulingError:
                failures.append(sim.now)

        sim.schedule(2.0, try_past)
        sim.run()
        assert failures == [2.0]

    def test_drained_simulation_is_reusable(self):
        """Multi-phase experiments schedule fresh work after a drain."""
        sim = Simulation()
        seen = []
        sim.schedule(2.0, lambda: seen.append(sim.now))
        sim.run()
        sim.schedule(3.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.0, 5.0]

    def test_events_chain_from_handlers(self):
        sim = Simulation()
        seen = []

        def first():
            seen.append(("first", sim.now))
            sim.schedule(2.0, second)

        def second():
            seen.append(("second", sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == [("first", 1.0), ("second", 3.0)]


class TestRunControl:
    def test_run_until_pauses_clock_at_horizon(self):
        sim = Simulation()
        sim.schedule(10.0, lambda: None)
        end = sim.run(until=4.0)
        assert end == 4.0
        assert sim.pending_events == 1

    def test_run_resumes_after_horizon(self):
        sim = Simulation()
        seen = []
        sim.schedule(10.0, lambda: seen.append(sim.now))
        sim.run(until=4.0)
        sim.run()
        assert seen == [10.0]

    def test_run_after_drain_is_noop(self):
        sim = Simulation()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.run() == 1.0

    def test_stop_drops_pending_events(self):
        sim = Simulation()
        seen = []
        sim.schedule(1.0, lambda: (seen.append(sim.now), sim.stop()))
        sim.schedule(2.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.0]

    def test_empty_run_finishes_at_zero(self):
        sim = Simulation()
        assert sim.run() == 0.0

    def test_run_until_advances_idle_clock_to_horizon(self):
        sim = Simulation()
        sim.schedule(1.0, lambda: None)
        end = sim.run(until=9.0)
        assert end == 9.0

    def test_events_executed_counter(self):
        sim = Simulation()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 5


class TestStreams:
    def test_stream_is_cached_by_name(self):
        sim = Simulation(seed=1)
        assert sim.stream("disk") is sim.stream("disk")

    def test_streams_reproducible_across_simulations(self):
        a = Simulation(seed=99).stream("disk")
        b = Simulation(seed=99).stream("disk")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_named_streams_differ(self):
        sim = Simulation(seed=99)
        a = sim.stream("disk")
        b = sim.stream("network")
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = Simulation(seed=1).stream("disk")
        b = Simulation(seed=2).stream("disk")
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


class TestTrace:
    def test_trace_callback_sees_events(self):
        lines = []
        sim = Simulation(trace=lambda t, msg: lines.append((t, msg)))
        sim.schedule(1.5, lambda: None)
        sim.run()
        assert len(lines) == 1
        assert lines[0][0] == 1.5

    def test_determinism_same_seed_same_trace(self):
        def build():
            sim = Simulation(seed=5)
            order = []

            def recurring(n):
                order.append((round(sim.now, 9), n))
                if n < 20:
                    delay = sim.stream("d").exponential(1.0)
                    sim.schedule(delay, recurring, n + 1)

            sim.schedule(0.0, recurring, 0)
            sim.run()
            return order

        assert build() == build()
