"""Cluster-queue validation against analytic oracles.

DESP-C++-style kernel validation (paper §3.2.1), extended to the
multi-server shapes the cluster topology layer simulates: despy-built
2- and 4-node cluster queues must land on the parallel-M/M/c and open
Jackson-network formulas within CI-stable tolerance.

Every simulation here is a pure function of its seed, so the asserted
values are deterministic across runs and Python versions; tolerances
are CI-based (3 half-widths) with an absolute floor, like the
single-queue validation suite.
"""

import pytest

from repro.despy import (
    MS_PER_TICK,
    Gate,
    Hold,
    Release,
    Request,
    Simulation,
    WaitFor,
    confidence_interval,
    jackson_arrival_rates,
    jackson_mean_jobs,
    jackson_mean_response_time,
    mm1_mean_queue_length,
    mm1_mean_response_time,
    mmc_mean_response_time,
    parallel_mmc_mean_response_time,
    parallel_mmc_utilizations,
)
from repro.despy.monitor import OnlineStats
from repro.despy.resource import Resource


def simulate_split_cluster(
    arrival_rate: float,
    service_rate: float,
    split,
    servers_per_node: int,
    jobs: int,
    seed: int,
) -> dict:
    """One replication of a Poisson-split cluster of M/M/c nodes.

    Arrivals are Poisson(λ); a routing draw sends each job to node *i*
    with probability ``split[i]`` — exactly the probabilistic shard
    router the parallel-M/M/c oracle describes.
    """
    sim = Simulation(seed=seed)
    stations = [
        Resource(sim, f"node-{i}", capacity=servers_per_node)
        for i in range(len(split))
    ]
    cumulative = []
    acc = 0.0
    for p in split:
        acc += p
        cumulative.append(acc)
    response_times = OnlineStats()

    def source():
        arrivals = sim.stream("arrivals")
        route = sim.stream("routing")
        for n in range(jobs):
            yield Hold(arrivals.exponential_ticks(1.0 / arrival_rate))
            draw = route.random()
            node = next(
                i
                for i, edge in enumerate(cumulative)
                if draw < edge or i == len(split) - 1
            )
            sim.process(job(node), name=f"job-{n}")

    def job(node: int):
        service = sim.stream(f"service-{node}")
        station = stations[node]
        start = sim.now
        yield Request(station)
        yield Hold(service.exponential_ticks(1.0 / service_rate))
        yield Release(station)
        response_times.record((sim.now - start) * MS_PER_TICK)

    sim.process(source())
    sim.run()
    return {
        "utilizations": [station.utilization() for station in stations],
        "mean_response_time": response_times.mean,
    }


def simulate_jackson(
    external_rate: float,
    service_rates,
    routing,
    jobs: int,
    seed: int,
) -> dict:
    """One replication of an open Jackson network (external arrivals at
    node 0; ``routing[i][j]`` forwards a job from node i to node j)."""
    sim = Simulation(seed=seed)
    n = len(service_rates)
    stations = [Resource(sim, f"node-{i}", capacity=1) for i in range(n)]
    response_times = OnlineStats()

    def source():
        arrivals = sim.stream("arrivals")
        for k in range(jobs):
            yield Hold(arrivals.exponential_ticks(1.0 / external_rate))
            sim.process(job(), name=f"job-{k}")

    def job():
        route = sim.stream("routing")
        services = [sim.stream(f"service-{i}") for i in range(n)]
        start = sim.now
        node = 0
        while node is not None:
            station = stations[node]
            yield Request(station)
            yield Hold(services[node].exponential_ticks(1.0 / service_rates[node]))
            yield Release(station)
            draw = route.random()
            acc = 0.0
            next_node = None
            for j, p in enumerate(routing[node]):
                acc += p
                if draw < acc:
                    next_node = j
                    break
            node = next_node
        response_times.record((sim.now - start) * MS_PER_TICK)

    sim.process(source())
    sim.run()
    return {
        "utilizations": [station.utilization() for station in stations],
        "mean_response_time": response_times.mean,
    }


def _ci_close(values, expected, floor):
    ci = confidence_interval(values)
    assert abs(ci.mean - expected) < max(3 * ci.half_width, floor), (
        f"mean {ci.mean:.4f} vs expected {expected:.4f} "
        f"(±{ci.half_width:.4f})"
    )


class TestParallelClusterFormulas:
    def test_split_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            parallel_mmc_utilizations(1.0, (0.5, 0.3), 1.0)

    def test_split_must_be_non_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            parallel_mmc_utilizations(1.0, (1.5, -0.5), 1.0)

    def test_empty_split_rejected(self):
        with pytest.raises(ValueError, match="at least one node"):
            parallel_mmc_mean_response_time(1.0, (), 1.0)

    def test_unstable_node_rejected(self):
        # 0.9 of 2 jobs/s on a 1 job/s node is over capacity.
        with pytest.raises(ValueError, match="unstable"):
            parallel_mmc_utilizations(2.0, (0.9, 0.1), 1.0)

    def test_single_node_reduces_to_mmc(self):
        assert parallel_mmc_mean_response_time(
            0.6, (1.0,), 1.0
        ) == pytest.approx(mm1_mean_response_time(0.6, 1.0))
        assert parallel_mmc_mean_response_time(
            1.5, (1.0,), 1.0, servers=2
        ) == pytest.approx(mmc_mean_response_time(1.5, 1.0, 2))

    def test_even_split_matches_per_node_mm1(self):
        # λ=1.2 over two even nodes: each is M/M/1 at 0.6.
        expected = mm1_mean_response_time(0.6, 1.0)
        assert parallel_mmc_mean_response_time(
            1.2, (0.5, 0.5), 1.0
        ) == pytest.approx(expected)
        assert parallel_mmc_utilizations(1.2, (0.5, 0.5), 1.0) == (
            pytest.approx(0.6),
            pytest.approx(0.6),
        )

    def test_idle_node_contributes_nothing(self):
        lopsided = parallel_mmc_mean_response_time(0.6, (1.0, 0.0), 1.0)
        assert lopsided == pytest.approx(mm1_mean_response_time(0.6, 1.0))
        assert parallel_mmc_utilizations(0.6, (1.0, 0.0), 1.0)[1] == 0.0

    def test_per_node_vectors_broadcast(self):
        per_node = parallel_mmc_mean_response_time(
            1.0, (0.5, 0.5), (1.0, 2.0), servers=(1, 1)
        )
        expected = 0.5 * mm1_mean_response_time(0.5, 1.0) + (
            0.5 * mm1_mean_response_time(0.5, 2.0)
        )
        assert per_node == pytest.approx(expected)

    def test_vector_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="nodes"):
            parallel_mmc_mean_response_time(1.0, (0.5, 0.5), (1.0,))
        with pytest.raises(ValueError, match="nodes"):
            parallel_mmc_mean_response_time(1.0, (0.5, 0.5), 1.0, servers=(1,))


class TestJacksonFormulas:
    def test_no_routing_means_external_rates(self):
        assert jackson_arrival_rates((0.4, 0.2)) == (0.4, 0.2)

    def test_tandem_rates(self):
        # node 0 -> node 1 -> exit: both see the full stream.
        rates = jackson_arrival_rates((0.5, 0.0), ((0.0, 1.0), (0.0, 0.0)))
        assert rates == (pytest.approx(0.5), pytest.approx(0.5))

    def test_feedback_rates(self):
        # 30% of node-1 departures loop back to node 0:
        # λ0 = γ + 0.3 λ1, λ1 = λ0  =>  λ0 = γ / 0.7.
        rates = jackson_arrival_rates((0.35, 0.0), ((0.0, 1.0), (0.3, 0.0)))
        assert rates[0] == pytest.approx(0.5)
        assert rates[1] == pytest.approx(0.5)

    def test_superstochastic_row_rejected(self):
        with pytest.raises(ValueError, match="substochastic"):
            jackson_arrival_rates((1.0, 0.0), ((0.0, 1.1), (0.0, 0.0)))

    def test_non_draining_network_rejected(self):
        # Every departure is re-routed: jobs never leave.
        with pytest.raises(ValueError, match="singular|drain"):
            jackson_arrival_rates((1.0, 0.0), ((0.0, 1.0), (1.0, 0.0)))

    def test_zero_external_arrivals_rejected(self):
        with pytest.raises(ValueError, match="external"):
            jackson_arrival_rates((0.0, 0.0))

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            jackson_arrival_rates((1.0, 0.0), ((0.0, -0.1), (0.0, 0.0)))

    def test_single_node_reduces_to_mm1(self):
        jobs = jackson_mean_jobs((0.6,), 1.0)
        expected = mm1_mean_queue_length(0.6, 1.0) + 0.6
        assert jobs == (pytest.approx(expected),)
        assert jackson_mean_response_time((0.6,), 1.0) == pytest.approx(
            mm1_mean_response_time(0.6, 1.0)
        )

    def test_tandem_response_is_sum_of_stages(self):
        # Independent M/M/1 stages: W = W0 + W1.
        w = jackson_mean_response_time(
            (0.5, 0.0), (1.0, 2.0), routing=((0.0, 1.0), (0.0, 0.0))
        )
        expected = mm1_mean_response_time(0.5, 1.0) + mm1_mean_response_time(
            0.5, 2.0
        )
        assert w == pytest.approx(expected)

    def test_unstable_effective_rate_rejected(self):
        # Feedback pushes the effective rate over node capacity.
        with pytest.raises(ValueError, match="unstable"):
            jackson_mean_jobs(
                (0.8, 0.0), 1.0, routing=((0.0, 1.0), (0.5, 0.0))
            )


class TestSimulatedTwoNodeCluster:
    """A despy-built 2-node sharded cluster vs the split-M/M/c oracle."""

    LAM, MU, SPLIT, JOBS = 1.2, 1.0, (0.5, 0.5), 12_000

    @pytest.fixture(scope="class")
    def replications(self):
        return [
            simulate_split_cluster(self.LAM, self.MU, self.SPLIT, 1, self.JOBS, seed=s)
            for s in range(5)
        ]

    def test_per_node_utilization_matches_theory(self, replications):
        expected = parallel_mmc_utilizations(self.LAM, self.SPLIT, self.MU)
        for node in range(2):
            _ci_close(
                [r["utilizations"][node] for r in replications],
                expected[node],
                floor=0.02,
            )

    def test_response_time_matches_theory(self, replications):
        expected = parallel_mmc_mean_response_time(self.LAM, self.SPLIT, self.MU)
        _ci_close(
            [r["mean_response_time"] for r in replications],
            expected,
            floor=0.15,
        )


class TestSimulatedFourNodeSkewedCluster:
    """4 nodes under a skewed split — the hot-shard oracle."""

    LAM, MU, SPLIT, JOBS = 2.0, 1.0, (0.4, 0.3, 0.2, 0.1), 12_000

    @pytest.fixture(scope="class")
    def replications(self):
        return [
            simulate_split_cluster(
                self.LAM, self.MU, self.SPLIT, 1, self.JOBS, seed=200 + s
            )
            for s in range(5)
        ]

    def test_hot_node_utilization(self, replications):
        expected = parallel_mmc_utilizations(self.LAM, self.SPLIT, self.MU)
        _ci_close(
            [r["utilizations"][0] for r in replications],
            expected[0],
            floor=0.02,
        )

    def test_cold_node_utilization(self, replications):
        expected = parallel_mmc_utilizations(self.LAM, self.SPLIT, self.MU)
        _ci_close(
            [r["utilizations"][3] for r in replications],
            expected[3],
            floor=0.02,
        )

    def test_response_time_matches_theory(self, replications):
        expected = parallel_mmc_mean_response_time(self.LAM, self.SPLIT, self.MU)
        _ci_close(
            [r["mean_response_time"] for r in replications],
            expected,
            floor=0.15,
        )


class TestSimulatedMMCPerNodeCluster:
    """2 nodes of capacity 2 each — the M/M/c-per-node generalization."""

    LAM, MU, SPLIT, SERVERS, JOBS = 3.0, 1.0, (0.5, 0.5), 2, 12_000

    @pytest.fixture(scope="class")
    def replications(self):
        return [
            simulate_split_cluster(
                self.LAM, self.MU, self.SPLIT, self.SERVERS, self.JOBS, seed=400 + s
            )
            for s in range(5)
        ]

    def test_per_node_utilization(self, replications):
        expected = parallel_mmc_utilizations(
            self.LAM, self.SPLIT, self.MU, servers=self.SERVERS
        )
        for node in range(2):
            _ci_close(
                [r["utilizations"][node] for r in replications],
                expected[node],
                floor=0.02,
            )

    def test_response_time_matches_theory(self, replications):
        expected = parallel_mmc_mean_response_time(
            self.LAM, self.SPLIT, self.MU, servers=self.SERVERS
        )
        _ci_close(
            [r["mean_response_time"] for r in replications],
            expected,
            floor=0.1,
        )


class TestSimulatedJacksonFeedback:
    """A 2-node Jackson network with feedback vs the product form."""

    GAMMA, MUS, ROUTING, JOBS = (
        0.35,
        (1.0, 1.2),
        ((0.0, 1.0), (0.3, 0.0)),
        10_000,
    )

    @pytest.fixture(scope="class")
    def replications(self):
        return [
            simulate_jackson(self.GAMMA, self.MUS, self.ROUTING, self.JOBS, 600 + s)
            for s in range(5)
        ]

    def test_effective_rates_inflate_by_feedback(self):
        rates = jackson_arrival_rates((self.GAMMA, 0.0), self.ROUTING)
        assert rates[0] == pytest.approx(self.GAMMA / 0.7)

    def test_node_utilizations_match_theory(self, replications):
        rates = jackson_arrival_rates((self.GAMMA, 0.0), self.ROUTING)
        for node in range(2):
            _ci_close(
                [r["utilizations"][node] for r in replications],
                rates[node] / self.MUS[node],
                floor=0.02,
            )

    def test_network_sojourn_matches_theory(self, replications):
        expected = jackson_mean_response_time(
            (self.GAMMA, 0.0), self.MUS, routing=self.ROUTING
        )
        _ci_close(
            [r["mean_response_time"] for r in replications],
            expected,
            floor=0.3,
        )


def simulate_async_applier(
    arrival_rate: float,
    primary_rate: float,
    apply_rate: float,
    jobs: int,
    seed: int,
) -> dict:
    """One replication of the async-replication tandem.

    Poisson(λ) clients queue at a primary M/M/1 station; each finished
    write enqueues an apply job which a single applier process drains
    (the deque + :class:`Gate` idiom of ``Cluster._applier``).  Clients
    never wait on the applier, so their response time is the primary
    sojourn alone; by Burke's theorem the apply queue sees a Poisson(λ)
    arrival stream, making the measured enqueue-to-apply lag the sojourn
    time of a second, independent M/M/1 stage — the two-node tandem
    Jackson network in product form.
    """
    sim = Simulation(seed=seed)
    primary = Resource(sim, "primary", capacity=1)
    apply_queue = []
    apply_gate = Gate(sim, "apply")
    response_times = OnlineStats()
    lags = OnlineStats()
    done = [0]

    def source():
        arrivals = sim.stream("arrivals")
        for n in range(jobs):
            yield Hold(arrivals.exponential_ticks(1.0 / arrival_rate))
            sim.process(client(), name=f"client-{n}")

    def client():
        service = sim.stream("primary-service")
        start = sim.now
        yield Request(primary)
        yield Hold(service.exponential_ticks(1.0 / primary_rate))
        yield Release(primary)
        # Async hand-off: the client is done once the primary commits.
        response_times.record((sim.now - start) * MS_PER_TICK)
        apply_queue.append(sim.now)
        apply_gate.open()

    def applier():
        service = sim.stream("apply-service")
        while done[0] < jobs:
            if not apply_queue:
                apply_gate.close()
                yield WaitFor(apply_gate)
                continue
            enqueued = apply_queue.pop(0)
            yield Hold(service.exponential_ticks(1.0 / apply_rate))
            lags.record((sim.now - enqueued) * MS_PER_TICK)
            done[0] += 1

    sim.process(source())
    sim.process(applier(), name="applier")
    sim.run()
    return {
        "mean_response_time": response_times.mean,
        "mean_lag": lags.mean,
    }


class TestAsyncApplierTandem:
    """The ``Cluster._applier`` idiom vs the tandem Jackson oracle.

    Validates the consistency-spectrum machinery at despy level: an
    async apply queue drained by its own process must (a) leave client
    response times exactly where the primary-only M/M/1 oracle puts
    them, (b) exhibit a replica lag equal to the apply-stage M/M/1
    sojourn (Jackson product form on the tandem pair), and (c) converge
    to zero lag as the apply service rate grows — the lag→0 limit in
    which async replication degenerates to the primary-only network.
    """

    LAM, MU1, MU2, JOBS = 0.6, 1.0, 1.2, 10_000

    @pytest.fixture(scope="class")
    def replications(self):
        return [
            simulate_async_applier(
                self.LAM, self.MU1, self.MU2, self.JOBS, 900 + s
            )
            for s in range(5)
        ]

    def test_clients_never_wait_on_the_applier(self, replications):
        # Response time is the primary M/M/1 sojourn, untouched by the
        # (busier or slower) apply stage.
        expected = mm1_mean_response_time(self.LAM, self.MU1)
        _ci_close(
            [r["mean_response_time"] for r in replications],
            expected,
            floor=0.15,
        )

    def test_lag_matches_apply_stage_sojourn(self, replications):
        # Burke: the apply queue is M/M/1 at (λ, μ2); lag == its sojourn,
        # which is also the tandem Jackson response minus stage one.
        expected = mm1_mean_response_time(self.LAM, self.MU2)
        tandem = jackson_mean_response_time(
            (self.LAM, 0.0),
            (self.MU1, self.MU2),
            routing=((0.0, 1.0), (0.0, 0.0)),
        )
        assert expected == pytest.approx(
            tandem - mm1_mean_response_time(self.LAM, self.MU1)
        )
        _ci_close(
            [r["mean_lag"] for r in replications],
            expected,
            floor=0.2,
        )

    def test_lag_vanishes_as_apply_rate_grows(self, replications):
        # μ2 → ∞: the apply stage empties instantly and the tandem
        # response collapses onto the primary-only Jackson network.
        fast = [
            simulate_async_applier(self.LAM, self.MU1, 50.0, self.JOBS, 950 + s)
            for s in range(3)
        ]
        _ci_close(
            [r["mean_lag"] for r in fast],
            mm1_mean_response_time(self.LAM, 50.0),
            floor=0.05,
        )
        # ...and the lag→0 limit leaves clients on the single-node oracle.
        _ci_close(
            [r["mean_response_time"] for r in fast],
            jackson_mean_response_time((self.LAM,), (self.MU1,)),
            floor=0.15,
        )
