"""The compiled-kernel loader: opt-in, clean fallback, honest label."""

import os
import subprocess
import sys


def _backend(env_overrides):
    env = dict(os.environ)
    env.update(env_overrides)
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            "from repro.despy import KERNEL_BACKEND; print(KERNEL_BACKEND)",
        ],
        env=env,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


class TestKernelBackend:
    def test_default_is_pure(self):
        assert _backend({"VOODB_COMPILED": ""}) == "pure"

    def test_opt_in_never_crashes(self):
        """VOODB_COMPILED=1 loads the compiled unit when built, and must
        fall back to the pure kernel (not crash) when it is not."""
        assert _backend({"VOODB_COMPILED": "1"}) in ("pure", "compiled")

    def test_in_process_backend_is_exported(self):
        from repro.despy import KERNEL_BACKEND

        assert KERNEL_BACKEND in ("pure", "compiled")
