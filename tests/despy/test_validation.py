"""Kernel validation against closed-form queueing results.

This mirrors how DESP-C++ was validated against QNAP2 (paper §3.2.1):
build classic queueing stations out of kernel primitives and check the
simulated stationary metrics against theory.
"""

import pytest

from repro.despy import (
    MS_PER_TICK,
    Hold,
    Release,
    Request,
    Simulation,
    confidence_interval,
    mm1_mean_queue_length,
    mm1_mean_response_time,
    mm1_utilization,
    mmc_erlang_c,
    mmc_mean_queue_length,
    mmc_mean_response_time,
)
from repro.despy.monitor import OnlineStats
from repro.despy.resource import Resource


def simulate_mmc(
    arrival_rate: float,
    service_rate: float,
    servers: int,
    jobs: int,
    seed: int,
) -> dict:
    """Run one replication of an M/M/c queue, returning observed metrics."""
    sim = Simulation(seed=seed)
    station = Resource(sim, "station", capacity=servers)
    response_times = OnlineStats()

    def source():
        arrivals = sim.stream("arrivals")
        for n in range(jobs):
            yield Hold(arrivals.exponential_ticks(1.0 / arrival_rate))
            sim.process(job(), name=f"job-{n}")

    def job():
        service = sim.stream("service")
        start = sim.now
        yield Request(station)
        yield Hold(service.exponential_ticks(1.0 / service_rate))
        yield Release(station)
        response_times.record((sim.now - start) * MS_PER_TICK)

    sim.process(source())
    sim.run()
    return {
        "utilization": station.utilization(),
        "mean_queue_length": station.mean_queue_length(),
        "mean_response_time": response_times.mean,
    }


class TestAnalyticFormulas:
    def test_mm1_utilization(self):
        assert mm1_utilization(0.5, 1.0) == pytest.approx(0.5)

    def test_mm1_queue_length(self):
        # rho = 0.5 -> Lq = 0.25/0.5 = 0.5
        assert mm1_mean_queue_length(0.5, 1.0) == pytest.approx(0.5)

    def test_mm1_response_time(self):
        assert mm1_mean_response_time(0.5, 1.0) == pytest.approx(2.0)

    def test_unstable_queue_rejected(self):
        with pytest.raises(ValueError):
            mm1_mean_queue_length(2.0, 1.0)

    def test_erlang_c_known_value(self):
        # Classic test point: c=2, a=1 (rho=0.5) -> C = 1/3
        assert mmc_erlang_c(1.0, 1.0, 2) == pytest.approx(1.0 / 3.0)

    def test_mmc_reduces_to_mm1(self):
        assert mmc_mean_queue_length(0.5, 1.0, 1) == pytest.approx(
            mm1_mean_queue_length(0.5, 1.0)
        )
        assert mmc_mean_response_time(0.5, 1.0, 1) == pytest.approx(
            mm1_mean_response_time(0.5, 1.0)
        )

    def test_rates_must_be_positive(self):
        with pytest.raises(ValueError):
            mm1_utilization(-1.0, 1.0)
        with pytest.raises(ValueError):
            mmc_erlang_c(1.0, 1.0, 0)


class TestSimulatedMM1:
    """Three replications, CI-based assertions — the [Ban96] workflow."""

    LAM, MU, JOBS = 0.6, 1.0, 15000

    @pytest.fixture(scope="class")
    def replications(self):
        return [
            simulate_mmc(self.LAM, self.MU, 1, self.JOBS, seed=s)
            for s in range(5)
        ]

    def test_utilization_matches_theory(self, replications):
        ci = confidence_interval([r["utilization"] for r in replications])
        expected = mm1_utilization(self.LAM, self.MU)
        assert abs(ci.mean - expected) < max(3 * ci.half_width, 0.02)

    def test_queue_length_matches_theory(self, replications):
        ci = confidence_interval([r["mean_queue_length"] for r in replications])
        expected = mm1_mean_queue_length(self.LAM, self.MU)
        assert abs(ci.mean - expected) < max(3 * ci.half_width, 0.1)

    def test_response_time_matches_theory(self, replications):
        ci = confidence_interval([r["mean_response_time"] for r in replications])
        expected = mm1_mean_response_time(self.LAM, self.MU)
        assert abs(ci.mean - expected) < max(3 * ci.half_width, 0.15)


class TestSimulatedMMC:
    LAM, MU, SERVERS, JOBS = 1.5, 1.0, 2, 15000

    @pytest.fixture(scope="class")
    def replications(self):
        return [
            simulate_mmc(self.LAM, self.MU, self.SERVERS, self.JOBS, seed=100 + s)
            for s in range(5)
        ]

    def test_utilization_matches_theory(self, replications):
        ci = confidence_interval([r["utilization"] for r in replications])
        expected = self.LAM / (self.SERVERS * self.MU)
        assert abs(ci.mean - expected) < max(3 * ci.half_width, 0.02)

    def test_queue_length_matches_theory(self, replications):
        ci = confidence_interval([r["mean_queue_length"] for r in replications])
        expected = mmc_mean_queue_length(self.LAM, self.MU, self.SERVERS)
        assert abs(ci.mean - expected) < max(3 * ci.half_width, 0.2)

    def test_response_time_matches_theory(self, replications):
        ci = confidence_interval([r["mean_response_time"] for r in replications])
        expected = mmc_mean_response_time(self.LAM, self.MU, self.SERVERS)
        assert abs(ci.mean - expected) < max(3 * ci.half_width, 0.15)
