"""MSER-5 truncation and batch-means CIs on synthetic streams.

The steady-state pipeline must earn trust on series whose truth is
known before it touches simulator output: an AR(1) process started far
from its stationary mean (the truncation must delete the injected
transient), i.i.d. exponential noise (nothing to delete, and the 95%
CI must cover the true mean at roughly its nominal rate), plus
hypothesis properties that hold for *any* series.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.despy.stats import (
    MIN_STEADY_OBSERVATIONS,
    MSER_BATCH_SIZE,
    SteadyStateEstimate,
    mser5_truncation_index,
    steady_state_batches,
    steady_state_estimate,
)


def ar1_with_transient(
    n: int,
    seed: int,
    mean: float = 10.0,
    start: float = 100.0,
    phi: float = 0.8,
    sigma: float = 1.0,
):
    """An AR(1) series initialised ``start - mean`` above its stationary
    mean: the bias decays geometrically (~phi^t), so the first few dozen
    observations carry a warm-up transient the truncation must remove."""
    rng = random.Random(seed)
    series = []
    x = start
    for _ in range(n):
        x = mean + phi * (x - mean) + rng.gauss(0.0, sigma)
        series.append(x)
    return series


def iid_exponential(n: int, seed: int, mean: float = 4.0):
    rng = random.Random(seed)
    return [rng.expovariate(1.0 / mean) for _ in range(n)]


class TestMSERTruncation:
    def test_removes_injected_transient(self):
        """With the series started 90 units above its stationary mean,
        MSER-5 must delete a non-trivial prefix, and the retained mean
        must land near the true mean rather than halfway up the ramp."""
        series = ar1_with_transient(n=600, seed=7)
        cut = mser5_truncation_index(series)
        assert cut >= MSER_BATCH_SIZE  # at least one batch removed
        raw_mean = sum(series) / len(series)
        kept = series[cut:]
        kept_mean = sum(kept) / len(kept)
        assert abs(kept_mean - 10.0) < abs(raw_mean - 10.0)
        assert abs(kept_mean - 10.0) < 1.0

    def test_transient_removed_across_seeds(self):
        for seed in range(20):
            series = ar1_with_transient(n=600, seed=seed)
            cut = mser5_truncation_index(series)
            kept = series[cut:]
            kept_mean = sum(kept) / len(kept)
            assert abs(kept_mean - 10.0) < 1.5, f"seed {seed}"

    def test_stationary_series_keeps_almost_everything(self):
        """i.i.d. noise has no transient; MSER should delete little."""
        for seed in range(10):
            series = iid_exponential(n=500, seed=seed)
            cut = mser5_truncation_index(series)
            assert cut <= len(series) // 4, f"seed {seed}"

    def test_truncation_is_a_batch_multiple(self):
        series = ar1_with_transient(n=300, seed=3)
        assert mser5_truncation_index(series) % MSER_BATCH_SIZE == 0

    def test_rejects_too_short_series(self):
        with pytest.raises(ValueError, match="2 batches"):
            mser5_truncation_index([1.0] * (2 * MSER_BATCH_SIZE - 1))

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            mser5_truncation_index([1.0] * 20, batch_size=0)


class TestBatchSizing:
    def test_square_root_rule(self):
        assert steady_state_batches(100) == 10
        assert steady_state_batches(25) == 5

    def test_clipped_to_floor_and_cap(self):
        assert steady_state_batches(2) == 2
        assert steady_state_batches(3) == 2
        assert steady_state_batches(10_000) == 30

    def test_rejects_degenerate_input(self):
        with pytest.raises(ValueError, match="retained"):
            steady_state_batches(1)


class TestSteadyStateEstimate:
    def test_estimate_recovers_true_mean_of_ar1(self):
        series = ar1_with_transient(n=1000, seed=11)
        estimate = steady_state_estimate(series)
        assert isinstance(estimate, SteadyStateEstimate)
        assert estimate.truncated + estimate.retained == len(series)
        assert abs(estimate.point - 10.0) < 1.0
        assert estimate.half_width > 0.0

    def test_ci_covers_true_mean_at_nominal_rate(self):
        """95% batch-means CIs over i.i.d. exponential streams should
        cover the true mean ≈95% of the time; demand ≥90% over 100
        fixed seeds to keep the test deterministic but honest."""
        true_mean = 4.0
        covered = 0
        trials = 100
        for seed in range(trials):
            series = iid_exponential(n=400, seed=seed, mean=true_mean)
            estimate = steady_state_estimate(series)
            if estimate.contains(true_mean):
                covered += 1
        assert covered >= 0.90 * trials, f"covered {covered}/{trials}"

    def test_transient_would_poison_untruncated_mean(self):
        """The pipeline's reason to exist: on the AR(1) ramp the raw
        mean is biased high, the truncated estimate is not."""
        series = ar1_with_transient(n=600, seed=23)
        estimate = steady_state_estimate(series)
        raw_mean = sum(series) / len(series)
        assert not estimate.contains(raw_mean)
        assert estimate.contains(10.0) or abs(estimate.point - 10.0) < 1.0

    def test_rejects_below_minimum(self):
        with pytest.raises(ValueError, match="at least"):
            steady_state_estimate([1.0] * (MIN_STEADY_OBSERVATIONS - 1))

    def test_minimum_length_works(self):
        series = iid_exponential(n=MIN_STEADY_OBSERVATIONS, seed=1)
        estimate = steady_state_estimate(series)
        assert estimate.retained >= MSER_BATCH_SIZE


series_strategy = st.lists(
    st.floats(
        min_value=-1e6,
        max_value=1e6,
        allow_nan=False,
        allow_infinity=False,
    ),
    min_size=MIN_STEADY_OBSERVATIONS,
    max_size=200,
)


@settings(max_examples=50, deadline=None)
@given(series_strategy)
def test_truncation_bounded_by_half_the_batches(series):
    cut = mser5_truncation_index(series)
    m = len(series) // MSER_BATCH_SIZE
    assert cut % MSER_BATCH_SIZE == 0
    assert 0 <= cut <= (m // 2) * MSER_BATCH_SIZE


@settings(max_examples=50, deadline=None)
@given(series_strategy)
def test_estimate_is_deterministic_and_in_range(series):
    a = steady_state_estimate(series)
    b = steady_state_estimate(series)
    assert a == b
    assert min(series) - 1e-9 <= a.point <= max(series) + 1e-9
    assert a.half_width >= 0.0
    assert math.isfinite(a.half_width)


@settings(max_examples=25, deadline=None)
@given(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.integers(min_value=MIN_STEADY_OBSERVATIONS, max_value=150),
)
def test_constant_series_is_already_steady(value, n):
    series = [value] * n
    assert mser5_truncation_index(series) == 0
    estimate = steady_state_estimate(series)
    assert estimate.point == pytest.approx(value)
    assert estimate.half_width == pytest.approx(0.0, abs=1e-6)
