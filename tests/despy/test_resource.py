"""Unit tests for Resource statistics and the non-blocking face."""

import pytest

from repro.despy import Hold, Release, Request, Simulation
from repro.despy.errors import ResourceError
from repro.despy.resource import Resource


class TestPlainFace:
    def test_try_acquire_succeeds_when_free(self):
        sim = Simulation()
        res = Resource(sim, "r", capacity=2)
        assert res.try_acquire()
        assert res.try_acquire()
        assert not res.try_acquire()
        assert res.in_use == 2

    def test_release_restores_capacity(self):
        sim = Simulation()
        res = Resource(sim, "r")
        res.try_acquire()
        res.release()
        assert res.available == 1

    def test_release_idle_resource_raises(self):
        sim = Simulation()
        res = Resource(sim, "r")
        with pytest.raises(ResourceError):
            res.release()

    def test_zero_capacity_rejected(self):
        sim = Simulation()
        with pytest.raises(ResourceError):
            Resource(sim, "r", capacity=0)


class TestStatistics:
    def test_utilization_half_busy(self):
        sim = Simulation()
        res = Resource(sim, "r")

        def job():
            yield Request(res)
            yield Hold(5.0)
            yield Release(res)
            yield Hold(5.0)

        sim.process(job())
        sim.run()
        assert res.utilization() == pytest.approx(0.5)

    def test_mean_wait_measures_queueing(self):
        sim = Simulation()
        res = Resource(sim, "r")

        def holder():
            yield Request(res)
            yield Hold(4.0)
            yield Release(res)

        def waiter():
            yield Request(res)
            yield Release(res)

        sim.process(holder())
        sim.process(waiter())
        sim.run()
        # holder waits 0, waiter waits 4 -> mean 2
        assert res.mean_wait() == pytest.approx(2.0)

    def test_counters(self):
        sim = Simulation()
        res = Resource(sim, "r")

        def job():
            yield Request(res)
            yield Release(res)

        for _ in range(3):
            sim.process(job())
        sim.run()
        assert res.total_requests == 3
        assert res.total_served == 3

    def test_queue_length_time_average_positive_under_contention(self):
        sim = Simulation()
        res = Resource(sim, "r")

        def job():
            yield Request(res)
            yield Hold(1.0)
            yield Release(res)

        for _ in range(5):
            sim.process(job())
        sim.run()
        assert res.mean_queue_length() > 0.0

    def test_utilization_full_when_always_busy(self):
        sim = Simulation()
        res = Resource(sim, "r")

        def job():
            yield Request(res)
            yield Hold(2.0)
            yield Release(res)

        sim.process(job())
        sim.process(job())
        sim.run()
        assert res.utilization() == pytest.approx(1.0)
