"""Unit tests for Resource statistics and the non-blocking face."""

import pytest

from repro.despy import Hold, Release, Request, Simulation, WaitFor
from repro.despy.errors import ResourceError
from repro.despy.resource import Gate, Resource


class TestPlainFace:
    def test_try_acquire_succeeds_when_free(self):
        sim = Simulation()
        res = Resource(sim, "r", capacity=2)
        assert res.try_acquire()
        assert res.try_acquire()
        assert not res.try_acquire()
        assert res.in_use == 2

    def test_release_restores_capacity(self):
        sim = Simulation()
        res = Resource(sim, "r")
        res.try_acquire()
        res.release()
        assert res.available == 1

    def test_release_idle_resource_raises(self):
        sim = Simulation()
        res = Resource(sim, "r")
        with pytest.raises(ResourceError):
            res.release()

    def test_zero_capacity_rejected(self):
        sim = Simulation()
        with pytest.raises(ResourceError):
            Resource(sim, "r", capacity=0)


class TestStatistics:
    def test_utilization_half_busy(self):
        sim = Simulation()
        res = Resource(sim, "r")

        def job():
            yield Request(res)
            yield Hold(5.0)
            yield Release(res)
            yield Hold(5.0)

        sim.process(job())
        sim.run()
        assert res.utilization() == pytest.approx(0.5)

    def test_mean_wait_measures_queueing(self):
        sim = Simulation()
        res = Resource(sim, "r")

        def holder():
            yield Request(res)
            yield Hold(4.0)
            yield Release(res)

        def waiter():
            yield Request(res)
            yield Release(res)

        sim.process(holder())
        sim.process(waiter())
        sim.run()
        # holder waits 0, waiter waits 4 -> mean 2
        assert res.mean_wait() == pytest.approx(2.0)

    def test_counters(self):
        sim = Simulation()
        res = Resource(sim, "r")

        def job():
            yield Request(res)
            yield Release(res)

        for _ in range(3):
            sim.process(job())
        sim.run()
        assert res.total_requests == 3
        assert res.total_served == 3

    def test_queue_length_time_average_positive_under_contention(self):
        sim = Simulation()
        res = Resource(sim, "r")

        def job():
            yield Request(res)
            yield Hold(1.0)
            yield Release(res)

        for _ in range(5):
            sim.process(job())
        sim.run()
        assert res.mean_queue_length() > 0.0

    def test_utilization_full_when_always_busy(self):
        sim = Simulation()
        res = Resource(sim, "r")

        def job():
            yield Request(res)
            yield Hold(2.0)
            yield Release(res)

        sim.process(job())
        sim.process(job())
        sim.run()
        assert res.utilization() == pytest.approx(1.0)


class TestContentionStatistics:
    """Wait-time and queue-length accounting under sustained contention —
    the exact paths the fast-dispatch rewiring replumbed (grants and
    wake-ups no longer round-trip through the heap)."""

    def _run_contention(self, capacity, jobs, hold):
        sim = Simulation()
        res = Resource(sim, "r", capacity=capacity)

        def job():
            yield Request(res)
            yield Hold(hold)
            yield Release(res)

        for _ in range(jobs):
            sim.process(job())
        sim.run()
        return sim, res

    def test_wait_times_form_arithmetic_ramp(self):
        # capacity 1, 4 jobs of 2.0 arriving together: waits 0, 2, 4, 6.
        __, res = self._run_contention(capacity=1, jobs=4, hold=2.0)
        assert res.wait_times.n == 4
        assert res.mean_wait() == pytest.approx(3.0)
        assert res.wait_times.minimum == pytest.approx(0.0)
        assert res.wait_times.maximum == pytest.approx(6.0)

    def test_mean_queue_length_matches_littles_law_integral(self):
        # Queue lengths over time: 3 for 2.0, 2 for 2.0, 1 for 2.0, then 0:
        # integral 12 over horizon 8 -> 1.5.
        sim, res = self._run_contention(capacity=1, jobs=4, hold=2.0)
        assert sim.now == pytest.approx(8.0)
        assert res.mean_queue_length() == pytest.approx(12.0 / 8.0)

    def test_utilization_under_full_contention(self):
        sim, res = self._run_contention(capacity=2, jobs=6, hold=1.0)
        assert sim.now == pytest.approx(3.0)
        assert res.utilization() == pytest.approx(1.0)
        assert res.total_served == 6

    def test_served_counter_equals_grants_not_requests(self):
        sim = Simulation()
        res = Resource(sim, "r")
        res.try_acquire()
        assert not res.try_acquire()  # refused, still a request
        assert res.total_requests == 2
        assert res.total_served == 1

    def test_wait_time_recorded_at_grant_not_release(self):
        sim = Simulation()
        res = Resource(sim, "r")
        grant_waits = []

        def holder():
            yield Request(res)
            yield Hold(3.0)
            yield Release(res)

        def waiter():
            yield Request(res)
            grant_waits.append((sim.now, res.wait_times.n, res.wait_times.mean))
            yield Hold(5.0)
            yield Release(res)

        sim.process(holder())
        sim.process(waiter())
        sim.run()
        # At grant time (t=3) the waiter's 3.0 wait is already recorded.
        assert grant_waits == [(3.0, 2, pytest.approx(1.5))]


class TestGateReopenCycles:
    """Gates are reusable broadcast points; every open must wake the
    current crowd and only the current crowd."""

    def test_two_full_cycles_wake_distinct_crowds(self):
        sim = Simulation()
        gate = Gate(sim, "g")
        woken = []

        def waiter(tag, start_delay):
            yield Hold(start_delay)
            yield WaitFor(gate)
            woken.append((tag, sim.now))

        def controller():
            yield Hold(1.0)
            gate.open()
            gate.close()
            yield Hold(1.0)
            gate.open()
            gate.close()

        sim.process(waiter("first-a", 0.0))
        sim.process(waiter("first-b", 0.0))
        sim.process(waiter("second", 2))
        sim.process(controller())
        sim.run()
        assert sorted(woken) == [
            ("first-a", 1.0),
            ("first-b", 1.0),
            ("second", 2.0),
        ]
        assert gate.times_opened == 2
        assert gate.waiting == 0

    def test_reclosed_gate_blocks_new_waiters_only(self):
        sim = Simulation()
        gate = Gate(sim, "g")
        gate.open()
        seen = []

        def early():
            yield WaitFor(gate)  # passes through the open gate
            seen.append(("early", sim.now))
            gate.close()

        def late():
            yield Hold(1.0)
            yield WaitFor(gate)  # blocks: the gate was re-closed
            seen.append(("late", sim.now))

        def opener():
            yield Hold(4.0)
            gate.open()

        sim.process(early())
        sim.process(late())
        sim.process(opener())
        sim.run()
        assert seen == [("early", 0.0), ("late", 4.0)]

    def test_open_idempotent_while_open(self):
        sim = Simulation()
        gate = Gate(sim, "g")
        gate.open()
        gate.open()
        assert gate.times_opened == 2
        assert gate.is_open

    def test_waiting_count_tracks_crowd(self):
        sim = Simulation()
        gate = Gate(sim, "g")

        def waiter():
            yield WaitFor(gate)

        sim.process(waiter())
        sim.process(waiter())
        sim.run()
        assert gate.waiting == 2
        gate.open()
        sim.run()
        assert gate.waiting == 0
