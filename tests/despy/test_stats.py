"""Unit tests for the [Ban96] replication-statistics workflow."""

import pytest

from repro.despy import (
    ConfidenceInterval,
    ReplicationAnalyzer,
    confidence_interval,
    required_replications,
)
from repro.despy.stats import student_t_quantile


class TestConfidenceInterval:
    def test_known_small_sample(self):
        # X = [10, 12, 14]: mean 12, s = 2, t(2, .975) = 4.3027
        ci = confidence_interval([10.0, 12.0, 14.0], confidence=0.95)
        assert ci.mean == pytest.approx(12.0)
        assert ci.half_width == pytest.approx(4.3027 * 2.0 / 3.0**0.5, rel=1e-3)
        assert ci.n == 3

    def test_interval_bounds_and_contains(self):
        ci = ConfidenceInterval(mean=10.0, half_width=2.0, confidence=0.95, n=5)
        assert ci.low == 8.0
        assert ci.high == 12.0
        assert ci.contains(9.0)
        assert not ci.contains(12.5)

    def test_single_observation_degenerate(self):
        ci = confidence_interval([7.0])
        assert ci.mean == 7.0
        assert ci.half_width == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            confidence_interval([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0, 2.0], confidence=1.5)

    def test_relative_half_width(self):
        ci = ConfidenceInterval(mean=100.0, half_width=5.0, confidence=0.95, n=10)
        assert ci.relative_half_width == pytest.approx(0.05)

    def test_higher_confidence_widens_interval(self):
        data = [10.0, 11.0, 12.0, 13.0, 14.0]
        narrow = confidence_interval(data, confidence=0.90)
        wide = confidence_interval(data, confidence=0.99)
        assert wide.half_width > narrow.half_width

    def test_str_formats(self):
        ci = confidence_interval([10.0, 12.0, 14.0])
        text = str(ci)
        assert "12.00" in text
        assert "n=3" in text


class TestStudentT:
    def test_matches_table_values(self):
        # Classic table entries
        assert student_t_quantile(9, 0.975) == pytest.approx(2.2622, rel=1e-3)
        assert student_t_quantile(99, 0.975) == pytest.approx(1.9842, rel=1e-3)

    def test_rejects_zero_degrees(self):
        with pytest.raises(ValueError):
            student_t_quantile(0, 0.975)


class TestRequiredReplications:
    def test_paper_formula(self):
        # n* = n (h/h*)^2: 10 pilot replications, halve the width -> 40
        assert required_replications(2.0, 1.0, 10) == 40

    def test_already_precise_needs_none(self):
        assert required_replications(0.5, 1.0, 10) == 0

    def test_rounds_up(self):
        # 10 * (1.5)^2 = 22.5 -> 23
        assert required_replications(1.5, 1.0, 10) == 23

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            required_replications(1.0, 0.0, 10)
        with pytest.raises(ValueError):
            required_replications(1.0, 1.0, 0)


class TestReplicationAnalyzer:
    def test_collects_and_reports(self):
        analyzer = ReplicationAnalyzer()
        for value in [10.0, 12.0, 14.0]:
            analyzer.add({"ios": value, "time": value * 2})
        assert analyzer.replications == 3
        assert set(analyzer.metrics()) == {"ios", "time"}
        assert analyzer.mean("ios") == pytest.approx(12.0)
        assert analyzer.mean("time") == pytest.approx(24.0)

    def test_summary_contains_all_metrics(self):
        analyzer = ReplicationAnalyzer()
        analyzer.add({"a": 1.0, "b": 2.0})
        analyzer.add({"a": 3.0, "b": 4.0})
        summary = analyzer.summary()
        assert summary["a"].mean == pytest.approx(2.0)
        assert summary["b"].n == 2

    def test_unknown_metric_raises(self):
        analyzer = ReplicationAnalyzer()
        analyzer.add({"a": 1.0})
        with pytest.raises(KeyError):
            analyzer.interval("missing")

    def test_observations_returns_copy(self):
        analyzer = ReplicationAnalyzer()
        analyzer.add({"a": 1.0})
        obs = analyzer.observations("a")
        obs.append(99.0)
        assert analyzer.observations("a") == [1.0]

    def test_additional_replications_shrinks_with_precision(self):
        analyzer = ReplicationAnalyzer()
        # High-variance pilot -> needs more replications for 5% than 50%
        for value in [50.0, 150.0, 100.0, 80.0, 120.0]:
            analyzer.add({"m": value})
        tight = analyzer.additional_replications_for("m", 0.05)
        loose = analyzer.additional_replications_for("m", 0.5)
        assert tight > loose

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            ReplicationAnalyzer(confidence=0.0)
